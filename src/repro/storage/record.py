"""Fixed-width record encoding.

University Ingres stored fixed-width tuples; the prototype adds implicit
temporal attributes, each "a 32 bit integer with a resolution of one second"
(Section 4).  :class:`RecordCodec` packs a Python tuple of attribute values
into the fixed-width byte record a :class:`~repro.storage.page.Page` stores.

Supported attribute types mirror Quel's storage formats:

=========  ==================  ================================
``i1``     1-byte signed int
``i2``     2-byte signed int
``i4``     4-byte signed int
``f4``     4-byte float
``f8``     8-byte float
``cN``     N-byte blank-padded string (1 <= N <= 255)
``time``   4-byte chronon      the implicit temporal attributes
=========  ==================  ================================

Strings are encoded in ASCII (Ingres-era data), blank-padded to width N and
stripped of trailing blanks on decode, like Quel ``c`` attributes.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import RecordCodecError


class AttributeType(enum.Enum):
    """Physical attribute types, named after Quel's type syntax."""

    I1 = "i1"
    I2 = "i2"
    I4 = "i4"
    F4 = "f4"
    F8 = "f8"
    CHAR = "c"
    TIME = "time"

    @property
    def is_numeric(self) -> bool:
        return self in (
            AttributeType.I1,
            AttributeType.I2,
            AttributeType.I4,
            AttributeType.F4,
            AttributeType.F8,
        )


_INT_RANGES = {
    AttributeType.I1: (-(2**7), 2**7 - 1),
    AttributeType.I2: (-(2**15), 2**15 - 1),
    AttributeType.I4: (-(2**31), 2**31 - 1),
    AttributeType.TIME: (-(2**31), 2**31 - 1),
}

_STRUCT_CODES = {
    AttributeType.I1: "b",
    AttributeType.I2: "h",
    AttributeType.I4: "i",
    AttributeType.F4: "f",
    AttributeType.F8: "d",
    AttributeType.TIME: "i",
}

_FIXED_SIZES = {
    AttributeType.I1: 1,
    AttributeType.I2: 2,
    AttributeType.I4: 4,
    AttributeType.F4: 4,
    AttributeType.F8: 8,
    AttributeType.TIME: 4,
}


@dataclass(frozen=True)
class FieldSpec:
    """One attribute's physical description: name, type, width."""

    name: str
    type: AttributeType
    width: int

    @classmethod
    def parse(cls, name: str, type_text: str) -> "FieldSpec":
        """Build a spec from Quel type syntax (``i4``, ``c96``, ``time``)."""
        text = type_text.strip().lower()
        if text.startswith("c") and text != "c":
            try:
                width = int(text[1:])
            except ValueError as exc:
                raise RecordCodecError(f"bad char type {type_text!r}") from exc
            if not 1 <= width <= 255:
                raise RecordCodecError(
                    f"char width must be 1..255, got {width}"
                )
            return cls(name, AttributeType.CHAR, width)
        for attr_type in AttributeType:
            if attr_type is AttributeType.CHAR:
                continue
            if text == attr_type.value:
                return cls(name, attr_type, _FIXED_SIZES[attr_type])
        raise RecordCodecError(f"unknown attribute type {type_text!r}")

    @property
    def type_text(self) -> str:
        """Quel spelling of the type (``i4``, ``c96``, ``time``)."""
        if self.type is AttributeType.CHAR:
            return f"c{self.width}"
        return self.type.value


class RecordCodec:
    """Packs/unpacks tuples for a list of :class:`FieldSpec`.

    The struct format is precompiled; :meth:`encode` / :meth:`decode` are on
    the hot path of every page access in the system.
    """

    def __init__(self, fields: "list[FieldSpec]"):
        if not fields:
            raise RecordCodecError("a record needs at least one field")
        seen = set()
        for field in fields:
            if field.name in seen:
                raise RecordCodecError(f"duplicate field name {field.name!r}")
            seen.add(field.name)
        self._fields = list(fields)
        codes = []
        for field in fields:
            if field.type is AttributeType.CHAR:
                codes.append(f"{field.width}s")
            else:
                codes.append(_STRUCT_CODES[field.type])
        self._struct = struct.Struct("<" + "".join(codes))
        self._char_indexes = [
            i
            for i, field in enumerate(fields)
            if field.type is AttributeType.CHAR
        ]

    @property
    def fields(self) -> "list[FieldSpec]":
        return list(self._fields)

    @property
    def record_size(self) -> int:
        """Width in bytes of one encoded record."""
        return self._struct.size

    @property
    def struct_format(self) -> str:
        """The precompiled ``struct`` format (scan kernels recompile it)."""
        return self._struct.format

    def check_value(self, field: FieldSpec, value):
        """Validate and coerce *value* for *field*; returns the coerced value.

        Raises :class:`RecordCodecError` on type mismatch or overflow.
        """
        if field.type is AttributeType.CHAR:
            if not isinstance(value, str):
                raise RecordCodecError(
                    f"{field.name}: expected str, got {type(value).__name__}"
                )
            encoded = value.encode("ascii", errors="strict")
            if len(encoded) > field.width:
                raise RecordCodecError(
                    f"{field.name}: string of {len(encoded)} bytes exceeds "
                    f"c{field.width}"
                )
            return value
        if field.type in (AttributeType.F4, AttributeType.F8):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise RecordCodecError(
                    f"{field.name}: expected number, got "
                    f"{type(value).__name__}"
                )
            return float(value)
        # Integer types, including the temporal type.
        if isinstance(value, bool) or not isinstance(value, int):
            raise RecordCodecError(
                f"{field.name}: expected int, got {type(value).__name__}"
            )
        low, high = _INT_RANGES[field.type]
        if not low <= value <= high:
            raise RecordCodecError(
                f"{field.name}: {value} out of range for "
                f"{field.type_text}"
            )
        return value

    def encode(self, values: "tuple | list") -> bytes:
        """Encode one tuple of attribute values into record bytes."""
        if len(values) != len(self._fields):
            raise RecordCodecError(
                f"expected {len(self._fields)} values, got {len(values)}"
            )
        prepared = [
            self.check_value(field, value)
            for field, value in zip(self._fields, values)
        ]
        for index in self._char_indexes:
            field = self._fields[index]
            prepared[index] = prepared[index].encode("ascii").ljust(
                field.width, b" "
            )
        try:
            return self._struct.pack(*prepared)
        except struct.error as exc:  # pragma: no cover - guarded above
            raise RecordCodecError(str(exc)) from exc

    def decode(self, record: bytes) -> tuple:
        """Decode record bytes back into a tuple of attribute values."""
        if len(record) != self._struct.size:
            raise RecordCodecError(
                f"record is {len(record)} bytes, expected {self._struct.size}"
            )
        values = list(self._struct.unpack(record))
        for index in self._char_indexes:
            values[index] = values[index].rstrip(b" ").decode("ascii")
        return tuple(values)

    def decode_page(self, page) -> "list[tuple]":
        """Decode every record on *page* in one ``iter_unpack`` call.

        This is the batch kernel's entry point: one C-level pass over the
        page's record area instead of one ``unpack_from`` per record.
        """
        size = self._struct.size
        base = 6  # PAGE_HEADER_SIZE, inlined for speed
        # Zero-copy view of exactly count * size bytes (iter_unpack
        # requires the buffer length to be a multiple of the record size).
        area = memoryview(page._data)[base : base + page.count * size]
        char_indexes = self._char_indexes
        if not char_indexes:
            return list(self._struct.iter_unpack(area))
        rows = []
        for values in self._struct.iter_unpack(area):
            values = list(values)
            for index in char_indexes:
                values[index] = values[index].rstrip(b" ").decode("ascii")
            rows.append(tuple(values))
        return rows

    def __repr__(self) -> str:
        spec = ", ".join(f"{f.name}={f.type_text}" for f in self._fields)
        return f"RecordCodec({spec})"
