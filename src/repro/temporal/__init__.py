"""Temporal values for the TQuel prototype.

The paper represents every implicit time attribute as "a 32 bit integer with
a resolution of one second" (Section 4).  This subpackage provides:

* :mod:`repro.temporal.chronon` -- the chronon type (seconds since the Unix
  epoch), the distinguished values ``BEGINNING`` and ``FOREVER``, and a
  deterministic :class:`Clock` used to resolve ``"now"``;
* :mod:`repro.temporal.parse` -- parsing of the "various formats of date and
  time" the prototype accepts for input;
* :mod:`repro.temporal.format` -- output formatting at "resolutions ranging
  from a second to a year";
* :mod:`repro.temporal.interval` -- the interval/event algebra behind TQuel's
  ``overlap``, ``extend``, ``precede``, ``start of`` and ``end of``.
"""

from repro.temporal.chronon import (
    BEGINNING,
    CHRONON_MAX,
    CHRONON_MIN,
    FOREVER,
    Chronon,
    Clock,
    as_chronon,
    check_chronon,
)
from repro.temporal.format import Resolution, format_chronon
from repro.temporal.interval import Period, extend, overlaps, precedes
from repro.temporal.parse import parse_temporal

__all__ = [
    "BEGINNING",
    "CHRONON_MAX",
    "CHRONON_MIN",
    "FOREVER",
    "Chronon",
    "Clock",
    "Period",
    "Resolution",
    "as_chronon",
    "check_chronon",
    "extend",
    "format_chronon",
    "overlaps",
    "parse_temporal",
    "precedes",
]
