"""Chronons: the prototype's 32-bit, one-second-resolution time values.

A *chronon* is the smallest representable unit of time.  Following the paper
(Section 4), a temporal attribute "is represented as a 32 bit integer with a
resolution of one second"; we count seconds since the Unix epoch
(1970-01-01 00:00:00 UTC), which comfortably covers the paper's 1980-era
benchmark data.

Two chronons are distinguished:

* ``BEGINNING`` (0) -- the start of time as far as the store is concerned;
* ``FOREVER`` (2**31 - 1) -- the paper's ``"forever"``, used as the
  ``transaction_stop`` / ``valid_to`` of current tuple versions.

``"now"`` is not a stored value; it is resolved against a :class:`Clock` when
a statement executes, exactly as the prototype stamped operations with the
current time.  The clock is logical and fully deterministic so that benchmark
runs are reproducible.
"""

from __future__ import annotations

import threading

from repro.errors import ChrononRangeError

Chronon = int
"""Type alias: chronons are plain ints (seconds since the Unix epoch)."""

CHRONON_MIN: Chronon = 0
CHRONON_MAX: Chronon = 2**31 - 1

BEGINNING: Chronon = CHRONON_MIN
FOREVER: Chronon = CHRONON_MAX


def check_chronon(value: int) -> Chronon:
    """Validate that *value* is a representable chronon and return it.

    Raises :class:`ChrononRangeError` if the value does not fit the 32-bit
    representation used by the prototype.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise ChrononRangeError(f"chronon must be an int, got {value!r}")
    if not CHRONON_MIN <= value <= CHRONON_MAX:
        raise ChrononRangeError(
            f"chronon {value} outside [{CHRONON_MIN}, {CHRONON_MAX}]"
        )
    return value


def as_chronon(value: "int | str", clock: "Clock | None" = None) -> Chronon:
    """Coerce *value* to a chronon.

    Ints are range-checked; strings are parsed with
    :func:`repro.temporal.parse.parse_temporal` (``"now"`` requires *clock*).
    """
    if isinstance(value, int) and not isinstance(value, bool):
        return check_chronon(value)
    if isinstance(value, str):
        # Imported lazily to avoid a circular import at module load.
        from repro.temporal.parse import parse_temporal

        return parse_temporal(value, clock=clock)
    raise ChrononRangeError(f"cannot interpret {value!r} as a chronon")


class Clock:
    """A deterministic logical clock supplying ``"now"``.

    The prototype stamps every ``append``/``delete``/``replace`` with the
    current time.  For reproducible experiments the clock is logical: it
    starts at *start* and advances by *tick* seconds each time
    :meth:`advance` is called.  :meth:`now` reads the clock without
    advancing it, so all tuples touched by one statement get one timestamp,
    as in the paper's prototype where a statement executes at one instant.

    The clock is shared by every session of a database, so all state
    changes happen under one lock.  Update statements allocate their
    timestamp with :meth:`begin_statement` / :meth:`end_statement`, which
    advance-and-read atomically (two concurrent statements can never
    stamp the same time) and track the stamp as in-flight until the
    statement's writes are complete; :meth:`stable` is the newest time
    no in-flight writer can stamp at or before -- the watermark snapshot
    readers pin.
    """

    def __init__(self, start: Chronon = 315532800, tick: int = 1):
        # Default start: 1980-01-01 00:00:00 UTC, the epoch of the paper's
        # benchmark data.
        self._now = check_chronon(start)
        if tick < 0:
            raise ChrononRangeError(f"tick must be non-negative, got {tick}")
        self._tick = tick
        self._lock = threading.Lock()
        # Timestamps of statements whose writes are still in flight
        # (a list, not a set: with tick=0 stamps can repeat).
        self._in_flight: "list[Chronon]" = []

    @property
    def tick(self) -> int:
        """Seconds the clock advances per :meth:`advance` call."""
        return self._tick

    def now(self) -> Chronon:
        """Current time; does not advance the clock."""
        with self._lock:
            return self._now

    def advance(self, seconds: "int | None" = None) -> Chronon:
        """Advance by *seconds* (default: the configured tick); return now."""
        step = self._tick if seconds is None else seconds
        if step < 0:
            raise ChrononRangeError(f"cannot advance by {step} seconds")
        with self._lock:
            self._now = check_chronon(self._now + step)
            return self._now

    def begin_statement(self) -> Chronon:
        """Atomically advance and claim the new time for one statement.

        The returned stamp is registered as in-flight -- excluded from
        :meth:`stable` -- until :meth:`end_statement` releases it, so a
        snapshot reader can never pin a watermark that covers a write
        still being made.
        """
        with self._lock:
            self._now = check_chronon(self._now + self._tick)
            self._in_flight.append(self._now)
            return self._now

    def end_statement(self, stamp: Chronon) -> None:
        """Release a stamp claimed by :meth:`begin_statement`."""
        with self._lock:
            self._in_flight.remove(stamp)

    def stable(self) -> Chronon:
        """The newest time all writers at or before have completed.

        With writers in flight this is one chronon before the oldest
        in-flight stamp (stamps are allocated in increasing order, so
        everything at or before that point is committed); otherwise it is
        simply :meth:`now`.  This is the correct pin watermark: a
        snapshot at ``stable()`` is a prefix-consistent committed state
        that can never grow a row mid-snapshot.
        """
        with self._lock:
            if self._in_flight:
                return check_chronon(min(self._in_flight) - 1)
            return self._now

    def set(self, value: "int | str") -> Chronon:
        """Jump the clock to *value* (must not move backwards)."""
        target = as_chronon(value, clock=self)
        with self._lock:
            if target < self._now:
                raise ChrononRangeError(
                    f"clock cannot move backwards ({target} < {self._now})"
                )
            self._now = target
            return self._now

    def __repr__(self) -> str:
        from repro.temporal.format import format_chronon

        return f"Clock(now={format_chronon(self._now)!r}, tick={self._tick})"
