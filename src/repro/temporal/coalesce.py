"""Coalescing: merging value-equivalent tuples with adjacent or
overlapping valid periods.

A classic temporal-database operation (central to TSQL2, already implicit
in TQuel's semantics): two result tuples with identical explicit attributes
whose periods meet or overlap represent one uninterrupted fact and should
be one tuple.  ``retrieve coalesced (...)`` applies :func:`coalesce_rows`
to the result.

Example: a salary that was 3000 over [Jan, Mar) and 3000 over [Mar, Jun)
coalesces to 3000 over [Jan, Jun).
"""

from __future__ import annotations


def coalesce_periods(
    periods: "list[tuple[int, int]]",
) -> "list[tuple[int, int]]":
    """Merge overlapping or adjacent ``(start, stop)`` pairs."""
    merged: "list[list[int]]" = []
    for start, stop in sorted(periods):
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], stop)
        else:
            merged.append([start, stop])
    return [(start, stop) for start, stop in merged]


def coalesce_rows(
    rows: "list[tuple]", value_width: int
) -> "list[tuple]":
    """Coalesce result rows of shape ``(*values, valid_from, valid_to)``.

    Rows whose first *value_width* attributes are equal merge whenever
    their periods overlap or meet.  Output is sorted by value then period,
    one row per maximal period.
    """
    by_value: "dict[tuple, list[tuple[int, int]]]" = {}
    for row in rows:
        values = row[:value_width]
        by_value.setdefault(values, []).append(
            (row[value_width], row[value_width + 1])
        )
    coalesced = []
    for values in sorted(by_value):
        for start, stop in coalesce_periods(by_value[values]):
            coalesced.append(values + (start, stop))
    return coalesced
