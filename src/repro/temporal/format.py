"""Formatting chronons for output.

The prototype converts the internal 32-bit representation to human-readable
form automatically, with "resolutions ranging from a second to a year ...
selectable for output" (Section 4).  :func:`format_chronon` implements that:
the :class:`Resolution` enum selects how much of the timestamp is printed.
"""

from __future__ import annotations

import enum
import time

from repro.temporal.chronon import BEGINNING, FOREVER, Chronon, check_chronon


class Resolution(enum.Enum):
    """Output granularity, from one second up to one year."""

    SECOND = "second"
    MINUTE = "minute"
    HOUR = "hour"
    DAY = "day"
    MONTH = "month"
    YEAR = "year"


_PATTERNS = {
    Resolution.SECOND: "%Y-%m-%d %H:%M:%S",
    Resolution.MINUTE: "%Y-%m-%d %H:%M",
    Resolution.HOUR: "%Y-%m-%d %H:00",
    Resolution.DAY: "%Y-%m-%d",
    Resolution.MONTH: "%Y-%m",
    Resolution.YEAR: "%Y",
}


def format_chronon(
    value: Chronon, resolution: Resolution = Resolution.SECOND
) -> str:
    """Render *value* at the given *resolution* (UTC).

    The distinguished chronons render symbolically as ``"beginning"`` and
    ``"forever"`` at every resolution, matching the prototype's treatment of
    its special values.
    """
    check_chronon(value)
    if value == FOREVER:
        return "forever"
    if value == BEGINNING:
        return "beginning"
    return time.strftime(_PATTERNS[resolution], time.gmtime(value))
