"""The interval/event algebra behind TQuel's temporal operators.

TQuel models an interval tuple's validity as a period ``[start, stop)`` --
half-open, one chronon of resolution -- and an event tuple's occurrence as a
single chronon (a degenerate period ``[t, t+1)``).  The temporal operators of
the language map onto this algebra:

* ``a overlap b``   -- the periods share at least one chronon;
* ``a extend b``    -- the smallest period covering both (TQuel's *span*);
* ``a precede b``   -- every chronon of *a* is before every chronon of *b*;
* ``start of a``    -- the event at *a*'s first chronon;
* ``end of a``      -- the event at *a*'s last chronon.

A current tuple version has ``stop == FOREVER``, so ``x overlap "now"`` is
true exactly for current versions -- the idiom queries Q05-Q10 use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IntervalError
from repro.temporal.chronon import FOREVER, Chronon, check_chronon


@dataclass(frozen=True, order=True)
class Period:
    """A half-open period of chronons ``[start, stop)``.

    ``stop`` must be strictly greater than ``start``; a single chronon *t*
    is the degenerate period ``[t, t + 1)``, constructed by
    :meth:`Period.event`.
    """

    start: Chronon
    stop: Chronon

    def __post_init__(self):
        check_chronon(self.start)
        check_chronon(self.stop)
        if self.stop <= self.start:
            raise IntervalError(
                f"period stop ({self.stop}) must follow start ({self.start})"
            )

    @classmethod
    def event(cls, at: "Chronon | Period") -> "Period":
        """The degenerate period holding the single chronon *at*."""
        if isinstance(at, Period):
            return at
        check_chronon(at)
        if at == FOREVER:
            # The event "at forever" is pinned to the last representable
            # chronon so the half-open encoding stays well-formed.
            return cls(FOREVER - 1, FOREVER)
        return cls(at, at + 1)

    @property
    def is_event(self) -> bool:
        """True if the period covers exactly one chronon."""
        return self.stop == self.start + 1

    @property
    def is_current(self) -> bool:
        """True if the period extends to ``FOREVER`` (a current version)."""
        return self.stop == FOREVER

    def duration(self) -> int:
        """Number of chronons covered."""
        return self.stop - self.start

    def contains(self, chronon: Chronon) -> bool:
        """True if *chronon* falls inside the period."""
        return self.start <= chronon < self.stop

    def overlaps(self, other: "Period | Chronon") -> bool:
        """TQuel ``overlap``: the two periods share at least one chronon."""
        other = Period.event(other)
        return self.start < other.stop and other.start < self.stop

    def extend(self, other: "Period | Chronon") -> "Period":
        """TQuel ``extend``: the smallest period covering both operands."""
        other = Period.event(other)
        return Period(min(self.start, other.start), max(self.stop, other.stop))

    def precedes(self, other: "Period | Chronon") -> bool:
        """TQuel ``precede``: this period ends no later than *other* starts.

        Following TQuel's semantics, ``precede`` holds when the last chronon
        of the left operand is not after the first chronon of the right
        operand, so an interval precedes the event at its own endpoint.
        """
        other = Period.event(other)
        return self.stop - 1 <= other.start

    def intersect(self, other: "Period | Chronon") -> "Period | None":
        """The shared sub-period, or ``None`` when disjoint."""
        other = Period.event(other)
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        if stop <= start:
            return None
        return Period(start, stop)

    def start_event(self) -> "Period":
        """TQuel ``start of``: the event at the first chronon."""
        return Period.event(self.start)

    def end_event(self) -> "Period":
        """TQuel ``end of``: the event at the last chronon.

        For a current version (``stop == FOREVER``) the last chronon is
        unbounded; the prototype treats ``end of`` as ``FOREVER`` itself.
        """
        if self.is_current:
            return Period(FOREVER - 1, FOREVER)
        return Period.event(self.stop - 1)

    def __repr__(self) -> str:
        return f"Period({self.start}, {self.stop})"


def overlaps(a: "Period | Chronon", b: "Period | Chronon") -> bool:
    """Function form of :meth:`Period.overlaps` accepting bare chronons."""
    return Period.event(a).overlaps(b)


def extend(a: "Period | Chronon", b: "Period | Chronon") -> Period:
    """Function form of :meth:`Period.extend` accepting bare chronons."""
    return Period.event(a).extend(b)


def precedes(a: "Period | Chronon", b: "Period | Chronon") -> bool:
    """Function form of :meth:`Period.precedes` accepting bare chronons."""
    return Period.event(a).precedes(b)
