"""Parsing of date/time strings into chronons.

The prototype accepts "various formats of date and time" for input
(Section 4).  We accept the formats that appear in the paper plus the common
ISO forms:

* the symbolic constants ``"now"``, ``"forever"`` and ``"beginning"``;
* ``"08:00 1/1/80"`` and ``"4:00 1/1/80"`` -- time-of-day plus M/D/YY date,
  as used in benchmark queries Q03, Q04 and Q11;
* ``"1/1/80"``, ``"1/1/1980"`` -- bare M/D/YY[YY] dates;
* ``"1981"`` -- a bare year, as in the Figure 2 example query;
* ISO dates ``"1980-01-01"``, ``"1980-01-01 08:00"``,
  ``"1980-01-01 08:00:00"``, and with a ``T`` separator;
* ``"HH:MM"`` / ``"HH:MM:SS"`` time-of-day combined with any date form.

All times are UTC; two-digit years map to 19YY (the paper predates 2000).
A bare integer string is **not** a chronon -- use ints directly for that --
except for 3-or-4 digit years which denote midnight on Jan 1 of that year.
"""

from __future__ import annotations

import calendar
import re

from repro.errors import DateParseError
from repro.temporal.chronon import Chronon, Clock, BEGINNING, FOREVER, check_chronon

_SYMBOLIC = {"forever": FOREVER, "beginning": BEGINNING}

_DATE_SLASH = re.compile(r"^(\d{1,2})/(\d{1,2})/(\d{2}|\d{4})$")
_DATE_ISO = re.compile(r"^(\d{4})-(\d{1,2})-(\d{1,2})$")
_YEAR = re.compile(r"^(\d{3,4})$")
_TIME = re.compile(r"^(\d{1,2}):(\d{2})(?::(\d{2}))?$")
_MONTHS = {
    name.lower(): i
    for i, name in enumerate(calendar.month_name)
    if name
}
_MONTHS.update(
    (name.lower(), i) for i, name in enumerate(calendar.month_abbr) if name
)
_DATE_WORDY = re.compile(r"^([A-Za-z]+)\.?\s+(\d{1,2}),?\s+(\d{4})$")


def _expand_year(year: int) -> int:
    return 1900 + year if year < 100 else year


def _date_to_seconds(year: int, month: int, day: int) -> int:
    try:
        seconds = calendar.timegm((year, month, day, 0, 0, 0, 0, 1, 0))
    except (ValueError, OverflowError) as exc:
        raise DateParseError(f"invalid date {year}-{month}-{day}") from exc
    # calendar.timegm accepts out-of-range fields by normalizing; reject those
    # explicitly so "2/30/80" is an error rather than a silent March date.
    if not 1 <= month <= 12:
        raise DateParseError(f"month out of range in {year}-{month}-{day}")
    if not 1 <= day <= calendar.monthrange(year, month)[1]:
        raise DateParseError(f"day out of range in {year}-{month}-{day}")
    return seconds


def _parse_date_part(text: str) -> "int | None":
    """Parse a bare date, returning seconds at midnight UTC, or None."""
    match = _DATE_SLASH.match(text)
    if match:
        month, day, year = (int(g) for g in match.groups())
        return _date_to_seconds(_expand_year(year), month, day)
    match = _DATE_ISO.match(text)
    if match:
        year, month, day = (int(g) for g in match.groups())
        return _date_to_seconds(year, month, day)
    match = _YEAR.match(text)
    if match:
        return _date_to_seconds(int(match.group(1)), 1, 1)
    match = _DATE_WORDY.match(text)
    if match:
        month_name, day, year = match.groups()
        month = _MONTHS.get(month_name.lower())
        if month is None:
            return None
        return _date_to_seconds(int(year), month, int(day))
    return None


def _parse_time_part(text: str) -> "int | None":
    """Parse an HH:MM[:SS] time-of-day, returning seconds past midnight."""
    match = _TIME.match(text)
    if not match:
        return None
    hour, minute, second = (int(g) if g else 0 for g in match.groups())
    if hour > 23 or minute > 59 or second > 59:
        raise DateParseError(f"time of day out of range: {text!r}")
    return hour * 3600 + minute * 60 + second


def parse_temporal(text: str, clock: "Clock | None" = None) -> Chronon:
    """Parse *text* into a chronon.

    ``"now"`` is resolved against *clock*; passing ``"now"`` without a clock
    raises :class:`DateParseError`.  See the module docstring for the
    accepted formats.
    """
    stripped = text.strip()
    lowered = stripped.lower()
    if lowered == "now":
        if clock is None:
            raise DateParseError('"now" requires a clock to resolve against')
        return clock.now()
    if lowered in _SYMBOLIC:
        return _SYMBOLIC[lowered]

    # Try "TIME DATE" (the paper's "08:00 1/1/80"), "DATE TIME" (ISO-ish),
    # then bare DATE, then bare TIME is rejected (no date to anchor it).
    for separator in (" ", "T"):
        if separator in stripped:
            left, _, right = stripped.partition(separator)
            left, right = left.strip(), right.strip()
            time_part = _parse_time_part(left)
            date_part = _parse_date_part(right)
            if time_part is not None and date_part is not None:
                return check_chronon(date_part + time_part)
            date_part = _parse_date_part(left)
            time_part = _parse_time_part(right)
            if time_part is not None and date_part is not None:
                return check_chronon(date_part + time_part)

    date_part = _parse_date_part(stripped)
    if date_part is not None:
        return check_chronon(date_part)

    # Wordy dates contain spaces and fall through the two-part split above;
    # retry on the full string (e.g. "Feb 15, 1980").
    if _DATE_WORDY.match(stripped):
        wordy = _parse_date_part(stripped)
        if wordy is not None:
            return check_chronon(wordy)

    raise DateParseError(f"unrecognized date/time string: {text!r}")
