"""The TQuel language layer.

TQuel (Temporal QUEry Language) is "a superset of Quel" extending "several
Quel statements to provide query, data definition and data manipulation
capabilities supporting all four types of databases" (Section 3):

* ``retrieve`` gains the ``when`` predicate, the ``valid`` clause and the
  ``as of`` rollback clause;
* ``append``, ``delete`` and ``replace`` gain ``valid`` and ``when``;
* ``create`` specifies the relation's type (``persistent`` adds transaction
  time; ``interval``/``event`` add valid time);
* ``copy`` does batch input/output of relations with temporal attributes.

Pipeline: :mod:`lexer` -> :mod:`parser` (AST in :mod:`ast`) ->
:mod:`semantics` (binding and type checks against a database) ->
:mod:`planner` (Ingres-style decomposition) -> :mod:`interpreter`
(execution).  :mod:`compile` turns expression ASTs into Python closures.
"""

from repro.tquel.parser import parse, parse_statement

__all__ = ["parse", "parse_statement"]
