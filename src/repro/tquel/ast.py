"""Abstract syntax for TQuel.

Two expression families:

* **scalar expressions** (:class:`Attr`, :class:`Const`, :class:`BinOp`,
  :class:`UnaryOp`, :class:`Compare`, :class:`BoolOp`, :class:`NotOp`) --
  the ``where`` clause and target lists;
* **temporal expressions** (:class:`TempVar`, :class:`TempConst`,
  :class:`TempEdge`, :class:`TempBin`) -- the ``when``, ``valid`` and
  ``as of`` clauses.  Following TQuel, ``overlap`` and ``extend`` are
  period-valued constructors while a ``when`` clause's *outermost* temporal
  node is read as a predicate (``a overlap b``: do the periods intersect;
  ``a precede b``: does *a* end before *b* starts).  ``start of`` /
  ``end of`` (:class:`TempEdge`) extract a period's bounding events.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- scalar expressions -------------------------------------------------------


@dataclass(frozen=True)
class Attr:
    """A qualified attribute reference ``var.attribute``."""

    var: str
    name: str


@dataclass(frozen=True)
class Const:
    """A literal: int, float or string."""

    value: object


@dataclass(frozen=True)
class Param:
    """A named statement parameter ``$name``, bound at execution time.

    Parameters make prepared statements reusable: ``db.prepare("retrieve
    (h.id) where h.id = $id")`` compiles once and executes for any
    binding of ``id``.  A parameter's type is unknown until bound, so
    semantic analysis treats it as a wildcard scalar.
    """

    name: str


@dataclass(frozen=True)
class BinOp:
    """Arithmetic: ``+ - * /``."""

    op: str
    left: object
    right: object


@dataclass(frozen=True)
class UnaryOp:
    """Unary minus."""

    op: str
    operand: object


@dataclass(frozen=True)
class Compare:
    """Comparison: ``= != < <= > >=``."""

    op: str
    left: object
    right: object


@dataclass(frozen=True)
class BoolOp:
    """``and`` / ``or`` over predicate expressions."""

    op: str
    operands: tuple


@dataclass(frozen=True)
class NotOp:
    """Logical negation."""

    operand: object


AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class Aggregate:
    """A Quel aggregate: ``count(e.x)``, ``sum(e.sal by e.dept)``, ...

    With a ``by``-list the aggregate is computed per group; the statement's
    plain targets must be exactly the grouping expressions.
    """

    func: str
    operand: object
    by: tuple = ()


# -- temporal expressions ------------------------------------------------------


@dataclass(frozen=True)
class TempVar:
    """A range variable used temporally: its tuple's valid period."""

    var: str


@dataclass(frozen=True)
class TempConst:
    """A temporal string constant: ``"now"``, ``"08:00 1/1/80"``, ..."""

    text: str


@dataclass(frozen=True)
class TempEdge:
    """``start of e`` / ``end of e``: a period's bounding event."""

    which: str  # "start" | "end"
    operand: object


@dataclass(frozen=True)
class TempBin:
    """``overlap`` / ``extend`` / ``precede`` between temporal operands.

    ``overlap`` is intersection when used as an operand and an intersection
    test when used as a ``when`` predicate; ``extend`` is the covering span;
    ``precede`` is only a predicate.
    """

    op: str
    left: object
    right: object


# -- clauses ---------------------------------------------------------------------


@dataclass(frozen=True)
class ValidClause:
    """``valid from e1 to e2`` (interval) or ``valid at e`` (event)."""

    at: "object | None" = None
    from_: "object | None" = None
    to: "object | None" = None


@dataclass(frozen=True)
class AsOfClause:
    """``as of e1 [through e2]``."""

    at: object
    through: "object | None" = None


@dataclass(frozen=True)
class TargetItem:
    """One target-list element, optionally named (``res = expr``)."""

    name: "str | None"
    expr: object


# -- statements -------------------------------------------------------------------


@dataclass(frozen=True)
class RangeStmt:
    var: str
    relation: str


@dataclass(frozen=True)
class RetrieveStmt:
    targets: "tuple[TargetItem, ...]"
    into: "str | None" = None
    unique: bool = False
    coalesced: bool = False
    valid: "ValidClause | None" = None
    where: "object | None" = None
    when: "object | None" = None
    as_of: "AsOfClause | None" = None


@dataclass(frozen=True)
class AppendStmt:
    relation: str
    targets: "tuple[TargetItem, ...]"
    valid: "ValidClause | None" = None
    where: "object | None" = None
    when: "object | None" = None
    as_of: "AsOfClause | None" = None


@dataclass(frozen=True)
class DeleteStmt:
    var: str
    where: "object | None" = None
    when: "object | None" = None
    as_of: "AsOfClause | None" = None


@dataclass(frozen=True)
class ReplaceStmt:
    var: str
    targets: "tuple[TargetItem, ...]"
    valid: "ValidClause | None" = None
    where: "object | None" = None
    when: "object | None" = None
    as_of: "AsOfClause | None" = None


@dataclass(frozen=True)
class CreateStmt:
    relation: str
    columns: "tuple[tuple[str, str], ...]"
    persistent: bool = False
    kind: "str | None" = None  # None | "interval" | "event"


@dataclass(frozen=True)
class ModifyStmt:
    relation: str
    structure: str
    key: "str | None" = None
    options: "tuple[tuple[str, object], ...]" = field(default=())


@dataclass(frozen=True)
class CopyStmt:
    relation: str
    direction: str  # "from" | "into"
    path: str


@dataclass(frozen=True)
class DestroyStmt:
    relations: "tuple[str, ...]"


@dataclass(frozen=True)
class VacuumStmt:
    """``vacuum RELATION before TEXPR``: physically discard versions whose
    transaction period ended before the cutoff (TSQL2-style pruning)."""

    relation: str
    before: object


@dataclass(frozen=True)
class IndexStmt:
    relation: str
    index_name: str
    attribute: str
    options: "tuple[tuple[str, object], ...]" = field(default=())


@dataclass(frozen=True)
class PartitionStmt:
    """``partition R by hash|range on attr into N [where opt = v, ...]``.

    ``into 1`` collapses the relation back to a single store.  Options:
    ``parallel`` (``"serial"``/``"thread"``/``"process"``) picks the
    scatter-gather mode, ``bounds`` (a comma-separated string) gives the
    N-1 cut values of a range partitioning.
    """

    relation: str
    method: str  # "hash" | "range"
    attribute: str
    count: int
    options: "tuple[tuple[str, object], ...]" = field(default=())
