"""Compilation of expression ASTs into Python closures.

The prototype's one-variable query processor interprets qualifications
tuple-by-tuple; here each expression compiles once per statement execution
into a closure evaluated per tuple -- the hot path of every scan.

A closure is built relative to:

* ``var``       -- the *loop variable*: its attributes read from the closure's
  row argument;
* ``layouts``   -- per-variable :class:`VarLayout` mapping attribute names to
  tuple positions (relations and temporaries share this shape);
* ``bindings``  -- a mutable dict the interpreter updates as outer loops bind
  variables; closures for non-loop variables read through it.

Temporal string constants (including ``"now"``) resolve against the
database clock at compile time, i.e. once per statement execution, matching
the prototype where a statement executes at one instant.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.errors import ExecutionError, TQuelSemanticError
from repro.temporal.interval import Period
from repro.tquel import ast

# id(schema) -> its VarLayout.  Executor construction runs per statement
# (the prepared-statement hot path), while a relation's schema and field
# order are fixed for its lifetime, so the layout is computed once per
# schema object.  Keyed by id because RelationSchema is an unhashable
# dataclass; a finalizer evicts the entry when the schema is collected,
# before its id can be reused.
_LAYOUTS_BY_SCHEMA: "dict[int, VarLayout]" = {}


@dataclass(frozen=True)
class VarLayout:
    """Where a variable's attributes live inside its row tuples."""

    positions: "dict[str, int]"
    tx: "tuple[int, int] | None" = None  # (transaction_start, transaction_stop)
    valid: "tuple[int, int] | None" = None  # (valid_from, valid_to)
    valid_at: "int | None" = None

    @classmethod
    def for_schema(cls, schema) -> "VarLayout":
        key = id(schema)
        layout = _LAYOUTS_BY_SCHEMA.get(key)
        if layout is not None:
            return layout
        positions = {
            spec.name: index for index, spec in enumerate(schema.fields)
        }
        tx = None
        if schema.type.has_transaction_time:
            tx = (positions["transaction_start"], positions["transaction_stop"])
        valid = None
        valid_at = None
        if schema.type.has_valid_time:
            if "valid_at" in positions:
                valid_at = positions["valid_at"]
            else:
                valid = (positions["valid_from"], positions["valid_to"])
        layout = cls(positions=positions, tx=tx, valid=valid, valid_at=valid_at)
        _LAYOUTS_BY_SCHEMA[key] = layout
        weakref.finalize(schema, _LAYOUTS_BY_SCHEMA.pop, key, None)
        return layout

    @classmethod
    def for_fields(cls, fields) -> "VarLayout":
        """Layout of a temporary relation carrying copied time attributes."""
        positions = {spec.name: index for index, spec in enumerate(fields)}
        tx = None
        if "transaction_start" in positions:
            tx = (positions["transaction_start"], positions["transaction_stop"])
        valid = None
        valid_at = positions.get("valid_at")
        if "valid_from" in positions:
            valid = (positions["valid_from"], positions["valid_to"])
        return cls(positions=positions, tx=tx, valid=valid, valid_at=valid_at)

    def valid_period(self, row: tuple) -> Period:
        if self.valid is not None:
            start = row[self.valid[0]]
            stop = row[self.valid[1]]
            if stop > start:
                return Period(start, stop)
            return Period.event(start)
        if self.valid_at is not None:
            return Period.event(row[self.valid_at])
        raise ExecutionError("variable has no valid time")

    def tx_period(self, row: tuple) -> Period:
        if self.tx is None:
            raise ExecutionError("variable has no transaction time")
        start = row[self.tx[0]]
        stop = row[self.tx[1]]
        if stop > start:
            return Period(start, stop)
        return Period.event(start)


def _truncating_div(left, right):
    if right == 0:
        raise ExecutionError("division by zero")
    if isinstance(left, int) and isinstance(right, int):
        quotient = abs(left) // abs(right)
        return quotient if (left >= 0) == (right >= 0) else -quotient
    return left / right


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _truncating_div,
}

_COMPARE = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def compile_scalar(expr, var: "str | None", layouts, bindings):
    """Compile a scalar expression into ``fn(row) -> value``."""
    if isinstance(expr, ast.Const):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ast.Param):
        # Parameter values live in the interpreter's bindings dict under
        # the reserved "$params" key ("$" cannot start a range variable),
        # so prepared statements re-execute with fresh values without
        # recompiling any closure.
        name = expr.name

        def param_value(row):
            values = bindings.get("$params")
            if values is None or name not in values:
                raise ExecutionError(
                    f"parameter ${name} is not bound (pass params=...)"
                )
            return values[name]

        return param_value
    if isinstance(expr, ast.Attr):
        owner = expr.var if expr.var is not None else var
        layout = layouts[owner]
        position = layout.positions[expr.name]
        if owner == var:
            return lambda row: row[position]
        return lambda row: bindings[owner][position]
    if isinstance(expr, ast.UnaryOp):
        inner = compile_scalar(expr.operand, var, layouts, bindings)
        return lambda row: -inner(row)
    if isinstance(expr, ast.BinOp):
        left = compile_scalar(expr.left, var, layouts, bindings)
        right = compile_scalar(expr.right, var, layouts, bindings)
        op = _ARITH[expr.op]
        return lambda row: op(left(row), right(row))
    if isinstance(expr, ast.Compare):
        left = compile_scalar(expr.left, var, layouts, bindings)
        right = compile_scalar(expr.right, var, layouts, bindings)
        op = _COMPARE[expr.op]
        return lambda row: op(left(row), right(row))
    if isinstance(expr, ast.BoolOp):
        parts = [
            compile_scalar(operand, var, layouts, bindings)
            for operand in expr.operands
        ]
        if expr.op == "and":
            return lambda row: all(part(row) for part in parts)
        return lambda row: any(part(row) for part in parts)
    if isinstance(expr, ast.NotOp):
        inner = compile_scalar(expr.operand, var, layouts, bindings)
        return lambda row: not inner(row)
    raise ExecutionError(f"cannot compile scalar node {expr!r}")


def compile_temporal(expr, var, layouts, bindings, clock):
    """Compile a temporal operand into ``fn(row) -> Period | None``.

    ``None`` denotes an empty period (an ``overlap`` of disjoint operands)
    and propagates: predicates over it are false, ``extend`` ignores the
    empty side.
    """
    if isinstance(expr, ast.TempConst):
        period = Period.event(clock.parse(expr.text))
        return lambda row: period
    if isinstance(expr, ast.TempVar):
        layout = layouts[expr.var]
        if expr.var == var:
            return lambda row: layout.valid_period(row)
        name = expr.var
        return lambda row: layout.valid_period(bindings[name])
    if isinstance(expr, ast.TempEdge):
        inner = compile_temporal(expr.operand, var, layouts, bindings, clock)
        if expr.which == "start":

            def start_of(row):
                period = inner(row)
                return None if period is None else period.start_event()

            return start_of

        def end_of(row):
            period = inner(row)
            return None if period is None else period.end_event()

        return end_of
    if isinstance(expr, ast.TempBin):
        left = compile_temporal(expr.left, var, layouts, bindings, clock)
        right = compile_temporal(expr.right, var, layouts, bindings, clock)
        if expr.op == "overlap":

            def intersection(row):
                a = left(row)
                b = right(row)
                if a is None or b is None:
                    return None
                return a.intersect(b)

            return intersection
        if expr.op == "extend":

            def span(row):
                a = left(row)
                b = right(row)
                if a is None:
                    return b
                if b is None:
                    return a
                return a.extend(b)

            return span
        raise TQuelSemanticError(
            f"'{expr.op}' cannot be used as a temporal operand"
        )
    raise ExecutionError(f"cannot compile temporal node {expr!r}")


def compile_when(node, var, layouts, bindings, clock):
    """Compile a when-clause predicate into ``fn(row) -> bool``."""
    if isinstance(node, ast.BoolOp):
        parts = [
            compile_when(operand, var, layouts, bindings, clock)
            for operand in node.operands
        ]
        if node.op == "and":
            return lambda row: all(part(row) for part in parts)
        return lambda row: any(part(row) for part in parts)
    if isinstance(node, ast.NotOp):
        inner = compile_when(node.operand, var, layouts, bindings, clock)
        return lambda row: not inner(row)
    if isinstance(node, ast.TempBin) and node.op in ("overlap", "precede"):
        left = compile_temporal(node.left, var, layouts, bindings, clock)
        right = compile_temporal(node.right, var, layouts, bindings, clock)
        if node.op == "overlap":

            def overlap_pred(row):
                a = left(row)
                b = right(row)
                return a is not None and b is not None and a.overlaps(b)

            return overlap_pred

        def precede_pred(row):
            a = left(row)
            b = right(row)
            return a is not None and b is not None and a.precedes(b)

        return precede_pred
    raise ExecutionError(f"cannot compile when node {node!r}")


def make_asof_filter(layout: VarLayout, period: Period):
    """``fn(row) -> bool``: the version's transaction period overlaps the
    as-of period (the rollback visibility rule)."""
    tx_start, tx_stop = layout.tx
    p_start, p_stop = period.start, period.stop

    def visible(row):
        start = row[tx_start]
        stop = row[tx_stop]
        if stop <= start:
            stop = start + 1  # degenerate: created and stamped at once
        return start < p_stop and p_start < stop

    return visible


def conjunction(filters):
    """Combine row filters; an empty list accepts everything."""
    if not filters:
        return lambda row: True
    if len(filters) == 1:
        return filters[0]
    return lambda row: all(check(row) for check in filters)


def batch_conjunction(filters):
    """Fuse row filters into one ``fn(rows) -> list`` applied per batch.

    The batch execution kernel hands each page's decoded rows to this
    closure in one call, replacing a per-tuple closure invocation with a
    single list comprehension over the page.
    """
    if not filters:
        return lambda rows: rows
    if len(filters) == 1:
        check = filters[0]
        return lambda rows: [row for row in rows if check(row)]
    return lambda rows: [
        row for row in rows if all(check(row) for check in filters)
    ]
