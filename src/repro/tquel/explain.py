"""EXPLAIN: describe a retrieve's decomposition without running it.

Section 5.3 of the paper analyzes each benchmark query by narrating its
plan ("processing Q09 first scans an ISAM file sequentially doing
selection and projection into a temporary relation ... then performs one
hashed access for each of 1024 tuples").  :func:`explain` produces that
narration for any retrieve:

* the resolved ``as of`` event (including the implicit ``"now"``);
* which variables one-variable detachment sends to temporaries;
* the tuple-substitution order;
* each loop depth's access path -- keyed (hash/ISAM), secondary index, or
  sequential scan -- and whether enhanced structures serve it from
  current data only;
* with the cost-based optimizer on, a ``cost:`` section pricing the
  chosen path and every rejected alternative in predicted page reads
  (the Fig. 9 model over catalog statistics), and -- under ANALYZE --
  predicted versus actually-metered pages.

The plan is derived with the executor's own decision procedures, so what
EXPLAIN prints is what execution does; nothing is read or written.
"""

from __future__ import annotations

from repro.errors import TQuelSemanticError
from repro.temporal.format import format_chronon
from repro.tquel import ast
from repro.tquel.interpreter import Executor
from repro.tquel.parser import parse_statement
from repro.tquel.semantics import Analyzer


class _PlannedTemporary:
    """Sentinel marking a variable as detached during dry planning."""


def _partition_suffix(executor, relation, source, gather=None) -> str:
    pruned = ""
    if executor._asof_period is not None and source.layout.tx is not None:
        survivors = len(
            relation.survivors(executor._asof_period.stop - 1, count=False)
        )
        if survivors < relation.partition_count:
            pruned = (
                f", {relation.partition_count - survivors} pruned by"
                " as-of bounds"
            )
    degraded = (
        ", degraded to serial"
        if getattr(relation, "gather_degraded", False)
        else ""
    )
    mode = relation.parallel
    planned = ""
    if gather is not None and gather != mode:
        mode = gather
        planned = " (planner override)"
    return (
        f" [{relation.partition_count} {relation.partition_method}"
        f" partitions, {mode} gather{planned}{pruned}{degraded}]"
    )


def _access_description(
    executor: Executor, var: str, bound: set, choice=None
) -> str:
    source = executor._sources[var]
    if source.temp is not None:
        return f"scan temporary({var})"
    relation = source.relation
    suffix = ""
    if getattr(relation, "is_two_level", False) and source.current_only:
        suffix = " [primary store only]"
    elif (
        getattr(relation, "zone_map", None) is not None
        and executor._asof_period is not None
        and source.layout.tx is not None
    ):
        suffix = " [zone map prunes post-as-of pages]"
    if getattr(relation, "is_partitioned", False):
        suffix += _partition_suffix(
            executor, relation, source,
            gather=choice.gather if choice is not None else None,
        )
    keyed_position = None
    if choice is not None:
        # The planner decided; render the path it actually chose.
        if choice.kind == "keyed":
            keyed_position = choice.position
        elif choice.kind == "index":
            index = relation.index_for(choice.position)
            if index is not None:
                return _index_description(index, source)
            keyed_position = None
        else:
            return f"sequential scan{suffix}"
    else:
        for position, _ in executor._find_key_equality(var, bound):
            if relation.can_key_lookup(position):
                keyed_position = position
                break
    if keyed_position is not None:
        attribute = relation.schema.fields[keyed_position].name
        structure = (
            relation.storage.primary.kind.value
            if getattr(relation, "is_two_level", False)
            else relation.structure.value
        )
        return f"keyed {structure} access on {attribute}{suffix}"
    if choice is None:
        for position, _ in executor._find_key_equality(var, bound):
            index = relation.index_for(position)
            if index is not None:
                return _index_description(index, source)
    return f"sequential scan{suffix}"


def _index_description(index, source) -> str:
    levels = (
        "current index only"
        if source.current_only and index.levels.value == 2
        else f"{index.levels.value}-level"
    )
    return (
        f"secondary index {index.name} "
        f"({index.structure.value}, {levels})"
    )


def _cost_lines(choices) -> "list[str]":
    """Render the planner's decisions: chosen path first, then every
    rejected alternative, each with its Fig. 9 predicted page reads."""
    lines = ["  cost:"]
    for var, choice in choices:
        chosen = choice.chosen
        if chosen is None:
            lines.append(f"    {var}: {choice.kind} (not priced)")
            continue
        lines.append(
            f"    {var}: chosen {chosen.description}, predicted "
            f"{chosen.predicted:.1f} page read(s)"
        )
        for alternative in choice.rejected:
            lines.append(
                f"    {var}: rejected {alternative.description}, "
                f"predicted {alternative.predicted:.1f} page read(s)"
            )
    return lines


def explain(db, text: str, analyze: bool = False) -> str:
    """Render the plan for one retrieve statement.

    With ``analyze=True`` the statement is also *executed* under the
    tracer, and the measured span tree -- per-stage wall time and
    per-relation page I/O -- is appended to the narration.  The
    instrumentation only reads the I/O meter, so the page counts shown
    are exactly what an untraced execution of the same statement costs.
    """
    statement = parse_statement(text)
    if not isinstance(statement, ast.RetrieveStmt):
        raise TQuelSemanticError("explain covers retrieve statements")
    analysis = Analyzer(db).analyze_retrieve(statement)
    executor = Executor(db, analysis)

    lines = ["plan:"]
    if executor._asof_period is not None:
        period = executor._asof_period
        if period.is_event:
            when = format_chronon(period.start)
            implicit = "" if analysis.as_of is not None else " (implicit)"
            lines.append(f"  as of {when}{implicit}")
        else:
            lines.append(
                f"  as of {format_chronon(period.start)} through "
                f"{format_chronon(period.stop - 1)}"
            )

    choices: "list[tuple[str, object]]" = []

    def choose(var, bound):
        choice = executor.access_choice(var, bound)
        if choice is not None:
            choices.append((var, choice))
        return choice

    order = list(analysis.var_order)
    if len(order) > 1:
        for var in order:
            if executor._should_detach(var, order):
                source = executor._sources[var]
                own = [
                    conjunct
                    for conjunct in executor._conjuncts
                    if conjunct.vars == frozenset((var,))
                ]
                how = _access_description(
                    executor, var, set(), choose(var, set())
                )
                lines.append(
                    f"  detach {var} "
                    f"({source.relation.schema.name}) into a temporary "
                    f"via {how} applying {len(own)} one-variable "
                    f"clause(s)"
                )
                source.temp = _PlannedTemporary()
        order = executor._substitution_order(order)

    label = "substitute" if len(order) > 1 else "access"
    for depth, var in enumerate(order):
        bound = set(order[:depth])
        source = executor._sources[var]
        relation_name = (
            f"temporary({var})"
            if isinstance(source.temp, _PlannedTemporary)
            else source.relation.schema.name
        )
        source_temp = source.temp
        if isinstance(source_temp, _PlannedTemporary):
            how = "scan"
        else:
            how = _access_description(
                executor, var, bound, choose(var, bound)
            )
        lines.append(
            f"  {label} depth {depth}: {var} ({relation_name}) via {how}"
        )

    if analysis.has_aggregates:
        by = next(
            expr.by
            for _, expr, __ in analysis.targets
            if isinstance(expr, ast.Aggregate)
        )
        if by:
            lines.append(f"  aggregate grouped by {len(by)} expression(s)")
        else:
            lines.append("  aggregate into a single row")
    if statement.unique:
        lines.append("  deduplicate result rows")
    if statement.into is not None:
        lines.append(f"  store result into {statement.into}")
    if getattr(db, "optimizer_enabled", False):
        if choices:
            lines.extend(_cost_lines(choices))
    else:
        lines.append("  cost: optimizer off (fixed access-path strategy)")
    if analyze:
        predicted = None
        if len(analysis.vars) == 1 and len(choices) == 1:
            chosen = choices[0][1].chosen
            if chosen is not None:
                predicted = chosen.predicted
        lines.extend(_measured_lines(db, text, predicted))
    return "\n".join(lines)


def _measured_lines(db, text: str, predicted: "float | None" = None):
    """Execute *text* under the tracer; render the measured span tree."""
    with db.tracer.force():
        result = db.execute(text)
    span = db.tracer.last
    lines = ["measured:"]
    lines.extend("  " + line for line in span.render().split("\n"))
    lines.append(
        f"  result: {len(result.rows)} row(s), input "
        f"{result.input_pages} page(s), output {result.output_pages} "
        f"page(s)"
    )
    if predicted is not None and predicted > 0:
        ratio = result.input_pages / predicted
        lines.append(
            f"  cost model: predicted {predicted:.1f} page read(s), "
            f"actual {result.input_pages} (ratio {ratio:.2f})"
        )
    return lines
