"""EXPLAIN: describe a retrieve's decomposition without running it.

Section 5.3 of the paper analyzes each benchmark query by narrating its
plan ("processing Q09 first scans an ISAM file sequentially doing
selection and projection into a temporary relation ... then performs one
hashed access for each of 1024 tuples").  :func:`explain` produces that
narration for any retrieve:

* the resolved ``as of`` event (including the implicit ``"now"``);
* which variables one-variable detachment sends to temporaries;
* the tuple-substitution order;
* each loop depth's access path -- keyed (hash/ISAM), secondary index, or
  sequential scan -- and whether enhanced structures serve it from
  current data only.

The plan is derived with the executor's own decision procedures, so what
EXPLAIN prints is what execution does; nothing is read or written.
"""

from __future__ import annotations

from repro.errors import TQuelSemanticError
from repro.temporal.format import format_chronon
from repro.tquel import ast
from repro.tquel.interpreter import Executor
from repro.tquel.parser import parse_statement
from repro.tquel.semantics import Analyzer


class _PlannedTemporary:
    """Sentinel marking a variable as detached during dry planning."""


def _access_description(executor: Executor, var: str, bound: set) -> str:
    source = executor._sources[var]
    if source.temp is not None:
        return f"scan temporary({var})"
    relation = source.relation
    suffix = ""
    if getattr(relation, "is_two_level", False) and source.current_only:
        suffix = " [primary store only]"
    elif (
        getattr(relation, "zone_map", None) is not None
        and executor._asof_period is not None
        and source.layout.tx is not None
    ):
        suffix = " [zone map prunes post-as-of pages]"
    if getattr(relation, "is_partitioned", False):
        pruned = ""
        if executor._asof_period is not None and source.layout.tx is not None:
            survivors = len(
                relation.survivors(
                    executor._asof_period.stop - 1, count=False
                )
            )
            if survivors < relation.partition_count:
                pruned = (
                    f", {relation.partition_count - survivors} pruned by"
                    " as-of bounds"
                )
        degraded = (
            ", degraded to serial"
            if getattr(relation, "gather_degraded", False)
            else ""
        )
        suffix += (
            f" [{relation.partition_count} {relation.partition_method}"
            f" partitions, {relation.parallel} gather{pruned}{degraded}]"
        )
    for position, _ in executor._find_key_equality(var, bound):
        if relation.can_key_lookup(position):
            attribute = relation.schema.fields[position].name
            structure = (
                relation.storage.primary.kind.value
                if getattr(relation, "is_two_level", False)
                else relation.structure.value
            )
            return f"keyed {structure} access on {attribute}{suffix}"
    for position, _ in executor._find_key_equality(var, bound):
        index = relation.index_for(position)
        if index is not None:
            levels = (
                "current index only"
                if source.current_only and index.levels.value == 2
                else f"{index.levels.value}-level"
            )
            return (
                f"secondary index {index.name} "
                f"({index.structure.value}, {levels})"
            )
    return f"sequential scan{suffix}"


def explain(db, text: str, analyze: bool = False) -> str:
    """Render the plan for one retrieve statement.

    With ``analyze=True`` the statement is also *executed* under the
    tracer, and the measured span tree -- per-stage wall time and
    per-relation page I/O -- is appended to the narration.  The
    instrumentation only reads the I/O meter, so the page counts shown
    are exactly what an untraced execution of the same statement costs.
    """
    statement = parse_statement(text)
    if not isinstance(statement, ast.RetrieveStmt):
        raise TQuelSemanticError("explain covers retrieve statements")
    analysis = Analyzer(db).analyze_retrieve(statement)
    executor = Executor(db, analysis)

    lines = ["plan:"]
    if executor._asof_period is not None:
        period = executor._asof_period
        if period.is_event:
            when = format_chronon(period.start)
            implicit = "" if analysis.as_of is not None else " (implicit)"
            lines.append(f"  as of {when}{implicit}")
        else:
            lines.append(
                f"  as of {format_chronon(period.start)} through "
                f"{format_chronon(period.stop - 1)}"
            )

    order = list(analysis.var_order)
    if len(order) > 1:
        for var in order:
            if executor._should_detach(var, order):
                source = executor._sources[var]
                own = [
                    conjunct
                    for conjunct in executor._conjuncts
                    if conjunct.vars == frozenset((var,))
                ]
                how = _access_description(executor, var, set())
                lines.append(
                    f"  detach {var} "
                    f"({source.relation.schema.name}) into a temporary "
                    f"via {how} applying {len(own)} one-variable "
                    f"clause(s)"
                )
                source.temp = _PlannedTemporary()
        order = executor._substitution_order(order)

    label = "substitute" if len(order) > 1 else "access"
    for depth, var in enumerate(order):
        bound = set(order[:depth])
        source = executor._sources[var]
        relation_name = (
            f"temporary({var})"
            if isinstance(source.temp, _PlannedTemporary)
            else source.relation.schema.name
        )
        source_temp = source.temp
        if isinstance(source_temp, _PlannedTemporary):
            how = "scan"
        else:
            how = _access_description(executor, var, bound)
        lines.append(
            f"  {label} depth {depth}: {var} ({relation_name}) via {how}"
        )

    if analysis.has_aggregates:
        by = next(
            expr.by
            for _, expr, __ in analysis.targets
            if isinstance(expr, ast.Aggregate)
        )
        if by:
            lines.append(f"  aggregate grouped by {len(by)} expression(s)")
        else:
            lines.append("  aggregate into a single row")
    if statement.unique:
        lines.append("  deduplicate result rows")
    if statement.into is not None:
        lines.append(f"  store result into {statement.into}")
    if analyze:
        lines.extend(_measured_lines(db, text))
    return "\n".join(lines)


def _measured_lines(db, text: str) -> "list[str]":
    """Execute *text* under the tracer; render the measured span tree."""
    with db.tracer.force():
        result = db.execute(text)
    span = db.tracer.last
    lines = ["measured:"]
    lines.extend("  " + line for line in span.render().split("\n"))
    lines.append(
        f"  result: {len(result.rows)} row(s), input "
        f"{result.input_pages} page(s), output {result.output_pages} "
        f"page(s)"
    )
    return lines
