"""Query execution: Ingres-style decomposition and tuple-at-a-time
interpretation.

The prototype "still us[es] the conventional access methods and query
processing algorithms" of Ingres (Section 4); the benchmark's analysis
(Section 5.3) names them:

* **one-variable queries** run through the one-variable query processor,
  choosing *hashed access*, *ISAM access* or a *sequential scan*;
* **one-variable detachment**: a multi-variable query first detaches each
  variable that has single-variable clauses into a projected temporary
  relation (Q09's scan of the ISAM file "doing selection and projection
  into a temporary relation");
* **tuple substitution**: the remaining variables are bound one tuple at a
  time, innermost access again chosen by the one-variable processor (Q09
  "then performs one hashed access for each ... tuple in the temporary
  relation").

Temporal clause handling follows TQuel:

* ``as of`` (with ``"now"`` as the default when the clause is omitted, per
  TQuel's semantics) filters each transaction-time variable to versions
  whose transaction period overlaps the as-of event;
* ``when`` conjuncts filter on valid periods;
* the ``valid`` clause (or, by default, the intersection of the
  participating valid periods) computes the result's implicit time
  attributes.

Enhanced access paths (Section 6) slot in transparently: when a variable's
constraints restrict it to current versions, a two-level store is read
through its primary store only, and a 2-level secondary index through its
current index only.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.catalog.schema import IMPLICIT_ATTRIBUTES
from repro.engine import mutate
from repro.engine.result import Result
from repro.errors import ExecutionError, TQuelSemanticError
from repro.exec.scan import compile_page_fold, merge_partials
from repro.storage.record import AttributeType, FieldSpec
from repro.temporal.interval import Period
from repro.tquel import ast
from repro.tquel.compile import (
    VarLayout,
    batch_conjunction,
    compile_scalar,
    compile_temporal,
    compile_when,
    conjunction,
    make_asof_filter,
)
from repro.tquel.semantics import Analysis, Conjunct

# Page-at-a-time batch execution is the default; REPRO_BATCH_EXECUTION=0
# falls back to tuple-at-a-time interpretation everywhere (the reference
# path the differential tests compare against).
DEFAULT_BATCH_EXECUTION = os.environ.get("REPRO_BATCH_EXECUTION", "1") != "0"


@dataclass
class _VarSource:
    """Per-variable execution state: where its rows come from."""

    name: str
    relation: object  # StoredRelation / system-relation adapter
    layout: VarLayout
    temp: object = None  # TemporaryRelation once detached
    asof_applied: bool = False
    current_only: bool = False


class Executor:
    """Executes one analyzed statement against a database."""

    def __init__(
        self, database, analysis: Analysis, params: "dict | None" = None,
        plan_key: "tuple | None" = None,
    ):
        self._db = database
        self._analysis = analysis
        self._bindings: "dict[str, tuple]" = {}
        if params:
            # Reserved key: "$" cannot start a range variable, so scalar
            # closures compiled for ast.Param read through it safely.
            self._bindings["$params"] = dict(params)
        self._sources: "dict[str, _VarSource]" = {}
        self._temps = []
        self._conjuncts: "list[Conjunct]" = analysis.where + analysis.when
        self._consumed: "set[int]" = set()
        self._batch = bool(
            getattr(database, "batch_execution", DEFAULT_BATCH_EXECUTION)
        )
        # Cost-based access-path selection (repro.engine.planner): when
        # the database runs with the optimizer on, _candidates defers the
        # keyed/index/scan decision to the planner; plan_key (statement
        # fingerprint + range table + catalog/stats epochs) keys its
        # decision cache.  None leaves the fixed strategy in place.
        self._plan_key = plan_key
        planner = getattr(database, "planner", None)
        self._planner = (
            planner
            if planner is not None
            and getattr(database, "optimizer_enabled", False)
            else None
        )
        self._asof_period = self._resolve_asof()
        for name, info in analysis.vars.items():
            self._sources[name] = _VarSource(
                name=name,
                relation=info.relation,
                layout=VarLayout.for_schema(info.schema),
            )
        for source in self._sources.values():
            source.current_only = self._is_current_only(source)

    # -- clause resolution ------------------------------------------------------

    def _resolve_asof(self) -> "Period | None":
        """The statement's as-of period (default: the event at now)."""
        analysis = self._analysis
        any_tx = any(
            info.schema.type.has_transaction_time
            for info in analysis.vars.values()
        )
        if analysis.as_of is None:
            if not any_tx:
                return None
            return Period.event(self._db.statement_now())
        at = self._eval_const_temporal(analysis.as_of.at)
        if analysis.as_of.through is None:
            return at
        through = self._eval_const_temporal(analysis.as_of.through)
        if through.stop <= at.start:
            raise ExecutionError("as-of: 'through' precedes the start event")
        return Period(at.start, through.stop)

    def _eval_const_temporal(self, expr) -> Period:
        fn = compile_temporal(expr, None, {}, {}, self._db)
        period = fn(None)
        if period is None:
            raise ExecutionError("empty period in a constant temporal clause")
        return period

    def _is_current_only(self, source: _VarSource) -> bool:
        """Do the constraints restrict *source* to fully-current versions?

        True when the as-of clause resolves to "now" (covering transaction
        time) and, if the relation has valid time, some conjunct demands
        that the variable overlap "now".  This is the condition under which
        Section 6's structures may skip history data.
        """
        schema = source.relation.schema
        # Deliberately the *live* clock, not statement_now(): skipping
        # history is only sound when the as-of point is the newest time
        # that exists -- a session pinned at an older watermark has
        # asof == statement_now() yet must still scan history.
        now = self._db.clock.now()
        if schema.type.has_transaction_time:
            if self._asof_period is None or not (
                self._asof_period.start == now
                and self._asof_period.is_event
            ):
                return False
        if schema.type.has_valid_time:
            if not any(
                self._conjunct_is_overlap_now(conjunct, source.name)
                for conjunct in self._conjuncts
            ):
                return False
        return True

    def _conjunct_is_overlap_now(self, conjunct: Conjunct, var: str) -> bool:
        node = conjunct.expr
        if not (isinstance(node, ast.TempBin) and node.op == "overlap"):
            return False
        operands = (node.left, node.right)
        has_var = any(
            isinstance(op, ast.TempVar) and op.var == var for op in operands
        )
        # The live clock: "now" constants in statement text are parsed
        # against it, so the comparison must use the same value.
        now = self._db.clock.now()
        has_now = any(
            isinstance(op, ast.TempConst)
            and self._db.parse_temporal_text(op.text) == now
            for op in operands
        )
        return has_var and has_now

    # -- layouts & compilation helpers ----------------------------------------------

    def _layouts(self) -> "dict[str, VarLayout]":
        return {name: source.layout for name, source in self._sources.items()}

    def _compile_conjunct(self, conjunct: Conjunct, var: "str | None"):
        if conjunct.is_temporal:
            return compile_when(
                conjunct.expr, var, self._layouts(), self._bindings, self._db
            )
        return compile_scalar(
            conjunct.expr, var, self._layouts(), self._bindings
        )

    def _pending_filter_list(self, var: str, bound: "set[str]"):
        """Compile conjuncts evaluable once *var* joins the bound set.

        A conjunct applies at the first loop depth where all its variables
        are bound; constant-only conjuncts apply at the outermost loop.
        Consumes each applicable conjunct (and the variable's as-of
        filter), so call exactly once per (var, depth).
        """
        source = self._sources[var]
        filters = []
        available = bound | {var}
        for index, conjunct in enumerate(self._conjuncts):
            if index in self._consumed:
                continue
            if conjunct.vars <= available:
                filters.append(self._compile_conjunct(conjunct, var))
                self._consumed.add(index)
        if (
            not source.asof_applied
            and self._asof_period is not None
            and source.layout.tx is not None
        ):
            filters.append(make_asof_filter(source.layout, self._asof_period))
            source.asof_applied = True
        return filters

    def _pending_filters(self, var: str, bound: "set[str]"):
        """The variable's pending conjuncts fused into ``fn(row) -> bool``."""
        return conjunction(self._pending_filter_list(var, bound))

    # -- access-path selection --------------------------------------------------------

    def _find_key_equality(self, var: str, bound: "set[str]"):
        """A ``var.attr = expr(bound)`` conjunct usable for keyed access.

        Returns ``(attribute_position, value_closure)`` or ``None``.
        """
        source = self._sources[var]
        relation = source.relation
        layouts = self._layouts()
        for conjunct in self._conjuncts:
            if conjunct.is_temporal:
                continue
            node = conjunct.expr
            if not (isinstance(node, ast.Compare) and node.op == "="):
                continue
            if not conjunct.vars <= bound | {var}:
                continue
            for attr_side, value_side in (
                (node.left, node.right),
                (node.right, node.left),
            ):
                if not (
                    isinstance(attr_side, ast.Attr) and attr_side.var == var
                ):
                    continue
                value_vars = _expr_vars(value_side)
                if var in value_vars:
                    continue
                position = source.layout.positions.get(attr_side.name)
                if position is None:
                    continue
                value_fn = compile_scalar(
                    value_side, None, layouts, self._bindings
                )
                yield position, value_fn

    def _scan_asof_max(self, var: str) -> "int | None":
        """Upper as-of bound a sequential scan may prune against (zone
        maps, partition tx_min), or None without one."""
        source = self._sources[var]
        if (
            self._asof_period is not None
            and source.layout.tx is not None
        ):
            return self._asof_period.stop - 1
        return None

    def access_choice(self, var: str, bound: "set[str]"):
        """The planner's decision for *var*, or None when the optimizer
        is off or the variable reads a temporary (always scanned)."""
        if self._planner is None or self._sources[var].temp is not None:
            return None
        return self._planner.choose(self, var, bound, self._plan_key)

    def _planned_source(self, choice, var: str, bound: "set[str]",
                        batch: bool):
        """Build the row source the planner chose.

        Key-equality value closures are re-resolved here (decisions are
        cached across executions; closures are not).  Falls through to a
        sequential scan, the always-feasible path.
        """
        source = self._sources[var]
        relation = source.relation
        current_only = source.current_only
        if choice.kind == "keyed":
            for position, value_fn in self._find_key_equality(var, bound):
                if position != choice.position:
                    continue
                if batch:
                    return lambda vf=value_fn: relation.lookup_batches(
                        vf(None), current_only=current_only
                    )
                return lambda vf=value_fn: _lookup_with_rids(
                    relation, vf(None), current_only
                )
        elif choice.kind == "index":
            for position, value_fn in self._find_key_equality(var, bound):
                if position != choice.position:
                    continue
                index = relation.index_for(position)
                if index is None or index.name != choice.index_name:
                    continue
                if batch:
                    return lambda idx=index, vf=value_fn: _index_batches(
                        relation, idx, vf(None), current_only
                    )
                return lambda idx=index, vf=value_fn: _index_with_rids(
                    relation, idx, vf(None), current_only
                )
        asof_max = self._scan_asof_max(var)
        if batch:
            if choice.gather is not None and getattr(
                relation, "is_partitioned", False
            ):
                return lambda: relation.scan_batches(
                    current_only=current_only, asof_max=asof_max,
                    gather=choice.gather,
                )
            return lambda: relation.scan_batches(
                current_only=current_only, asof_max=asof_max
            )
        return lambda: _scan_with_rids(relation, current_only, asof_max)

    def _candidates(self, var: str, bound: "set[str]"):
        """Build the row source for *var*: a zero-argument callable yielding
        ``(rid, row)`` pairs, re-evaluated for each outer binding."""
        source = self._sources[var]
        if source.temp is not None:
            temp = source.temp
            return lambda: _with_rids(temp.scan())
        choice = self.access_choice(var, bound)
        if choice is not None:
            return self._planned_source(choice, var, bound, batch=False)
        relation = source.relation
        current_only = source.current_only
        # 1. keyed access on the primary structure
        for position, value_fn in self._find_key_equality(var, bound):
            if relation.can_key_lookup(position):
                return lambda vf=value_fn: _lookup_with_rids(
                    relation, vf(None), current_only
                )
        # 2. secondary-index access
        for position, value_fn in self._find_key_equality(var, bound):
            index = relation.index_for(position)
            if index is not None:
                return lambda idx=index, vf=value_fn: _index_with_rids(
                    relation, idx, vf(None), current_only
                )
        # 3. sequential scan (a zone map may skip pages recorded after
        # the as-of event)
        asof_max = self._scan_asof_max(var)
        return lambda: _scan_with_rids(relation, current_only, asof_max)

    def _batch_candidates(self, var: str, bound: "set[str]"):
        """Batched row source for *var*: a zero-argument callable yielding
        per-page row batches.

        Chooses the same access path as :meth:`_candidates` and reads the
        same pages in the same order; each batch is yielded before the
        next page is fetched, so interleaved accounting (self-joins over
        one file) matches the tuple-at-a-time path exactly.
        """
        source = self._sources[var]
        if source.temp is not None:
            temp = source.temp
            return lambda: temp.scan_batches()
        choice = self.access_choice(var, bound)
        if choice is not None:
            return self._planned_source(choice, var, bound, batch=True)
        relation = source.relation
        current_only = source.current_only
        # 1. keyed access on the primary structure
        for position, value_fn in self._find_key_equality(var, bound):
            if relation.can_key_lookup(position):
                return lambda vf=value_fn: relation.lookup_batches(
                    vf(None), current_only=current_only
                )
        # 2. secondary-index access (point reads stay single-row batches)
        for position, value_fn in self._find_key_equality(var, bound):
            index = relation.index_for(position)
            if index is not None:
                return lambda idx=index, vf=value_fn: _index_batches(
                    relation, idx, vf(None), current_only
                )
        # 3. sequential scan (zone map applies as in _candidates)
        asof_max = self._scan_asof_max(var)
        return lambda: relation.scan_batches(
            current_only=current_only, asof_max=asof_max
        )

    # -- detachment ----------------------------------------------------------------------

    def _detach(self, var: str) -> None:
        """One-variable detachment: select+project *var* into a temporary."""
        source = self._sources[var]
        needed = self._needed_attributes(var)
        schema = source.relation.schema
        fields = [
            spec
            for spec in schema.fields
            if spec.name in needed or spec.name in IMPLICIT_ATTRIBUTES
        ]
        positions = [schema.position(spec.name) for spec in fields]
        temp = self._db.temporaries.create(fields)
        if self._batch:
            predicate = batch_conjunction(
                self._pending_filter_list(var, bound=set())
            )
            append = temp.append
            for batch in self._batch_candidates(var, bound=set())():
                for row in predicate(batch):
                    append(tuple(row[i] for i in positions))
        else:
            predicate = self._pending_filters(var, bound=set())
            produce = self._candidates(var, bound=set())
            for _, row in produce():
                if predicate(row):
                    temp.append(tuple(row[i] for i in positions))
        temp.finish_writing()
        source.temp = temp
        source.layout = VarLayout.for_fields(fields)
        self._temps.append(temp)

    def _needed_attributes(self, var: str) -> "set[str]":
        """Attributes of *var* referenced outside its detached conjuncts."""
        analysis = self._analysis
        needed: "set[str]" = set()
        for _, expr, __ in analysis.targets:
            needed |= _attrs_of(expr, var)
        for index, conjunct in enumerate(self._conjuncts):
            if index in self._consumed:
                continue
            if var in conjunct.vars:
                needed |= _attrs_of(conjunct.expr, var)
        if analysis.valid is not None:
            for expr in (analysis.valid.at, analysis.valid.from_, analysis.valid.to):
                if expr is not None:
                    needed |= _attrs_of(expr, var)
        return needed

    # -- retrieve -----------------------------------------------------------------------------

    def run_retrieve(self) -> Result:
        analysis = self._analysis
        stmt = analysis.statement
        order = list(analysis.var_order)

        # One-variable detachment for variables with single-variable clauses.
        detached = 0
        if len(order) > 1:
            for var in order:
                if self._should_detach(var, order):
                    self._detach(var)
                    detached += 1
            order = self._substitution_order(order)
        metrics = getattr(self._db, "metrics", None)
        if metrics is not None:
            metrics.inc("executor.detachments", detached)
            metrics.observe("statement.detachments", detached)

        layouts = self._layouts()
        columns = [name for name, _, __ in analysis.targets]

        if analysis.has_aggregates:
            return self._run_aggregates(order, layouts, columns)

        target_fns = [
            compile_scalar(expr, None, layouts, self._bindings)
            for _, expr, __ in analysis.targets
        ]

        valid_mode, valid_fn = self._result_valid(layouts)
        if valid_mode == "interval":
            columns = columns + ["valid_from", "valid_to"]
        elif valid_mode == "event":
            columns = columns + ["valid_at"]

        rows: "list[tuple]" = []

        def emit():
            values = tuple(fn(None) for fn in target_fns)
            if valid_mode == "none":
                rows.append(values)
                return
            period = valid_fn()
            if period is None:
                return
            if valid_mode == "interval":
                rows.append(values + (period.start, period.stop))
            else:
                rows.append(values + (period.start,))

        self._execute_join(order, emit)

        if stmt.unique:
            seen = set()
            unique_rows = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique_rows.append(row)
            rows = unique_rows

        if stmt.coalesced:
            if valid_mode != "interval":
                raise TQuelSemanticError(
                    "'coalesced' needs an interval result (valid time)"
                )
            from repro.temporal.coalesce import coalesce_rows

            rows = coalesce_rows(rows, len(analysis.targets))

        for temp in self._temps:
            temp.drop()

        if stmt.into is not None:
            count = self._store_into(stmt.into, columns, rows, valid_mode)
            return Result(kind="retrieve into", count=count, columns=columns)
        return Result(
            kind="retrieve", columns=columns, rows=rows, count=len(rows)
        )

    def _run_aggregates(self, order, layouts, columns) -> Result:
        """Aggregates: fold the qualifying tuples into one row, or one row
        per group when the aggregates carry a by-list.

        The result is a snapshot (no implicit time attributes), like
        Quel's aggregate results.
        """
        analysis = self._analysis
        targets = analysis.targets
        by_list = next(
            expr.by
            for _, expr, __ in targets
            if isinstance(expr, ast.Aggregate)
        )
        if not by_list:
            kernel = self._kernel_aggregate(order)
            if kernel is not None:
                for temp in self._temps:
                    temp.drop()
                rows = [tuple(kernel)]
                stmt = analysis.statement
                if stmt.into is not None:
                    count = self._store_into(
                        stmt.into, columns, rows, "none"
                    )
                    return Result(
                        kind="retrieve into", count=count, columns=columns
                    )
                return Result(
                    kind="retrieve", columns=columns, rows=rows, count=1
                )

        group_fns = [
            compile_scalar(expr, None, layouts, self._bindings)
            for expr in by_list
        ]
        # Per target: ("group", position in by-list) for plain targets,
        # ("agg", slot, Aggregate) for aggregates accumulating into a slot.
        plan = []
        operand_fns = []
        for _, expr, __ in targets:
            if isinstance(expr, ast.Aggregate):
                plan.append(("agg", len(operand_fns), expr))
                operand_fns.append(
                    compile_scalar(
                        expr.operand, None, layouts, self._bindings
                    )
                )
            else:
                plan.append(("group", list(by_list).index(expr), None))

        groups: "dict[tuple, list[list]]" = {}

        def emit():
            key = tuple(fn(None) for fn in group_fns)
            states = groups.get(key)
            if states is None:
                states = [[] for _ in operand_fns]
                groups[key] = states
            for state, fn in zip(states, operand_fns):
                state.append(fn(None))

        self._execute_join(order, emit)
        for temp in self._temps:
            temp.drop()

        if not by_list and not groups:
            groups[()] = [[] for _ in operand_fns]

        rows = []
        for key, states in groups.items():
            row = []
            for kind, slot, agg in plan:
                if kind == "group":
                    row.append(key[slot])
                    continue
                row.append(_fold_aggregate(agg, states[slot]))
            rows.append(tuple(row))

        stmt = analysis.statement
        if stmt.into is not None:
            count = self._store_into(stmt.into, columns, rows, "none")
            return Result(kind="retrieve into", count=count, columns=columns)
        return Result(
            kind="retrieve", columns=columns, rows=rows, count=len(rows)
        )

    # Integer-valued attribute types whose sums are order-independent
    # (float accumulation order differs between serial and scattered
    # folds, so sum/avg over floats stay on the interpreter).
    _KERNEL_SUM_TYPES = (
        AttributeType.I1,
        AttributeType.I2,
        AttributeType.I4,
        AttributeType.TIME,
    )
    _FLIPPED_OPS = {
        "=": "=",
        "!=": "!=",
        "<": ">",
        "<=": ">=",
        ">": "<",
        ">=": "<=",
    }

    def _kernel_aggregate(self, order) -> "list | None":
        """Push an ungrouped aggregate to the partition scan kernel.

        When the single variable ranges over a process-parallel
        partitioned relation and every target and conjunct translates to
        the kernel's position-level specs, the whole fold runs as a
        scatter-gather over raw page images -- same rows, same page
        accounting, no per-row interpretation.  Returns the final target
        values, or None when the statement must run on the interpreter.
        """
        if len(order) != 1 or not self._batch:
            return None
        var = order[0]
        source = self._sources[var]
        if source.temp is not None:
            return None
        relation = source.relation
        if not getattr(relation, "is_partitioned", False):
            return None
        if not relation.kernel_eligible():
            return None
        for position, _ in self._find_key_equality(var, set()):
            # Only bail when the interpreter would actually take a keyed
            # path instead of this full scan.
            if (
                relation.can_key_lookup(position)
                or relation.index_for(position) is not None
            ):
                return None
        layout = source.layout
        schema = relation.schema
        aggs = []
        for _, expr, __ in self._analysis.targets:
            if not isinstance(expr, ast.Aggregate):
                return None
            operand = expr.operand
            if not (isinstance(operand, ast.Attr) and operand.var == var):
                return None
            position = layout.positions.get(operand.name)
            if position is None:
                return None
            attr_type = schema.fields[position].type
            if expr.func in ("sum", "avg"):
                if attr_type not in self._KERNEL_SUM_TYPES:
                    return None
            elif expr.func in ("min", "max"):
                if not (
                    attr_type.is_numeric or attr_type is AttributeType.TIME
                ):
                    return None
            aggs.append((expr.func, position))
        filters = []
        for conjunct in self._conjuncts:
            if conjunct.is_temporal or not conjunct.vars <= {var}:
                return None
            spec = self._kernel_filter_spec(conjunct.expr, var, layout)
            if spec is None:
                return None
            filters.append(spec)
        asof_max = None
        if self._asof_period is not None and layout.tx is not None:
            tx_start, tx_stop = layout.tx
            filters.append(
                (
                    "asof",
                    tx_start,
                    tx_stop,
                    self._asof_period.start,
                    self._asof_period.stop,
                )
            )
            asof_max = self._asof_period.stop - 1
        try:
            compile_page_fold(filters, aggs)  # validate before scattering
        except ValueError:
            return None
        metrics = getattr(self._db, "metrics", None)
        if metrics is not None:
            metrics.inc("partition.kernel_pushdown")
        results = relation.partition_aggregate(filters, aggs, asof_max)
        merged = merge_partials(aggs, results)
        return [
            self._finish_partial(func, partial)
            for (func, _), partial in zip(aggs, merged)
        ]

    def _kernel_filter_spec(self, node, var: str, layout) -> "tuple | None":
        """Translate one conjunct into a kernel ``cmp`` spec, if possible."""
        if not isinstance(node, ast.Compare):
            return None
        for attr_side, const_side, op in (
            (node.left, node.right, node.op),
            (node.right, node.left, self._FLIPPED_OPS.get(node.op)),
        ):
            if op is None:
                continue
            if not (
                isinstance(attr_side, ast.Attr) and attr_side.var == var
            ):
                continue
            if not isinstance(const_side, ast.Const):
                return None
            position = layout.positions.get(attr_side.name)
            if position is None:
                return None
            return ("cmp", position, op, const_side.value)
        return None

    @staticmethod
    def _finish_partial(func: str, partial):
        """Turn a merged kernel partial into the aggregate's final value,
        with :func:`_fold_aggregate`'s empty-result semantics."""
        if func == "count":
            return partial if partial is not None else 0
        if func == "sum":
            return partial if partial is not None else 0
        if func == "avg":
            if partial is None or not partial[1]:
                raise ExecutionError("avg() over an empty result")
            total, count = partial
            return total / count
        if partial is None:
            raise ExecutionError(f"{func}() over an empty result")
        return partial

    def _build_plan(self, order: "list[str]") -> list:
        """Per-depth (variable, row source, filter) triples, compiled once.

        Filters and access paths are fixed per loop depth; only the value
        closures read the changing outer bindings.
        """
        plan = []
        for depth, var in enumerate(order):
            bound = set(order[:depth])
            produce = self._candidates(var, bound)
            predicate = self._pending_filters(var, bound)
            plan.append((var, produce, predicate))
        return plan

    def _build_batch_plan(self, order: "list[str]") -> list:
        """Like :meth:`_build_plan`, with batched sources and each depth's
        conjuncts fused into one per-batch predicate."""
        plan = []
        for depth, var in enumerate(order):
            bound = set(order[:depth])
            produce = self._batch_candidates(var, bound)
            predicate = batch_conjunction(
                self._pending_filter_list(var, bound)
            )
            plan.append((var, produce, predicate))
        return plan

    def _execute_join(self, order: "list[str]", emit) -> None:
        """Run the nested-loop join over *order*, batched when enabled."""
        if self._batch:
            self._join_batches(self._build_batch_plan(order), 0, emit)
        else:
            self._join(self._build_plan(order), 0, emit)

    def _join(self, plan, depth, emit) -> None:
        if depth == len(plan):
            emit()
            return
        var, produce, predicate = plan[depth]
        bindings = self._bindings
        if depth == len(plan) - 1:
            for _, row in produce():
                if predicate(row):
                    bindings[var] = row
                    emit()
        else:
            for _, row in produce():
                if predicate(row):
                    bindings[var] = row
                    self._join(plan, depth + 1, emit)
        bindings.pop(var, None)

    def _join_batches(self, plan, depth, emit) -> None:
        """Batched nested loops: each depth filters a whole page batch in
        one predicate call, then binds the survivors one by one.

        The page backing a batch is read when the batch is produced --
        before any inner-depth reads for its rows -- which is exactly when
        the tuple-at-a-time loop reads it (on the page's first row).
        """
        if depth == len(plan):
            emit()
            return
        var, produce, predicate = plan[depth]
        bindings = self._bindings
        if depth == len(plan) - 1:
            for batch in produce():
                for row in predicate(batch):
                    bindings[var] = row
                    emit()
        else:
            for batch in produce():
                for row in predicate(batch):
                    bindings[var] = row
                    self._join_batches(plan, depth + 1, emit)
        bindings.pop(var, None)

    def _should_detach(self, var: str, order: "list[str]") -> bool:
        """Whether one-variable detachment applies to *var*.

        A variable detaches when it has single-variable clauses -- except
        when those clauses are all temporal (``x overlap "now"``) and the
        variable can be probed through its primary key during tuple
        substitution.  Detaching such a variable would replace Q09's "one
        hashed access for each tuple in the temporary relation" with a
        quadratic temporary-x-temporary join; the prototype keeps the
        keyed relation as the substitution target.
        """
        own = [
            conjunct
            for conjunct in self._conjuncts
            if conjunct.vars == frozenset((var,))
        ]
        if not own:
            return False
        if all(conjunct.is_temporal for conjunct in own):
            others = {name for name in order if name != var}
            source = self._sources[var]
            for position, _ in self._find_key_equality(var, others):
                if source.relation.can_key_lookup(position):
                    return False
        return True

    def _substitution_order(self, order: "list[str]") -> "list[str]":
        """Tuple-substitution order.

        Detached temporaries go first (they are the small relations the
        prototype substitutes from); the remaining variables are ordered
        greedily so that inner variables get keyed access paths -- the
        choice that makes Q09 "one hashed access for each tuple in the
        temporary relation" rather than a quadratic scan.  Ties keep the
        statement's first-reference order.
        """
        temps = [v for v in order if self._sources[v].temp is not None]
        remaining = [v for v in order if self._sources[v].temp is None]
        result = list(temps)
        while remaining:
            best = None
            best_score = -1
            for candidate in remaining:
                bound = set(result) | {candidate}
                score = sum(
                    1
                    for other in remaining
                    if other != candidate
                    and self._has_keyed_path(other, bound)
                )
                if score > best_score:
                    best, best_score = candidate, score
            result.append(best)
            remaining.remove(best)
        return result

    def _has_keyed_path(self, var: str, bound: "set[str]") -> bool:
        """Whether *var* could be accessed by key/index given *bound*."""
        source = self._sources[var]
        if source.temp is not None:
            return False
        for position, _ in self._find_key_equality(var, bound - {var}):
            if source.relation.can_key_lookup(position):
                return True
            if source.relation.index_for(position) is not None:
                return True
        return False

    def _result_valid(self, layouts):
        """How the result's implicit time attributes are computed.

        Returns ``(mode, fn)`` where mode is ``"none"``, ``"interval"`` or
        ``"event"`` and ``fn()`` yields the per-tuple period (or ``None`` to
        drop the tuple, when the default intersection is empty).
        """
        analysis = self._analysis
        valid = analysis.valid
        if valid is not None:
            if valid.at is not None:
                at_fn = compile_temporal(
                    valid.at, None, layouts, self._bindings, self._db
                )

                def event_fn():
                    period = at_fn(None)
                    return None if period is None else period.start_event()

                return "event", event_fn
            from_fn = compile_temporal(
                valid.from_, None, layouts, self._bindings, self._db
            )
            to_fn = compile_temporal(
                valid.to, None, layouts, self._bindings, self._db
            )

            def interval_fn():
                start = from_fn(None)
                stop = to_fn(None)
                if start is None or stop is None:
                    return None
                if stop.stop <= start.start:
                    return None
                return Period(start.start, stop.stop)

            return "interval", interval_fn

        valid_vars = [
            name
            for name, source in self._sources.items()
            if source.layout.valid is not None
            or source.layout.valid_at is not None
        ]
        if not valid_vars:
            return "none", None
        sources = [self._sources[name] for name in valid_vars]

        def default_fn():
            period = None
            for source in sources:
                own = source.layout.valid_period(self._bindings[source.name])
                period = own if period is None else period.intersect(own)
                if period is None:
                    return None
            return period

        return "interval", default_fn

    def _store_into(self, name, columns, rows, valid_mode) -> int:
        analysis = self._analysis
        fields = [
            FieldSpec(col, spec.type, spec.width)
            for (col, (_, __, spec)) in zip(
                columns[: len(analysis.targets)], analysis.targets
            )
        ]
        timed = "interval" if valid_mode == "interval" else (
            "event" if valid_mode == "event" else None
        )
        relation = self._db.create_relation(
            name, [(f.name, f.type_text) for f in fields], kind=timed
        )
        mutate.load_rows(relation, rows, self._db.statement_now())
        relation.storage.file.flush()
        return len(rows)

    # -- updates --------------------------------------------------------------------------------

    def _collect_targets(self, target_var: str):
        """Join all variables, collecting matching (rid, row) pairs of the
        update's target variable (first match per rid wins)."""
        analysis = self._analysis
        order = [target_var] + [
            name for name in analysis.var_order if name != target_var
        ]
        collected: "dict[object, tuple]" = {}
        current_rid = {}

        def emit():
            rid = current_rid["value"]
            if rid not in collected:
                collected[rid] = (
                    rid,
                    self._bindings[target_var],
                    {
                        name: self._bindings[name]
                        for name in analysis.var_order
                    },
                )

        self._join_tracking(
            self._build_plan(order), 0, emit, target_var, current_rid
        )
        return list(collected.values())

    def _join_tracking(self, plan, depth, emit, target_var, current_rid):
        if depth == len(plan):
            emit()
            return
        var, produce, predicate = plan[depth]
        for rid, row in produce():
            if predicate(row):
                self._bindings[var] = row
                if var == target_var:
                    current_rid["value"] = rid
                self._join_tracking(
                    plan, depth + 1, emit, target_var, current_rid
                )
        self._bindings.pop(var, None)

    def run_delete(self) -> Result:
        stmt = self._analysis.statement
        relation = self._sources[stmt.var].relation
        self._require_mutable(relation)
        targets = [
            (rid, row) for rid, row, _ in self._collect_targets(stmt.var)
        ]
        now = self._db.statement_now()
        count = mutate.apply_delete(relation, targets, now)
        self._db.pool.flush_statement()
        return Result(kind="delete", count=count)

    def run_replace(self) -> Result:
        analysis = self._analysis
        stmt = analysis.statement
        relation = self._sources[stmt.var].relation
        self._require_mutable(relation)
        schema = relation.schema
        layouts = self._layouts()

        collected = self._collect_targets(stmt.var)
        # Evaluate assignments while bindings are known, per target.
        assignments = {}
        valid_specs = {}
        assign_fns = [
            (schema.position(name), compile_scalar(
                expr, stmt.var, layouts, self._bindings
            ))
            for name, expr, _ in analysis.targets
        ]
        valid_fns = self._valid_spec_fns(layouts, stmt.var)
        for rid, row, binding_snapshot in collected:
            self._bindings.update(binding_snapshot)
            new_user = list(row[: schema.user_count])
            for position, fn in assign_fns:
                value = fn(row)
                if isinstance(value, float) and (
                    schema.fields[position].type.value.startswith("i")
                ):
                    value = int(value)
                new_user[position] = value
            assignments[rid] = tuple(new_user)
            valid_specs[rid] = valid_fns(row)
            self._bindings.clear()

        now = self._db.statement_now()
        count = mutate.apply_replace(
            relation,
            [(rid, row) for rid, row, _ in collected],
            lambda rid, row: assignments[rid],
            now,
            valid_for=lambda rid, row: valid_specs[rid],
        )
        self._db.pool.flush_statement()
        return Result(kind="replace", count=count)

    def run_append(self) -> Result:
        analysis = self._analysis
        stmt = analysis.statement
        relation = self._db.relation(stmt.relation)
        self._require_mutable(relation)
        schema = relation.schema
        layouts = self._layouts()
        assigned = {name: expr for name, expr, _ in analysis.targets}
        value_fns = []
        for spec in schema.user_fields:
            if spec.name in assigned:
                value_fns.append(
                    compile_scalar(
                        assigned[spec.name], None, layouts, self._bindings
                    )
                )
            else:
                default = "" if spec.type.value == "c" else 0
                value_fns.append(lambda row, d=default: d)
        valid_fns = self._valid_spec_fns(layouts, None)

        produced: "list[tuple]" = []

        def emit():
            produced.append(
                (
                    tuple(fn(None) for fn in value_fns),
                    valid_fns(None),
                )
            )

        if analysis.var_order:
            self._execute_join(list(analysis.var_order), emit)
        else:
            emit()

        now = self._db.statement_now()
        count = 0
        for user_values, valid_spec in produced:
            count += mutate.apply_append(
                relation, [user_values], now, valid_spec
            )
        self._db.pool.flush_statement()
        return Result(kind="append", count=count)

    def _valid_spec_fns(self, layouts, var):
        """Build ``fn(row) -> ValidSpec`` from the statement's valid clause."""
        valid = self._analysis.valid
        if valid is None:
            return lambda row: mutate.NO_VALID
        if valid.at is not None:
            at_fn = compile_temporal(
                valid.at, var, layouts, self._bindings, self._db
            )

            def at_spec(row):
                period = at_fn(row)
                if period is None:
                    raise ExecutionError("empty 'valid at' period")
                return mutate.ValidSpec(valid_at=period.start)

            return at_spec
        from_fn = compile_temporal(
            valid.from_, var, layouts, self._bindings, self._db
        )
        to_fn = compile_temporal(
            valid.to, var, layouts, self._bindings, self._db
        )

        def interval_spec(row):
            start = from_fn(row)
            stop = to_fn(row)
            if start is None or stop is None:
                raise ExecutionError("empty period in valid clause")
            if stop.stop <= start.start:
                raise ExecutionError(
                    "valid clause: 'to' precedes 'from'"
                )
            return mutate.ValidSpec(
                valid_from=start.start, valid_to=stop.stop
            )

        return interval_spec

    def _require_mutable(self, relation) -> None:
        if getattr(relation, "read_only", False):
            raise TQuelSemanticError(
                f"{relation.schema.name} is a system relation and cannot "
                "be modified"
            )


# -- helpers ------------------------------------------------------------------------


def _fold_aggregate(agg, state: list):
    """Fold one aggregate's accumulated operand values."""
    if agg.func == "count":
        return len(state)
    if agg.func == "sum":
        return sum(state) if state else 0
    if agg.func == "avg":
        if not state:
            raise ExecutionError("avg() over an empty result")
        return sum(state) / len(state)
    if not state:
        raise ExecutionError(f"{agg.func}() over an empty result")
    return min(state) if agg.func == "min" else max(state)


def _expr_vars(node) -> "set[str]":
    found: "set[str]" = set()

    def walk(n):
        if isinstance(n, ast.Attr):
            if n.var is not None:
                found.add(n.var)
        elif isinstance(n, (ast.BinOp, ast.Compare)):
            walk(n.left)
            walk(n.right)
        elif isinstance(n, ast.UnaryOp):
            walk(n.operand)
        elif isinstance(n, ast.BoolOp):
            for operand in n.operands:
                walk(operand)
        elif isinstance(n, ast.NotOp):
            walk(n.operand)
        elif isinstance(n, ast.TempVar):
            found.add(n.var)
        elif isinstance(n, ast.TempEdge):
            walk(n.operand)
        elif isinstance(n, ast.TempBin):
            walk(n.left)
            walk(n.right)
        elif isinstance(n, ast.Aggregate):
            walk(n.operand)
            for by_expr in n.by:
                walk(by_expr)

    walk(node)
    return found


def _attrs_of(node, var: str) -> "set[str]":
    """User/implicit attribute names of *var* referenced by *node*."""
    found: "set[str]" = set()

    def walk(n):
        if isinstance(n, ast.Attr):
            if n.var == var:
                found.add(n.name)
        elif isinstance(n, (ast.BinOp, ast.Compare, ast.TempBin)):
            walk(n.left)
            walk(n.right)
        elif isinstance(n, (ast.UnaryOp, ast.NotOp)):
            walk(n.operand)
        elif isinstance(n, ast.TempEdge):
            walk(n.operand)
        elif isinstance(n, ast.Aggregate):
            walk(n.operand)
            for by_expr in n.by:
                walk(by_expr)
        elif isinstance(n, ast.BoolOp):
            for operand in n.operands:
                walk(operand)

    walk(node)
    return found


def _with_rids(rows):
    for index, row in enumerate(rows):
        yield index, row


def _scan_with_rids(relation, current_only, asof_max=None):
    yield from relation.scan_with_rids(
        current_only=current_only, asof_max=asof_max
    )


def _lookup_with_rids(relation, key, current_only):
    yield from relation.lookup_with_rids(key, current_only=current_only)


def _index_with_rids(relation, index, value, current_only):
    seen = set()
    for tid in index.search(value, current_only=current_only):
        if tid in seen:
            continue
        seen.add(tid)
        yield relation.rid_from_tid(tid), relation.read_tid(tid)


def _index_batches(relation, index, value, current_only):
    """Secondary-index probes as single-row batches (each tid resolves to
    one scattered data-page read, so there is nothing to batch)."""
    for _, row in _index_with_rids(relation, index, value, current_only):
        yield [row]
