"""The TQuel lexer.

Turns statement text into a list of :class:`~repro.tquel.tokens.Token`.
Conventions follow Quel: identifiers are ``[A-Za-z_][A-Za-z0-9_]*`` and
case-insensitive (lowered), string literals use double quotes, comments run
from ``/*`` to ``*/``, statement parameters are ``$name``.
"""

from __future__ import annotations

from repro.errors import TQuelSyntaxError
from repro.tquel.tokens import KEYWORDS, PUNCTUATION, Token

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_BODY = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


def tokenize(text: str) -> "list[Token]":
    """Lex *text* into tokens ending with an ``eof`` token."""
    tokens: "list[Token]" = []
    line = 1
    line_start = 0
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        if char in " \t\r":
            position += 1
            continue
        column = position - line_start
        if char == "/" and text.startswith("/*", position):
            end = text.find("*/", position + 2)
            if end < 0:
                raise TQuelSyntaxError("unterminated comment", line, column)
            line += text.count("\n", position, end)
            if "\n" in text[position:end]:
                line_start = text.rfind("\n", position, end) + 1
            position = end + 2
            continue
        if char in _IDENT_START:
            end = position + 1
            while end < length and text[end] in _IDENT_BODY:
                end += 1
            word = text[position:end].lower()
            kind = word if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, column))
            position = end
            continue
        if char in _DIGITS:
            end = position + 1
            while end < length and text[end] in _DIGITS:
                end += 1
            is_float = False
            if (
                end < length
                and text[end] == "."
                and end + 1 < length
                and text[end + 1] in _DIGITS
            ):
                is_float = True
                end += 1
                while end < length and text[end] in _DIGITS:
                    end += 1
            # Scientific notation ("1e-05", "2.5E3"): accepted only when
            # digits follow the exponent marker, so an identifier that
            # merely starts with "e" never glues onto a number.
            if end < length and text[end] in "eE":
                marker = end + 1
                if marker < length and text[marker] in "+-":
                    marker += 1
                if marker < length and text[marker] in _DIGITS:
                    is_float = True
                    end = marker + 1
                    while end < length and text[end] in _DIGITS:
                        end += 1
            literal = text[position:end]
            if is_float:
                tokens.append(Token("float", float(literal), line, column))
            else:
                tokens.append(Token("int", int(literal), line, column))
            position = end
            continue
        if char == "$":
            end = position + 1
            if end >= length or text[end] not in _IDENT_START:
                raise TQuelSyntaxError(
                    "'$' must start a parameter name", line, column
                )
            while end < length and text[end] in _IDENT_BODY:
                end += 1
            tokens.append(
                Token("param", text[position + 1 : end].lower(), line, column)
            )
            position = end
            continue
        if char == '"':
            end = text.find('"', position + 1)
            if end < 0:
                raise TQuelSyntaxError(
                    "unterminated string literal", line, column
                )
            tokens.append(
                Token("string", text[position + 1 : end], line, column)
            )
            position = end + 1
            continue
        for punct in PUNCTUATION:
            if text.startswith(punct, position):
                tokens.append(Token(punct, punct, line, column))
                position += len(punct)
                break
        else:
            raise TQuelSyntaxError(
                f"unexpected character {char!r}", line, column
            )
    tokens.append(Token("eof", None, line, position - line_start))
    return tokens
