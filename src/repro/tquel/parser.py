"""Recursive-descent parser for TQuel.

Grammar summary (clauses may appear in any order after a statement's target
list, matching the prototype's examples)::

    range of VAR is RELATION
    retrieve [into REL] [unique] ( target, ... ) {clause}
    append [to] REL ( target, ... ) {clause}
    delete VAR {clause}
    replace VAR ( target, ... ) {clause}
    create [persistent] [interval|event] REL ( name = type, ... )
    modify REL to STRUCTURE [on ATTR] [where name = value, ...]
    copy REL (from|into) "path"
    destroy REL {, REL}
    index on REL is NAME ( ATTR ) [where name = value, ...]

    clause := valid from TEXPR to TEXPR | valid at TEXPR
            | where EXPR | when WEXPR | as of TEXPR [through TEXPR]

    TEXPR  := TPRIM { (overlap|extend|precede) TPRIM }
    TPRIM  := start of TPRIM | end of TPRIM | ( TEXPR ) | STRING | VAR
    WEXPR  := boolean combination (and/or/not, parentheses) of TEXPRs

The only ambiguity -- ``(`` opening either a parenthesized temporal operand
or a parenthesized boolean ``when`` expression -- is resolved by
backtracking.
"""

from __future__ import annotations

from repro.errors import TQuelSyntaxError
from repro.tquel.ast import (
    AGGREGATE_FUNCTIONS,
    Aggregate,
    AppendStmt,
    AsOfClause,
    Attr,
    BinOp,
    BoolOp,
    Compare,
    Const,
    CopyStmt,
    CreateStmt,
    DeleteStmt,
    DestroyStmt,
    IndexStmt,
    ModifyStmt,
    NotOp,
    Param,
    PartitionStmt,
    RangeStmt,
    ReplaceStmt,
    RetrieveStmt,
    TargetItem,
    TempBin,
    TempConst,
    TempEdge,
    TempVar,
    UnaryOp,
    VacuumStmt,
    ValidClause,
)
from repro.tquel.lexer import tokenize
from repro.tquel.tokens import Token

_TEMPORAL_OPS = ("overlap", "extend", "precede")
_COMPARE_OPS = ("=", "!=", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, text: "str | None" = None, tokens: "list[Token] | None" = None):
        self._tokens = tokens if tokens is not None else tokenize(text)
        self._pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.type != "eof":
            self._pos += 1
        return token

    def _accept(self, kind: str) -> "Token | None":
        if self._peek().type == kind:
            return self._next()
        return None

    def _expect(self, kind: str, context: str) -> Token:
        token = self._peek()
        if token.type != kind:
            raise TQuelSyntaxError(
                f"expected {kind!r} {context}, found {token.value!r}",
                token.line,
                token.column,
            )
        return self._next()

    def _error(self, message: str):
        token = self._peek()
        raise TQuelSyntaxError(message, token.line, token.column)

    # -- entry points -----------------------------------------------------------

    def parse_all(self) -> list:
        statements = []
        while True:
            while self._accept(";"):
                pass
            if self._peek().type == "eof":
                return statements
            statements.append(self.parse_statement())

    def parse_statement(self):
        token = self._peek()
        handler = {
            "range": self._range,
            "retrieve": self._retrieve,
            "append": self._append,
            "delete": self._delete,
            "replace": self._replace,
            "create": self._create,
            "modify": self._modify,
            "copy": self._copy,
            "destroy": self._destroy,
            "index": self._index,
            "vacuum": self._vacuum,
            "partition": self._partition,
        }.get(token.type)
        if handler is None:
            self._error(f"expected a statement, found {token.value!r}")
        return handler()

    # -- statements --------------------------------------------------------------

    def _range(self):
        self._expect("range", "to start a range statement")
        self._expect("of", "after 'range'")
        var = self._expect("ident", "as the range variable").value
        self._expect("is", "after the range variable")
        relation = self._expect("ident", "as the relation name").value
        return RangeStmt(var, relation)

    def _retrieve(self):
        self._expect("retrieve", "to start a retrieve")
        into = None
        if self._accept("into"):
            into = self._expect("ident", "after 'into'").value
        unique = bool(self._accept("unique"))
        coalesced = bool(self._accept("coalesced"))
        targets = self._target_list()
        clauses = self._clauses()
        return RetrieveStmt(
            targets=targets, into=into, unique=unique,
            coalesced=coalesced, **clauses
        )

    def _append(self):
        self._expect("append", "to start an append")
        self._accept("to")
        relation = self._expect("ident", "as the append target").value
        targets = self._target_list()
        clauses = self._clauses()
        return AppendStmt(relation=relation, targets=targets, **clauses)

    def _delete(self):
        self._expect("delete", "to start a delete")
        var = self._expect("ident", "as the delete target").value
        clauses = self._clauses()
        clauses.pop("valid", None)
        return DeleteStmt(var=var, **clauses)

    def _replace(self):
        self._expect("replace", "to start a replace")
        var = self._expect("ident", "as the replace target").value
        targets = self._target_list()
        clauses = self._clauses()
        return ReplaceStmt(var=var, targets=targets, **clauses)

    def _create(self):
        self._expect("create", "to start a create")
        persistent = bool(self._accept("persistent"))
        kind = None
        if self._accept("interval"):
            kind = "interval"
        elif self._accept("event"):
            kind = "event"
        relation = self._expect("ident", "as the new relation name").value
        self._expect("(", "to open the attribute list")
        columns = []
        while True:
            name = self._expect("ident", "as an attribute name").value
            self._expect("=", "after the attribute name")
            type_text = self._expect("ident", "as the attribute type").value
            columns.append((name, type_text))
            if not self._accept(","):
                break
        self._expect(")", "to close the attribute list")
        return CreateStmt(
            relation=relation,
            columns=tuple(columns),
            persistent=persistent,
            kind=kind,
        )

    def _modify(self):
        self._expect("modify", "to start a modify")
        relation = self._expect("ident", "as the relation to modify").value
        self._expect("to", "after the relation name")
        structure = self._expect("ident", "as the storage structure").value
        key = None
        if self._accept("on"):
            key = self._expect("ident", "as the key attribute").value
        options = self._options() if self._accept("where") else ()
        return ModifyStmt(
            relation=relation, structure=structure, key=key, options=options
        )

    def _copy(self):
        self._expect("copy", "to start a copy")
        relation = self._expect("ident", "as the relation to copy").value
        if self._accept("from"):
            direction = "from"
        elif self._accept("into"):
            direction = "into"
        else:
            self._error("expected 'from' or 'into' in copy")
        path = self._expect("string", "as the file path").value
        return CopyStmt(relation=relation, direction=direction, path=path)

    def _destroy(self):
        self._expect("destroy", "to start a destroy")
        names = [self._expect("ident", "as a relation name").value]
        while self._accept(","):
            names.append(self._expect("ident", "as a relation name").value)
        return DestroyStmt(relations=tuple(names))

    def _index(self):
        self._expect("index", "to start an index statement")
        self._expect("on", "after 'index'")
        relation = self._expect("ident", "as the indexed relation").value
        self._expect("is", "after the relation name")
        index_name = self._expect("ident", "as the index name").value
        self._expect("(", "to open the attribute list")
        attribute = self._expect("ident", "as the indexed attribute").value
        self._expect(")", "to close the attribute list")
        options = self._options() if self._accept("where") else ()
        return IndexStmt(
            relation=relation,
            index_name=index_name,
            attribute=attribute,
            options=options,
        )

    def _partition(self):
        self._expect("partition", "to start a partition statement")
        relation = self._expect(
            "ident", "as the relation to partition"
        ).value
        self._expect("by", "after the relation name")
        # "range" lexes as a keyword token; both spellings are methods.
        token = self._peek()
        if token.type in ("ident", "range"):
            self._next()
            method = token.value
        else:
            self._error("expected a partition method (hash or range)")
        self._expect("on", "after the partition method")
        attribute = self._expect(
            "ident", "as the partition attribute"
        ).value
        self._expect("into", "after the partition attribute")
        count = self._expect("int", "as the partition count").value
        options = self._options() if self._accept("where") else ()
        return PartitionStmt(
            relation=relation,
            method=method,
            attribute=attribute,
            count=count,
            options=options,
        )

    def _vacuum(self):
        self._expect("vacuum", "to start a vacuum")
        relation = self._expect("ident", "as the relation to vacuum").value
        self._expect("before", "after the relation name")
        return VacuumStmt(
            relation=relation, before=self._temporal_expression()
        )

    def _options(self):
        options = []
        while True:
            name = self._expect("ident", "as an option name").value
            self._expect("=", "after the option name")
            token = self._peek()
            if token.type in ("int", "float", "string", "ident"):
                self._next()
                options.append((name, token.value))
            else:
                self._error(f"bad option value {token.value!r}")
            if not self._accept(","):
                break
        return tuple(options)

    # -- clauses ------------------------------------------------------------------

    def _clauses(self) -> dict:
        clauses = {"valid": None, "where": None, "when": None, "as_of": None}
        while True:
            token = self._peek()
            if token.type == "valid":
                if clauses["valid"] is not None:
                    self._error("duplicate valid clause")
                clauses["valid"] = self._valid_clause()
            elif token.type == "where":
                if clauses["where"] is not None:
                    self._error("duplicate where clause")
                self._next()
                clauses["where"] = self._expression()
            elif token.type == "when":
                if clauses["when"] is not None:
                    self._error("duplicate when clause")
                self._next()
                clauses["when"] = self._when_expression()
            elif token.type == "as":
                if clauses["as_of"] is not None:
                    self._error("duplicate as-of clause")
                self._next()
                self._expect("of", "after 'as'")
                at = self._temporal_expression()
                through = None
                if self._accept("through"):
                    through = self._temporal_expression()
                clauses["as_of"] = AsOfClause(at=at, through=through)
            else:
                break
        return clauses

    def _valid_clause(self) -> ValidClause:
        self._expect("valid", "to start a valid clause")
        if self._accept("at"):
            return ValidClause(at=self._temporal_expression())
        self._expect("from", "after 'valid'")
        from_ = self._temporal_expression()
        self._expect("to", "after the valid-from expression")
        to = self._temporal_expression()
        return ValidClause(from_=from_, to=to)

    # -- target lists ----------------------------------------------------------------

    def _target_list(self):
        self._expect("(", "to open the target list")
        targets = []
        while True:
            name = None
            if (
                self._peek().type == "ident"
                and self._peek(1).type == "="
            ):
                name = self._next().value
                self._next()  # '='
            targets.append(TargetItem(name=name, expr=self._expression()))
            if not self._accept(","):
                break
        self._expect(")", "to close the target list")
        return tuple(targets)

    # -- scalar expressions --------------------------------------------------------------

    def _expression(self):
        return self._or_expr()

    def _or_expr(self):
        operands = [self._and_expr()]
        while self._accept("or"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("or", tuple(operands))

    def _and_expr(self):
        operands = [self._not_expr()]
        while self._accept("and"):
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("and", tuple(operands))

    def _not_expr(self):
        if self._accept("not"):
            return NotOp(self._not_expr())
        return self._comparison()

    def _comparison(self):
        left = self._additive()
        token = self._peek()
        if token.type in _COMPARE_OPS:
            self._next()
            right = self._additive()
            return Compare(token.type, left, right)
        return left

    def _additive(self):
        node = self._multiplicative()
        while self._peek().type in ("+", "-"):
            op = self._next().type
            node = BinOp(op, node, self._multiplicative())
        return node

    def _multiplicative(self):
        node = self._unary()
        while self._peek().type in ("*", "/"):
            op = self._next().type
            node = BinOp(op, node, self._unary())
        return node

    def _unary(self):
        if self._peek().type == "-":
            self._next()
            return UnaryOp("-", self._unary())
        return self._atom()

    def _atom(self):
        token = self._peek()
        if token.type == "(":
            self._next()
            node = self._expression()
            self._expect(")", "to close the parenthesized expression")
            return node
        if token.type in ("int", "float", "string"):
            self._next()
            return Const(token.value)
        if token.type == "param":
            self._next()
            return Param(token.value)
        if token.type == "ident":
            self._next()
            if token.value in AGGREGATE_FUNCTIONS and self._peek().type == "(":
                self._next()
                operand = self._expression()
                by = []
                if self._accept("by"):
                    by.append(self._expression())
                    while self._accept(","):
                        by.append(self._expression())
                self._expect(")", "to close the aggregate")
                return Aggregate(token.value, operand, tuple(by))
            if self._accept("."):
                attribute = self._expect(
                    "ident", "as the attribute name"
                ).value
                return Attr(token.value, attribute)
            return Attr(None, token.value)
        self._error(f"unexpected token {token.value!r} in expression")

    # -- temporal expressions -----------------------------------------------------------------

    def _temporal_expression(self):
        node = self._temporal_primary()
        while self._peek().type in _TEMPORAL_OPS:
            op = self._next().type
            node = TempBin(op, node, self._temporal_primary())
        return node

    def _temporal_primary(self):
        token = self._peek()
        if token.type in ("start", "end"):
            self._next()
            self._expect("of", f"after '{token.type}'")
            return TempEdge(token.type, self._temporal_primary())
        if token.type == "(":
            self._next()
            node = self._temporal_expression()
            self._expect(")", "to close the temporal expression")
            return node
        if token.type == "string":
            self._next()
            return TempConst(token.value)
        if token.type == "ident":
            self._next()
            return TempVar(token.value)
        self._error(
            f"unexpected token {token.value!r} in temporal expression"
        )

    # -- when clauses ------------------------------------------------------------------------

    def _when_expression(self):
        operands = [self._when_and()]
        while self._accept("or"):
            operands.append(self._when_and())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("or", tuple(operands))

    def _when_and(self):
        operands = [self._when_factor()]
        while self._accept("and"):
            operands.append(self._when_factor())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("and", tuple(operands))

    def _when_factor(self):
        if self._accept("not"):
            return NotOp(self._when_factor())
        # A '(' may open a temporal operand or a boolean subexpression;
        # try the temporal reading first and backtrack on failure.
        saved = self._pos
        try:
            return self._temporal_expression()
        except TQuelSyntaxError:
            self._pos = saved
        self._expect("(", "in when clause")
        node = self._when_expression()
        self._expect(")", "to close the when subexpression")
        # The parenthesized boolean may still be the left operand of a
        # temporal operator only if it is itself temporal; TQuel gives
        # booleans no temporal value, so no further operators apply.
        return node


def parse(text: str) -> list:
    """Parse *text* into a list of statement ASTs."""
    return _Parser(text).parse_all()


def parse_tokens(tokens: "list[Token]") -> list:
    """Parse an already-lexed token list into statement ASTs.

    Lets callers that trace lexing and parsing as separate pipeline
    stages (the instrumented executor) drive the same parser.
    """
    return _Parser(tokens=tokens).parse_all()


def parse_statement(text: str):
    """Parse exactly one statement; error if there are more or none."""
    statements = parse(text)
    if len(statements) != 1:
        raise TQuelSyntaxError(
            f"expected exactly one statement, found {len(statements)}"
        )
    return statements[0]
