"""Semantic analysis: bind a parsed statement against a database.

Checks the rules the paper's prototype enforced:

* range variables must be declared and attributes must exist;
* a ``when`` clause requires valid time on every range variable it uses
  temporally ("for a static database, the 'when' clause ... [is] neither
  necessary nor applicable");
* an ``as of`` clause requires transaction time ("for a rollback database,
  we use an as of clause instead of the when clause");
* a ``valid`` clause requires valid time on the updated relation and must
  match its shape (``at`` for event relations, ``from``/``to`` for interval
  relations);
* comparisons must not mix strings and numbers; temporal operands must be
  period-valued (``precede`` yields a truth value, so it cannot be an
  operand of ``overlap``/``extend``/``start of``).

The analysis also splits ``where``/``when`` into conjunct lists annotated
with the variables they reference -- the input to Ingres-style
decomposition -- and infers result-column types for ``retrieve into`` and
temporaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import RelationKind
from repro.errors import TQuelSemanticError
from repro.storage.record import AttributeType, FieldSpec
from repro.tquel import ast


@dataclass
class VarInfo:
    """One range variable bound to its relation."""

    name: str
    relation: object  # StoredRelation or a catalog HeapFile wrapper

    @property
    def schema(self):
        return self.relation.schema


@dataclass
class Conjunct:
    """One top-level conjunct and the variables it references."""

    expr: object
    vars: frozenset
    is_temporal: bool


@dataclass
class Analysis:
    """A statement bound to the database, ready for planning."""

    statement: object
    vars: "dict[str, VarInfo]" = field(default_factory=dict)
    var_order: "list[str]" = field(default_factory=list)
    where: "list[Conjunct]" = field(default_factory=list)
    when: "list[Conjunct]" = field(default_factory=list)
    valid: "ast.ValidClause | None" = None
    as_of: "ast.AsOfClause | None" = None
    targets: "list[tuple[str, object, FieldSpec]]" = field(
        default_factory=list
    )
    has_aggregates: bool = False

    def conjuncts_for(self, var: str) -> "list[Conjunct]":
        """Conjuncts referencing only *var* (detachable)."""
        return [
            conjunct
            for conjunct in self.where + self.when
            if conjunct.vars == frozenset((var,))
        ]


_NUMERIC = "numeric"
_STRING = "string"
_PARAM = "param"  # wildcard: a $parameter's type is unknown until bound


def _mentions_var(node) -> bool:
    """Whether a temporal expression references any range variable."""
    if isinstance(node, ast.TempVar):
        return True
    if isinstance(node, ast.TempEdge):
        return _mentions_var(node.operand)
    if isinstance(node, ast.TempBin):
        return _mentions_var(node.left) or _mentions_var(node.right)
    return False


class Analyzer:
    """Binds statements against a :class:`~repro.engine.database.TemporalDatabase`."""

    def __init__(self, database):
        self._db = database

    # -- variable handling ---------------------------------------------------

    def _declare(self, analysis: Analysis, var: str) -> VarInfo:
        if var in analysis.vars:
            return analysis.vars[var]
        relation_name = self._db.current_ranges.get(var)
        if relation_name is None:
            raise TQuelSemanticError(
                f"range variable {var!r} is not declared (use "
                f"'range of {var} is <relation>')"
            )
        info = VarInfo(var, self._db.relation(relation_name))
        analysis.vars[var] = info
        analysis.var_order.append(var)
        return info

    def _resolve_attr(
        self, analysis: Analysis, node: ast.Attr, default_var: "str | None"
    ) -> "tuple[VarInfo, FieldSpec]":
        var = node.var
        if var is None:
            if default_var is None:
                raise TQuelSemanticError(
                    f"attribute {node.name!r} must be qualified with a "
                    "range variable"
                )
            var = default_var
        info = self._declare(analysis, var)
        if not info.schema.has_attribute(node.name):
            raise TQuelSemanticError(
                f"{info.schema.name} has no attribute {node.name!r}"
            )
        return info, info.schema.field_for(node.name)

    # -- scalar expressions -----------------------------------------------------

    def _walk_scalar(
        self,
        analysis: Analysis,
        node,
        used: set,
        default_var: "str | None",
        allow_aggregate: bool = False,
    ) -> str:
        """Validate a scalar expression; returns its class (numeric/string)."""
        if isinstance(node, ast.Aggregate):
            if not allow_aggregate:
                raise TQuelSemanticError(
                    f"{node.func}() is only allowed as a retrieve target"
                )
            inner = self._walk_scalar(
                analysis, node.operand, used, default_var,
                allow_aggregate=False,
            )
            for by_expr in node.by:
                self._walk_scalar(
                    analysis, by_expr, used, default_var,
                    allow_aggregate=False,
                )
            analysis.has_aggregates = True
            if node.func in ("sum", "avg") and inner not in (
                _NUMERIC, _PARAM
            ):
                raise TQuelSemanticError(
                    f"{node.func}() needs a numeric operand"
                )
            if node.func == "count":
                return _NUMERIC
            return inner
        if isinstance(node, ast.Const):
            return _STRING if isinstance(node.value, str) else _NUMERIC
        if isinstance(node, ast.Param):
            return _PARAM
        if isinstance(node, ast.Attr):
            info, spec = self._resolve_attr(analysis, node, default_var)
            used.add(info.name)
            return (
                _STRING if spec.type is AttributeType.CHAR else _NUMERIC
            )
        if isinstance(node, ast.UnaryOp):
            inner = self._walk_scalar(analysis, node.operand, used, default_var)
            if inner not in (_NUMERIC, _PARAM):
                raise TQuelSemanticError("unary minus needs a number")
            return _NUMERIC
        if isinstance(node, ast.BinOp):
            left = self._walk_scalar(analysis, node.left, used, default_var)
            right = self._walk_scalar(analysis, node.right, used, default_var)
            if left not in (_NUMERIC, _PARAM) or right not in (
                _NUMERIC, _PARAM
            ):
                raise TQuelSemanticError(
                    f"arithmetic {node.op!r} needs numbers"
                )
            return _NUMERIC
        if isinstance(node, ast.Compare):
            left = self._walk_scalar(analysis, node.left, used, default_var)
            right = self._walk_scalar(analysis, node.right, used, default_var)
            if left is not right and _PARAM not in (left, right):
                raise TQuelSemanticError(
                    f"comparison {node.op!r} mixes a string and a number"
                )
            return "bool"
        if isinstance(node, ast.BoolOp):
            for operand in node.operands:
                result = self._walk_scalar(
                    analysis, operand, used, default_var
                )
                if result != "bool":
                    raise TQuelSemanticError(
                        f"{node.op!r} needs boolean operands"
                    )
            return "bool"
        if isinstance(node, ast.NotOp):
            result = self._walk_scalar(analysis, node.operand, used, default_var)
            if result != "bool":
                raise TQuelSemanticError("'not' needs a boolean operand")
            return "bool"
        raise TQuelSemanticError(f"unexpected expression node {node!r}")

    def _infer_field(self, analysis: Analysis, node, name: str) -> FieldSpec:
        """Physical type of a target expression (for into/temporaries)."""
        if isinstance(node, ast.Aggregate):
            if node.func == "count":
                return FieldSpec(name, AttributeType.I4, 4)
            if node.func == "avg":
                return FieldSpec(name, AttributeType.F8, 8)
            inner = self._infer_field(analysis, node.operand, name)
            if node.func == "sum" and inner.type not in (
                AttributeType.F4, AttributeType.F8
            ):
                return FieldSpec(name, AttributeType.I4, 4)
            return inner
        if isinstance(node, ast.Attr):
            default = self._single_var(analysis)
            _, spec = self._resolve_attr(analysis, node, default)
            return FieldSpec(name, spec.type, spec.width)
        if isinstance(node, ast.Const):
            if isinstance(node.value, str):
                return FieldSpec(
                    name, AttributeType.CHAR, max(1, len(node.value))
                )
            if isinstance(node.value, float):
                return FieldSpec(name, AttributeType.F8, 8)
            return FieldSpec(name, AttributeType.I4, 4)
        if isinstance(node, ast.Param):
            raise TQuelSemanticError(
                f"parameter ${node.name} has no known type; retrieve "
                "targets cannot be bare parameters"
            )
        if isinstance(node, ast.UnaryOp):
            return self._infer_field(analysis, node.operand, name)
        if isinstance(node, ast.BinOp):
            left = self._infer_field(analysis, node.left, name)
            right = self._infer_field(analysis, node.right, name)
            if AttributeType.F8 in (left.type, right.type) or (
                AttributeType.F4 in (left.type, right.type)
            ) or node.op == "/":
                return FieldSpec(name, AttributeType.F8, 8)
            return FieldSpec(name, AttributeType.I4, 4)
        raise TQuelSemanticError(
            "target expressions must be attributes, constants or arithmetic"
        )

    def _single_var(self, analysis: Analysis) -> "str | None":
        if len(analysis.var_order) == 1:
            return analysis.var_order[0]
        return None

    # -- temporal expressions ------------------------------------------------------

    def _walk_temporal(
        self, analysis: Analysis, node, used: set, as_operand: bool
    ) -> None:
        """Validate a temporal expression.

        *as_operand* is True below ``start of``/``extend``/``overlap`` --
        positions that need a period value, where ``precede`` is illegal.
        """
        if isinstance(node, ast.TempConst):
            self._db.parse_temporal_text(node.text)  # validates format
            return
        if isinstance(node, ast.TempVar):
            info = self._declare(analysis, node.var)
            used.add(info.name)
            if not info.schema.type.has_valid_time:
                raise TQuelSemanticError(
                    f"{info.schema.name} has no valid time; {node.var!r} "
                    "cannot be used temporally"
                )
            return
        if isinstance(node, ast.TempEdge):
            self._walk_temporal(analysis, node.operand, used, as_operand=True)
            return
        if isinstance(node, ast.TempBin):
            if node.op == "precede" and as_operand:
                raise TQuelSemanticError(
                    "'precede' yields a truth value and cannot be an "
                    "operand of a temporal expression"
                )
            self._walk_temporal(analysis, node.left, used, as_operand=True)
            self._walk_temporal(analysis, node.right, used, as_operand=True)
            return
        raise TQuelSemanticError(f"unexpected temporal node {node!r}")

    def _walk_when(self, analysis: Analysis, node, used: set) -> None:
        if isinstance(node, ast.BoolOp):
            for operand in node.operands:
                self._walk_when(analysis, operand, used)
            return
        if isinstance(node, ast.NotOp):
            self._walk_when(analysis, node.operand, used)
            return
        if isinstance(node, ast.TempBin) and node.op in ("overlap", "precede"):
            self._walk_temporal(analysis, node.left, used, as_operand=True)
            self._walk_temporal(analysis, node.right, used, as_operand=True)
            return
        raise TQuelSemanticError(
            "a when clause must be a boolean combination of 'overlap' or "
            "'precede' predicates"
        )

    # -- conjunct splitting -----------------------------------------------------------

    def _split_conjuncts(
        self, analysis: Analysis, node, temporal: bool, default_var
    ) -> "list[Conjunct]":
        if isinstance(node, ast.BoolOp) and node.op == "and":
            conjuncts = []
            for operand in node.operands:
                conjuncts.extend(
                    self._split_conjuncts(
                        analysis, operand, temporal, default_var
                    )
                )
            return conjuncts
        used: set = set()
        if temporal:
            self._walk_when(analysis, node, used)
        else:
            result = self._walk_scalar(analysis, node, used, default_var)
            if result != "bool":
                raise TQuelSemanticError(
                    "a where clause must be a boolean expression"
                )
        return [Conjunct(node, frozenset(used), temporal)]

    # -- statements -----------------------------------------------------------------------

    def analyze_retrieve(self, stmt: ast.RetrieveStmt) -> Analysis:
        analysis = Analysis(statement=stmt)
        # Bind target expressions first so variable order matches the
        # statement's first-reference order (the prototype's substitution
        # order heuristic).
        names = []
        for item in stmt.targets:
            name = item.name or self._default_name(item.expr)
            if name in names:
                name = self._dedup_name(name, names)
            names.append(name)
        for name, item in zip(names, stmt.targets):
            used: set = set()
            self._walk_scalar(
                analysis, item.expr, used, None, allow_aggregate=True
            )
            spec = self._infer_field(analysis, item.expr, name)
            analysis.targets.append((name, item.expr, spec))
        if analysis.has_aggregates:
            self._check_aggregate_shape(analysis)
            if stmt.valid is not None:
                raise TQuelSemanticError(
                    "aggregates produce a snapshot result; the valid "
                    "clause does not apply"
                )
        self._analyze_clauses(analysis, stmt, default_var=None)
        if stmt.into is not None and stmt.into in self._db.relation_names():
            raise TQuelSemanticError(
                f"relation {stmt.into!r} already exists"
            )
        if not analysis.vars:
            raise TQuelSemanticError(
                "retrieve needs at least one range variable"
            )
        return analysis

    def analyze_update(self, stmt) -> Analysis:
        """``append`` / ``delete`` / ``replace``."""
        analysis = Analysis(statement=stmt)
        if isinstance(stmt, ast.AppendStmt):
            target_relation = self._db.relation(stmt.relation)
            default_var = None
        else:
            info = self._declare(analysis, stmt.var)
            target_relation = info.relation
            default_var = stmt.var
        if isinstance(stmt, (ast.AppendStmt, ast.ReplaceStmt)):
            for item in stmt.targets:
                if item.name is None:
                    raise TQuelSemanticError(
                        "append/replace targets must be named "
                        "(attribute = expression)"
                    )
                schema = target_relation.schema
                if not schema.has_attribute(item.name):
                    raise TQuelSemanticError(
                        f"{schema.name} has no attribute {item.name!r}"
                    )
                position = schema.position(item.name)
                if position >= schema.user_count:
                    raise TQuelSemanticError(
                        f"{item.name!r} is an implicit time attribute; use "
                        "the valid clause instead"
                    )
                used: set = set()
                kind = self._walk_scalar(analysis, item.expr, used, default_var)
                spec = schema.field_for(item.name)
                expected = (
                    _STRING
                    if spec.type is AttributeType.CHAR
                    else _NUMERIC
                )
                if kind != expected and kind is not _PARAM:
                    raise TQuelSemanticError(
                        f"type mismatch assigning to {item.name!r}"
                    )
                analysis.targets.append((item.name, item.expr, spec))
        self._analyze_clauses(analysis, stmt, default_var=default_var)
        # Valid-clause shape checks against the written relation.
        valid = getattr(stmt, "valid", None)
        if valid is not None:
            schema = target_relation.schema
            if not schema.type.has_valid_time:
                raise TQuelSemanticError(
                    f"{schema.name} has no valid time; the valid clause "
                    "does not apply"
                )
            if valid.at is not None and schema.kind is not RelationKind.EVENT:
                raise TQuelSemanticError(
                    f"{schema.name} is an interval relation; use "
                    "'valid from ... to ...'"
                )
            if valid.from_ is not None and (
                schema.kind is not RelationKind.INTERVAL
            ):
                raise TQuelSemanticError(
                    f"{schema.name} is an event relation; use 'valid at'"
                )
        return analysis

    @staticmethod
    def _check_aggregate_shape(analysis: Analysis) -> None:
        """Enforce the grouping rules for aggregate target lists.

        Plain aggregates stand alone; by-list aggregates group the result,
        and then the statement's non-aggregate targets must be exactly the
        grouping expressions (so every output column is well-defined per
        group), with every aggregate sharing the same by-list.
        """
        aggregates = [
            expr
            for _, expr, __ in analysis.targets
            if isinstance(expr, ast.Aggregate)
        ]
        plain = [
            expr
            for _, expr, __ in analysis.targets
            if not isinstance(expr, ast.Aggregate)
        ]
        by_lists = {agg.by for agg in aggregates}
        if len(by_lists) > 1:
            raise TQuelSemanticError(
                "all aggregates in one retrieve must share the same "
                "by-list"
            )
        by_list = by_lists.pop()
        if not by_list:
            if plain:
                raise TQuelSemanticError(
                    "aggregate and non-aggregate targets cannot be mixed; "
                    "group with a by-list (e.g. sum(e.sal by e.dept)) or "
                    "make every target an aggregate"
                )
            return
        if set(plain) != set(by_list):
            raise TQuelSemanticError(
                "with a by-list, the plain targets must be exactly the "
                "grouping expressions"
            )

    def _analyze_clauses(self, analysis: Analysis, stmt, default_var) -> None:
        where = getattr(stmt, "where", None)
        if where is not None:
            analysis.where = self._split_conjuncts(
                analysis, where, temporal=False, default_var=default_var
            )
        when = getattr(stmt, "when", None)
        if when is not None:
            analysis.when = self._split_conjuncts(
                analysis, when, temporal=True, default_var=default_var
            )
        valid = getattr(stmt, "valid", None)
        if valid is not None:
            analysis.valid = valid
            used: set = set()
            for expr in (valid.at, valid.from_, valid.to):
                if expr is not None:
                    self._walk_temporal(analysis, expr, used, as_operand=True)
        as_of = getattr(stmt, "as_of", None)
        if as_of is not None:
            analysis.as_of = as_of
            used = set()
            for expr in (as_of.at, as_of.through):
                if expr is not None:
                    if _mentions_var(expr):
                        raise TQuelSemanticError(
                            "an as-of clause must be a temporal constant"
                        )
                    self._walk_temporal(analysis, expr, used, as_operand=True)
            if analysis.vars and not any(
                info.schema.type.has_transaction_time
                for info in analysis.vars.values()
            ):
                raise TQuelSemanticError(
                    "an as-of clause requires a relation with transaction "
                    "time (rollback or temporal)"
                )
        return

    @staticmethod
    def _default_name(expr) -> str:
        if isinstance(expr, ast.Attr):
            return expr.name
        if isinstance(expr, ast.Aggregate):
            return expr.func
        return "expr"

    @staticmethod
    def _dedup_name(name: str, existing: "list[str]") -> str:
        counter = 2
        while f"{name}{counter}" in existing:
            counter += 1
        return f"{name}{counter}"
