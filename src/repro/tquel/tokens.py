"""Token definitions for the TQuel lexer."""

from __future__ import annotations

from dataclasses import dataclass

# Keywords, all case-insensitive.  ``as of`` is two tokens.
KEYWORDS = frozenset(
    {
        "all",
        "and",
        "append",
        "as",
        "at",
        "before",
        "by",
        "coalesced",
        "copy",
        "create",
        "delete",
        "destroy",
        "end",
        "event",
        "extend",
        "from",
        "index",
        "interval",
        "into",
        "is",
        "modify",
        "not",
        "of",
        "on",
        "or",
        "overlap",
        "partition",
        "persistent",
        "precede",
        "range",
        "replace",
        "retrieve",
        "start",
        "through",
        "to",
        "unique",
        "vacuum",
        "valid",
        "when",
        "where",
    }
)

# Statement-starting keywords: the parser uses these to find statement
# boundaries in multi-statement input.
STATEMENT_KEYWORDS = frozenset(
    {
        "append",
        "copy",
        "create",
        "delete",
        "destroy",
        "index",
        "modify",
        "partition",
        "range",
        "replace",
        "retrieve",
        "vacuum",
    }
)

PUNCTUATION = (
    "<=",
    ">=",
    "!=",
    "(",
    ")",
    ",",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    ".",
    ";",
)


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``type`` is one of ``"ident"``, ``"int"``, ``"float"``, ``"string"``,
    ``"param"``, ``"eof"``, a keyword (its lowercase spelling), or a
    punctuation string.
    """

    type: str
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.type!r}, {self.value!r})"
