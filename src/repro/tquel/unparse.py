"""Render statement ASTs back to TQuel text.

The unparser emits canonical TQuel that re-parses to an equal AST (the
property the test suite checks with generated statements).  Scalar
subexpressions are parenthesized conservatively, temporal expressions
exactly as TQuel's grammar requires.
"""

from __future__ import annotations

from repro.errors import TQuelError
from repro.tquel import ast


def _scalar(node, parent_tight: bool = False) -> str:
    if isinstance(node, ast.Const):
        if isinstance(node.value, str):
            return f'"{node.value}"'
        return str(node.value)
    if isinstance(node, ast.Attr):
        return f"{node.var}.{node.name}" if node.var else node.name
    if isinstance(node, ast.Param):
        return f"${node.name}"
    if isinstance(node, ast.Aggregate):
        inner = _scalar(node.operand)
        if node.by:
            inner += " by " + ", ".join(_scalar(e) for e in node.by)
        return f"{node.func}({inner})"
    if isinstance(node, ast.UnaryOp):
        return f"-{_scalar(node.operand, parent_tight=True)}"
    if isinstance(node, ast.BinOp):
        text = (
            f"{_scalar(node.left, parent_tight=True)} {node.op} "
            f"{_scalar(node.right, parent_tight=True)}"
        )
        return f"({text})" if parent_tight else text
    if isinstance(node, ast.Compare):
        return (
            f"{_scalar(node.left, parent_tight=True)} {node.op} "
            f"{_scalar(node.right, parent_tight=True)}"
        )
    if isinstance(node, ast.BoolOp):
        joined = f" {node.op} ".join(
            _bool_operand(operand) for operand in node.operands
        )
        return joined
    if isinstance(node, ast.NotOp):
        return f"not {_bool_operand(node.operand)}"
    raise TQuelError(f"cannot unparse scalar node {node!r}")


def _bool_operand(node) -> str:
    text = _scalar(node)
    if isinstance(node, ast.BoolOp):
        return f"({text})"
    return text


def _temporal(node, operand_position: bool = False) -> str:
    if isinstance(node, ast.TempConst):
        return f'"{node.text}"'
    if isinstance(node, ast.TempVar):
        return node.var
    if isinstance(node, ast.TempEdge):
        return f"{node.which} of {_temporal(node.operand, True)}"
    if isinstance(node, ast.TempBin):
        text = (
            f"{_temporal(node.left, True)} {node.op} "
            f"{_temporal(node.right, True)}"
        )
        return f"({text})" if operand_position else text
    raise TQuelError(f"cannot unparse temporal node {node!r}")


def _when(node) -> str:
    if isinstance(node, ast.BoolOp):
        return f" {node.op} ".join(
            _when_operand(operand) for operand in node.operands
        )
    if isinstance(node, ast.NotOp):
        return f"not {_when_operand(node.operand)}"
    return _temporal(node)


def _when_operand(node) -> str:
    if isinstance(node, ast.BoolOp):
        return f"({_when(node)})"
    if isinstance(node, ast.NotOp):
        return f"not {_when_operand(node.operand)}"
    return _temporal(node)


def _targets(targets) -> str:
    parts = []
    for item in targets:
        if item.name is not None:
            parts.append(f"{item.name} = {_scalar(item.expr)}")
        else:
            parts.append(_scalar(item.expr))
    return "(" + ", ".join(parts) + ")"


def _clauses(stmt) -> str:
    parts = []
    valid = getattr(stmt, "valid", None)
    if valid is not None:
        if valid.at is not None:
            parts.append(f"valid at {_temporal(valid.at, True)}")
        else:
            parts.append(
                f"valid from {_temporal(valid.from_, True)} "
                f"to {_temporal(valid.to, True)}"
            )
    if getattr(stmt, "where", None) is not None:
        parts.append(f"where {_scalar(stmt.where)}")
    if getattr(stmt, "when", None) is not None:
        parts.append(f"when {_when(stmt.when)}")
    as_of = getattr(stmt, "as_of", None)
    if as_of is not None:
        text = f"as of {_temporal(as_of.at, True)}"
        if as_of.through is not None:
            text += f" through {_temporal(as_of.through, True)}"
        parts.append(text)
    return (" " + " ".join(parts)) if parts else ""


def _options(options) -> str:
    if not options:
        return ""
    rendered = []
    for name, value in options:
        if isinstance(value, str):
            rendered.append(f'{name} = "{value}"')
        else:
            rendered.append(f"{name} = {value}")
    return " where " + ", ".join(rendered)


def unparse(stmt) -> str:
    """Render one statement AST as TQuel text."""
    if isinstance(stmt, ast.RangeStmt):
        return f"range of {stmt.var} is {stmt.relation}"
    if isinstance(stmt, ast.RetrieveStmt):
        head = "retrieve"
        if stmt.into:
            head += f" into {stmt.into}"
        if stmt.unique:
            head += " unique"
        if stmt.coalesced:
            head += " coalesced"
        return f"{head} {_targets(stmt.targets)}{_clauses(stmt)}"
    if isinstance(stmt, ast.AppendStmt):
        return (
            f"append to {stmt.relation} {_targets(stmt.targets)}"
            f"{_clauses(stmt)}"
        )
    if isinstance(stmt, ast.DeleteStmt):
        return f"delete {stmt.var}{_clauses(stmt)}"
    if isinstance(stmt, ast.ReplaceStmt):
        return f"replace {stmt.var} {_targets(stmt.targets)}{_clauses(stmt)}"
    if isinstance(stmt, ast.CreateStmt):
        head = "create"
        if stmt.persistent:
            head += " persistent"
        if stmt.kind:
            head += f" {stmt.kind}"
        columns = ", ".join(f"{n} = {t}" for n, t in stmt.columns)
        return f"{head} {stmt.relation} ({columns})"
    if isinstance(stmt, ast.ModifyStmt):
        text = f"modify {stmt.relation} to {stmt.structure}"
        if stmt.key:
            text += f" on {stmt.key}"
        return text + _options(stmt.options)
    if isinstance(stmt, ast.CopyStmt):
        return f'copy {stmt.relation} {stmt.direction} "{stmt.path}"'
    if isinstance(stmt, ast.DestroyStmt):
        return "destroy " + ", ".join(stmt.relations)
    if isinstance(stmt, ast.VacuumStmt):
        return f"vacuum {stmt.relation} before {_temporal(stmt.before, True)}"
    if isinstance(stmt, ast.IndexStmt):
        return (
            f"index on {stmt.relation} is {stmt.index_name} "
            f"({stmt.attribute})" + _options(stmt.options)
        )
    if isinstance(stmt, ast.PartitionStmt):
        return (
            f"partition {stmt.relation} by {stmt.method} "
            f"on {stmt.attribute} into {stmt.count}"
            + _options(stmt.options)
        )
    raise TQuelError(f"cannot unparse statement {stmt!r}")
