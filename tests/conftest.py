"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Clock, TemporalDatabase, parse_temporal

JAN1_1980 = parse_temporal("1/1/80")
MAR1_1980 = parse_temporal("3/1/80")


@pytest.fixture
def clock() -> Clock:
    """A deterministic clock starting 1 March 1980, ticking one minute."""
    return Clock(start=MAR1_1980, tick=60)


@pytest.fixture
def db(clock) -> TemporalDatabase:
    """An empty database on the deterministic clock."""
    return TemporalDatabase("test", clock=clock)


def make_db(tick: int = 60) -> TemporalDatabase:
    """Non-fixture helper for property-based tests."""
    return TemporalDatabase(
        "test", clock=Clock(start=MAR1_1980, tick=tick)
    )


@pytest.fixture
def temporal_pair(db):
    """A temporal relation pair like the benchmark's, 64 tuples, loaded."""
    from repro import FOREVER

    db.execute(
        "create persistent interval th "
        "(id = i4, amount = i4, seq = i4, string = c96)"
    )
    db.execute(
        "create persistent interval ti "
        "(id = i4, amount = i4, seq = i4, string = c96)"
    )
    rows = []
    for i in range(1, 65):
        stamp = JAN1_1980 + i * 3600
        rows.append(
            (i, 10000 + i, 0, "x" * 96, stamp, FOREVER, stamp, FOREVER)
        )
    db.copy_in("th", rows)
    db.copy_in("ti", rows)
    db.execute("modify th to hash on id where fillfactor = 100")
    db.execute("modify ti to isam on id where fillfactor = 100")
    db.execute("range of h is th")
    db.execute("range of i is ti")
    return db
