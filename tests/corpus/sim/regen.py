"""Regenerate the committed sim seed corpus.

Each case is a small hand-written TQuel workload shaped after the
paper's twelve benchmark queries (Q01-Q12, ``repro.bench.queries``),
spread across the four database types and the five access methods.  The
script runs every case through the differential harness and refuses to
write a file whose engine/oracle runs disagree, so the committed corpus
is by construction a zero-divergence baseline.

    PYTHONPATH=src python tests/corpus/sim/regen.py
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.sim.corpus import write_case
from repro.sim.generator import (
    DEFAULT_CLOCK_START,
    DEFAULT_CLOCK_TICK,
    Workload,
)
from repro.sim.harness import Config, run_workload
from repro.tquel.parser import parse_statement

HERE = Path(__file__).resolve().parent

# (name, db_type, structure, batch, atomic, statements)
CASES = [
    (
        "01-static-heap-keyprobe",
        "static",
        "heap",
        True,
        True,
        [
            'create hrel (id = i4, seq = i4, amount = i4)',
            'create irel (id = i4, seq = i4, amount = i4)',
            'range of h is hrel',
            'range of i is irel',
            'append to hrel (id = 1, seq = 10, amount = 50)',
            'append to hrel (id = 2, seq = 20, amount = 60)',
            'append to hrel (id = 3, seq = 30, amount = 50)',
            'append to irel (id = 1, seq = 11, amount = 2)',
            'append to irel (id = 2, seq = 21, amount = 3)',
            # Q01/Q02: key probes.
            'retrieve (h.id, h.seq) where h.id = 2',
            'retrieve (i.id, i.seq) where i.id = 1',
            # Q07: non-key probe.
            'retrieve (h.id, h.seq) where h.amount = 50',
            'replace h (amount = 70) where h.id = 3',
            'retrieve (h.id, h.seq) where h.amount = 50',
            'retrieve (n = count(h.id))',
        ],
    ),
    (
        "02-static-hash-amountprobe",
        "static",
        "hash",
        True,
        False,
        [
            'create hrel (id = i4, seq = i4, amount = i4)',
            'modify hrel to hash on id',
            'index on hrel is ixam (amount)',
            'range of h is hrel',
            'append to hrel (id = 1, seq = 10, amount = 50)',
            'append to hrel (id = 2, seq = 20, amount = 60)',
            'append to hrel (id = 3, seq = 30, amount = 60)',
            # Q01: hashed key probe; Q07/Q08: secondary-index probe.
            'retrieve (h.id, h.seq) where h.id = 1',
            'retrieve (h.id, h.seq) where h.amount = 60',
            # Key-changing replace relocates the record (deferred move).
            'replace h (id = 9) where h.id = 2',
            'retrieve (h.id, h.seq) where h.id = 9',
            'delete h where h.amount = 50',
            'retrieve (h.id, h.seq) where h.id = 1',
            'retrieve (h.id, h.seq) where h.amount = 60',
        ],
    ),
    (
        "03-static-btree-join",
        "static",
        "btree",
        False,
        True,
        [
            'create hrel (id = i4, seq = i4, amount = i4)',
            'create irel (id = i4, seq = i4, amount = i4)',
            'modify hrel to btree on id',
            'modify irel to btree on id',
            'range of h is hrel',
            'range of i is irel',
            'append to hrel (id = 1, seq = 10, amount = 2)',
            'append to hrel (id = 2, seq = 20, amount = 1)',
            'append to irel (id = 1, seq = 11, amount = 2)',
            'append to irel (id = 2, seq = 21, amount = 1)',
            # Q09/Q10: two-variable joins on id = amount.
            'retrieve (h.id, i.id, i.amount) where h.id = i.amount',
            'retrieve (i.id, h.id, h.amount) where i.id = h.amount',
            'retrieve unique (h.amount) where h.id > 0',
        ],
    ),
    (
        "04-rollback-hash-asof",
        "rollback",
        "hash",
        True,
        True,
        [
            'create persistent hrel (id = i4, seq = i4, amount = i4)',
            'create persistent irel (id = i4, seq = i4, amount = i4)',
            'modify hrel to hash on id',
            'modify irel to hash on id',
            'range of h is hrel',
            'range of i is irel',
            'append to hrel (id = 1, seq = 10, amount = 50)',
            'append to hrel (id = 2, seq = 20, amount = 60)',
            'append to irel (id = 1, seq = 11, amount = 1)',
            'delete h where h.id = 1',
            'replace i (seq = 12) where i.id = 1',
            # Q03/Q04: rollback queries into the transaction past.
            'retrieve (h.id, h.seq) as of "1980-03-01 02:30:00"',
            'retrieve (i.id, i.seq) as of "1980-03-01 03:30:00"',
            # Q05/Q06: current-state probes on a rollback database.
            'retrieve (h.id, h.seq) where h.id = 1 as of "now"',
            'retrieve (i.id, i.seq) where i.id = 1 as of "now"',
        ],
    ),
    (
        "05-rollback-isam-vacuum",
        "rollback",
        "isam",
        False,
        False,
        [
            'create persistent hrel (id = i4, seq = i4, amount = i4)',
            'modify hrel to isam on id',
            'range of h is hrel',
            'append to hrel (id = 1, seq = 10, amount = 50)',
            'append to hrel (id = 2, seq = 20, amount = 60)',
            'append to hrel (id = 3, seq = 30, amount = 70)',
            'replace h (amount = 99) where h.id = 1',
            'delete h where h.id = 2',
            'retrieve (h.id, h.amount) as of "1980-03-01 03:30:00"',
            'vacuum hrel before "1980-03-01 04:30:00"',
            # The vacuumed past is gone; the present is intact.
            'retrieve (h.id, h.amount) as of "1980-03-01 03:30:00"',
            'retrieve (h.id, h.amount) as of "now"',
            'retrieve (n = count(h.id)) as of "now"',
        ],
    ),
    (
        "06-rollback-twolevel-join",
        "rollback",
        "twolevel",
        True,
        True,
        [
            'create persistent hrel (id = i4, seq = i4, amount = i4)',
            'create persistent irel (id = i4, seq = i4, amount = i4)',
            'modify hrel to twolevel on id',
            'modify irel to twolevel on id where primary = "isam"',
            'range of h is hrel',
            'range of i is irel',
            'append to hrel (id = 1, seq = 10, amount = 2)',
            'append to hrel (id = 2, seq = 20, amount = 1)',
            'append to irel (id = 1, seq = 11, amount = 2)',
            'append to irel (id = 2, seq = 21, amount = 1)',
            'replace h (seq = 15) where h.id = 1',
            # Q09/Q10 on a rollback database: joins as of now.
            'retrieve (h.id, i.id, i.amount) where h.id = i.amount '
            'as of "now"',
            'retrieve (i.id, h.id, h.amount) where i.id = h.amount '
            'as of "now"',
            # Key changes cannot relocate inside a two-level store: both
            # sides must refuse, leaving state untouched.
            'replace h (id = 7) where h.id = 1',
            'retrieve (h.id, h.seq) as of "1980-03-01 04:30:00"',
        ],
    ),
    (
        "07-historical-heap-current",
        "historical",
        "heap",
        True,
        True,
        [
            'create interval hrel (id = i4, seq = i4, amount = i4)',
            'create event irel (id = i4, seq = i4, amount = i4)',
            'range of h is hrel',
            'range of i is irel',
            'append to hrel (id = 1, seq = 10, amount = 50) '
            'valid from "1980-03-01 00:30:00" to "1980-03-10"',
            'append to hrel (id = 2, seq = 20, amount = 60) '
            'valid from "1980-03-05" to "1980-03-06"',
            'append to irel (id = 1, seq = 11, amount = 2) '
            'valid at "1980-03-01 01:30:00"',
            # Q05/Q06 on a historical database: when ... overlap "now".
            'retrieve (h.id, h.seq) where h.id = 1 when h overlap "now"',
            'retrieve (h.id, h.seq) where h.id = 2 when h overlap "now"',
            'retrieve (i.id, i.seq) where i.id = 1',
            'delete h where h.id = 1',
            'retrieve (h.id, h.seq) when h overlap "now"',
            'retrieve (h.id, h.seq, h.amount)',
        ],
    ),
    (
        "08-historical-hash-index",
        "historical",
        "hash",
        False,
        True,
        [
            'create interval hrel (id = i4, seq = i4, amount = i4)',
            'modify hrel to hash on id',
            'index on hrel is ixam (amount) where structure = "hash", '
            'levels = 2',
            'range of h is hrel',
            'append to hrel (id = 1, seq = 10, amount = 50) '
            'valid from "1980-03-01" to "1980-03-20"',
            'append to hrel (id = 2, seq = 20, amount = 50) '
            'valid from "1980-03-02" to "1980-03-03"',
            'append to hrel (id = 3, seq = 30, amount = 60) '
            'valid from "1980-03-10" to "1980-03-12"',
            # Q07/Q08: secondary-index probes, current and all-versions.
            'retrieve (h.id, h.seq) where h.amount = 50 '
            'when h overlap "now"',
            'retrieve (h.id, h.seq) where h.amount = 50',
            # Postactive correction that changes the hash key: the record
            # must relocate, not be rewritten into the wrong bucket.
            'replace h (id = 9, amount = 70) where h.id = 3',
            'retrieve (h.id, h.seq) where h.id = 9',
            'retrieve (h.id, h.amount) where h.amount = 70',
            'delete h where h.id = 1',
            'retrieve (h.id, h.seq) where h.amount = 50',
        ],
    ),
    (
        "09-historical-twolevel-join",
        "historical",
        "twolevel",
        True,
        False,
        [
            'create interval hrel (id = i4, seq = i4, amount = i4)',
            'create interval irel (id = i4, seq = i4, amount = i4)',
            'modify hrel to twolevel on id',
            'modify irel to twolevel on id where history = "clustered"',
            'range of h is hrel',
            'range of i is irel',
            'append to hrel (id = 1, seq = 10, amount = 2) '
            'valid from "1980-03-01" to "1980-04-01"',
            'append to hrel (id = 2, seq = 20, amount = 1) '
            'valid from "1980-03-01" to "1980-03-02"',
            'append to irel (id = 1, seq = 11, amount = 2) '
            'valid from "1980-03-01" to "1980-04-01"',
            'append to irel (id = 2, seq = 21, amount = 1) '
            'valid from "1980-03-01" to "1980-04-01"',
            'replace h (seq = 12) where h.id = 1',
            # Q09/Q10 with the paper's extra two-level currency conjunct.
            'retrieve (h.id, i.id, i.amount) where h.id = i.amount '
            'when h overlap i and i overlap "now" and h overlap "now"',
            'retrieve (i.id, h.id, h.amount) where i.id = h.amount '
            'when i overlap h and h overlap "now" and i overlap "now"',
        ],
    ),
    (
        "10-temporal-isam-q11",
        "temporal",
        "isam",
        True,
        True,
        [
            'create persistent interval hrel (id = i4, seq = i4, '
            'amount = i4)',
            'create persistent interval irel (id = i4, seq = i4, '
            'amount = i4)',
            'modify hrel to isam on id',
            'modify irel to isam on id',
            'range of h is hrel',
            'range of i is irel',
            'append to hrel (id = 1, seq = 10, amount = 2) '
            'valid from "1980-03-01 00:10:00" to "1980-03-05"',
            'append to irel (id = 1, seq = 11, amount = 2) '
            'valid from "1980-03-02" to "1980-03-08"',
            'append to irel (id = 2, seq = 21, amount = 1) '
            'valid from "1980-03-01 00:20:00" to "1980-03-03"',
            # Q11: derived validity with an event comparison.
            'retrieve (h.id, h.seq, i.id, i.seq, i.amount) '
            'valid from start of h to end of i '
            'when start of h precede i as of "now"',
            'retrieve (h.id, i.id) when h precede i',
        ],
    ),
    (
        "11-temporal-btree-q12",
        "temporal",
        "btree",
        False,
        True,
        [
            'create persistent interval hrel (id = i4, seq = i4, '
            'amount = i4)',
            'create persistent interval irel (id = i4, seq = i4, '
            'amount = i4)',
            'modify hrel to btree on id',
            'modify irel to btree on id',
            'range of h is hrel',
            'range of i is irel',
            'append to hrel (id = 1, seq = 10, amount = 2) '
            'valid from "1980-03-01 00:10:00" to "1980-03-09"',
            'append to irel (id = 1, seq = 11, amount = 2) '
            'valid from "1980-03-02" to "1980-03-08"',
            # Temporal replace: stamps the old version and inserts a
            # closing version plus the replacement (two new versions).
            'replace h (seq = 12) where h.id = 1',
            # Q12: intersection/extension validity over a join.
            'retrieve (h.id, h.seq, i.id, i.seq, i.amount) '
            'valid from start of (h overlap i) to end of (h extend i) '
            'where h.id = 1 and i.amount = 2 when h overlap i '
            'as of "now"',
            'delete h where h.id = 1',
            'retrieve (h.id, h.seq) when h overlap "now"',
            'retrieve (h.id, h.seq) as of "1980-03-01 03:30:00"',
        ],
    ),
    (
        "12-temporal-twolevel-history",
        "temporal",
        "twolevel",
        True,
        True,
        [
            'create persistent event hrel (id = i4, seq = i4, '
            'amount = i4)',
            'modify hrel to twolevel on id where primary = "hash"',
            'range of h is hrel',
            'append to hrel (id = 1, seq = 10, amount = 5) '
            'valid at "1980-03-01 00:30:00"',
            'append to hrel (id = 2, seq = 20, amount = 6)',
            'replace h (seq = 11) where h.id = 1',
            'retrieve (h.id, h.seq)',
            # The pre-replace state is still visible in the past.
            'retrieve (h.id, h.seq) as of "1980-03-01 02:30:00"',
            'delete h where h.id = 2',
            'retrieve (h.id, h.seq, h.amount) as of "now"',
            'retrieve (n = count(h.id)) as of "now"',
        ],
    ),
]

# (name, db_type, structure, batch, atomic, optimizer, statements) --
# cases that exercise the cost-based optimizer's decisions (or pin the
# fixed strategy with optimizer off) on workloads where the two differ.
OPTIMIZER_CASES = [
    (
        "13-static-hash-optoff",
        "static",
        "hash",
        True,
        True,
        False,
        [
            'create hrel (id = i4, seq = i4, amount = i4)',
            'modify hrel to hash on id',
            'index on hrel is ixam (amount)',
            'range of h is hrel',
            'append to hrel (id = 1, seq = 10, amount = 50)',
            'append to hrel (id = 2, seq = 20, amount = 60)',
            'append to hrel (id = 3, seq = 30, amount = 60)',
            # Fixed strategy: key probe then index probe, never a scan.
            'retrieve (h.id, h.seq) where h.id = 2',
            'retrieve (h.id, h.seq) where h.amount = 60',
            'delete h where h.id = 3',
            'retrieve (h.id, h.seq) where h.amount = 60',
        ],
    ),
    (
        "14-temporal-isam-optscan",
        "temporal",
        "isam",
        True,
        True,
        True,
        [
            'create persistent interval hrel (id = i4, seq = i4, '
            'amount = i4)',
            'modify hrel to isam on id',
            'range of h is hrel',
            'append to hrel (id = 1, seq = 10, amount = 2) '
            'valid from "1980-03-01 00:10:00" to "1980-03-05"',
            'append to hrel (id = 2, seq = 20, amount = 3) '
            'valid from "1980-03-02" to "1980-03-08"',
            # One data page: the optimizer prefers the scan over the
            # two-page ISAM directory descent the fixed strategy takes.
            'retrieve (h.id, h.seq) where h.id = 1',
            'replace h (seq = 12) where h.id = 2',
            'retrieve (h.id, h.seq) where h.id = 2',
            'retrieve (h.id, h.seq) as of "1980-03-01 03:30:00"',
        ],
    ),
    (
        "15-historical-hash-optindex",
        "historical",
        "hash",
        False,
        True,
        True,
        [
            'create interval hrel (id = i4, seq = i4, amount = i4)',
            'modify hrel to hash on id',
            'index on hrel is ixam (amount) where structure = "hash", '
            'levels = 2',
            'range of h is hrel',
            'append to hrel (id = 1, seq = 10, amount = 50) '
            'valid from "1980-03-01" to "1980-03-20"',
            'append to hrel (id = 2, seq = 20, amount = 50) '
            'valid from "1980-03-02" to "1980-03-03"',
            'append to hrel (id = 3, seq = 30, amount = 60) '
            'valid from "1980-03-10" to "1980-03-12"',
            # Priced choice between the two-level secondary index and a
            # scan, current and all-versions.
            'retrieve (h.id, h.seq) where h.amount = 50 '
            'when h overlap "now"',
            'retrieve (h.id, h.seq) where h.amount = 50',
            'retrieve (h.id, h.seq) where h.id = 3',
        ],
    ),
    (
        "16-rollback-twolevel-optoff",
        "rollback",
        "twolevel",
        True,
        False,
        False,
        [
            'create persistent hrel (id = i4, seq = i4, amount = i4)',
            'create persistent irel (id = i4, seq = i4, amount = i4)',
            'modify hrel to twolevel on id',
            'modify irel to twolevel on id where primary = "isam"',
            'range of h is hrel',
            'range of i is irel',
            'append to hrel (id = 1, seq = 10, amount = 2)',
            'append to hrel (id = 2, seq = 20, amount = 1)',
            'append to irel (id = 1, seq = 11, amount = 2)',
            # Fixed two-level currency behavior under optimizer off.
            'retrieve (h.id, i.id, i.amount) where h.id = i.amount '
            'as of "now"',
            'retrieve (h.id, h.seq) where h.id = 2 as of "now"',
            'retrieve (h.id, h.seq) as of "1980-03-01 03:30:00"',
        ],
    ),
]


def build() -> int:
    failures = 0
    cases = [
        (name, db_type, structure, batch, atomic, True, texts)
        for name, db_type, structure, batch, atomic, texts in CASES
    ] + OPTIMIZER_CASES
    for number, (
        name, db_type, structure, batch, atomic, optimizer, texts
    ) in enumerate(cases, start=1):
        workload = Workload(
            seed=number,
            db_type=db_type,
            profile="corpus",
            ops=len(texts),
            clock_start=DEFAULT_CLOCK_START,
            clock_tick=DEFAULT_CLOCK_TICK,
            statements=[parse_statement(text) for text in texts],
        )
        config = Config(
            structure=structure, batch=batch, atomic=atomic,
            optimizer=optimizer,
        )
        report = run_workload(workload, config, inject_modifies=False)
        if report.divergence is not None:
            print(f"{name}: DIVERGES\n{report.divergence}")
            failures += 1
            continue
        path = write_case(HERE / f"{name}.tquel", report)
        print(f"{name}: ok ({len(report.script)} statements) -> {path.name}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(build())
