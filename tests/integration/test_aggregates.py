"""Integration tests: Quel scalar aggregates in retrieve target lists."""

import pytest

from repro.errors import ExecutionError, TQuelSemanticError


@pytest.fixture
def emp(db):
    db.execute("create emp (name = c12, dept = c8, sal = i4)")
    db.execute("range of e is emp")
    for name, dept, sal in (
        ("ahn", "cs", 30000),
        ("snodgrass", "cs", 40000),
        ("wong", "ee", 35000),
        ("kreps", "ee", 25000),
    ):
        db.execute(
            f'append to emp (name = "{name}", dept = "{dept}", sal = {sal})'
        )
    return db


class TestScalarAggregates:
    def test_count(self, emp):
        result = emp.execute("retrieve (n = count(e.name))")
        assert result.rows == [(4,)]

    def test_sum(self, emp):
        result = emp.execute("retrieve (total = sum(e.sal))")
        assert result.rows == [(130000,)]

    def test_avg_is_float(self, emp):
        result = emp.execute("retrieve (mean = avg(e.sal))")
        assert result.rows == [(32500.0,)]

    def test_min_max(self, emp):
        result = emp.execute("retrieve (lo = min(e.sal), hi = max(e.sal))")
        assert result.rows == [(25000, 40000)]

    def test_min_of_strings(self, emp):
        result = emp.execute("retrieve (first = min(e.name))")
        assert result.rows == [("ahn",)]

    def test_default_column_name(self, emp):
        result = emp.execute("retrieve (count(e.name))")
        assert result.columns == ["count"]

    def test_aggregate_over_filtered_rows(self, emp):
        result = emp.execute(
            'retrieve (n = count(e.name), s = sum(e.sal)) '
            'where e.dept = "cs"'
        )
        assert result.rows == [(2, 70000)]

    def test_aggregate_of_expression(self, emp):
        result = emp.execute("retrieve (k = sum(e.sal / 1000))")
        assert result.rows == [(130,)]

    def test_count_of_empty_result_is_zero(self, emp):
        result = emp.execute(
            'retrieve (n = count(e.name)) where e.dept = "music"'
        )
        assert result.rows == [(0,)]

    def test_avg_of_empty_result_raises(self, emp):
        with pytest.raises(ExecutionError):
            emp.execute('retrieve (avg(e.sal)) where e.dept = "music"')

    def test_aggregate_into_relation(self, emp):
        emp.execute("retrieve into stats (n = count(e.name))")
        emp.execute("range of s is stats")
        assert emp.execute("retrieve (s.n)").rows == [(4,)]


class TestByLists:
    def test_sum_by_department(self, emp):
        result = emp.execute(
            "retrieve (e.dept, total = sum(e.sal by e.dept))"
        )
        assert sorted(result.rows) == [("cs", 70000), ("ee", 60000)]

    def test_count_by_department(self, emp):
        result = emp.execute(
            "retrieve (e.dept, n = count(e.name by e.dept))"
        )
        assert sorted(result.rows) == [("cs", 2), ("ee", 2)]

    def test_multiple_aggregates_per_group(self, emp):
        result = emp.execute(
            "retrieve (e.dept, lo = min(e.sal by e.dept), "
            "hi = max(e.sal by e.dept))"
        )
        assert sorted(result.rows) == [
            ("cs", 30000, 40000), ("ee", 25000, 35000),
        ]

    def test_grouping_respects_where(self, emp):
        result = emp.execute(
            "retrieve (e.dept, n = count(e.name by e.dept)) "
            "where e.sal > 28000"
        )
        assert sorted(result.rows) == [("cs", 2), ("ee", 1)]

    def test_group_by_expression(self, emp):
        result = emp.execute(
            "retrieve (band = e.sal / 10000, "
            "n = count(e.name by e.sal / 10000))"
        )
        assert sorted(result.rows) == [(2, 1), (3, 2), (4, 1)]

    def test_empty_input_yields_no_groups(self, emp):
        result = emp.execute(
            "retrieve (e.dept, n = count(e.name by e.dept)) "
            'where e.dept = "music"'
        )
        assert result.rows == []

    def test_plain_targets_must_match_by_list(self, emp):
        with pytest.raises(TQuelSemanticError):
            emp.execute("retrieve (e.name, n = count(e.name by e.dept))")

    def test_mismatched_by_lists_rejected(self, emp):
        with pytest.raises(TQuelSemanticError):
            emp.execute(
                "retrieve (e.dept, a = sum(e.sal by e.dept), "
                "b = sum(e.sal by e.name))"
            )

    def test_by_list_roundtrips_through_unparser(self, emp):
        from repro.tquel.parser import parse_statement
        from repro.tquel.unparse import unparse

        stmt = parse_statement(
            "retrieve (e.dept, total = sum(e.sal by e.dept))"
        )
        assert parse_statement(unparse(stmt)) == stmt


class TestAggregatesOverJoins:
    def test_count_of_join(self, emp):
        emp.execute("create dept (dname = c8)")
        emp.execute('append to dept (dname = "cs")')
        emp.execute("range of d is dept")
        result = emp.execute(
            "retrieve (n = count(e.name)) where e.dept = d.dname"
        )
        assert result.rows == [(2,)]


class TestAggregatesOnTemporalRelations:
    def test_count_versions_vs_current(self, db):
        db.execute("create persistent interval t (id = i4, v = i4)")
        db.execute("range of x is t")
        db.execute("append to t (id = 1, v = 10)")
        db.execute("replace x (v = 20) where x.id = 1")
        all_versions = db.execute(
            'retrieve (n = count(x.id)) as of "beginning" through "forever"'
        )
        assert all_versions.rows == [(3,)]
        current = db.execute(
            'retrieve (n = count(x.id)) when x overlap "now"'
        )
        assert current.rows == [(1,)]

    def test_aggregate_result_has_no_valid_columns(self, db):
        db.execute("create interval t (id = i4)")
        db.execute("append to t (id = 1)")
        db.execute("range of x is t")
        result = db.execute("retrieve (n = count(x.id))")
        assert result.columns == ["n"]


class TestResultHelpers:
    def test_scalar(self, emp):
        assert emp.execute("retrieve (n = count(e.name))").scalar() == 4

    def test_scalar_rejects_multirow(self, emp):
        with pytest.raises(ValueError):
            emp.execute("retrieve (e.name)").scalar()

    def test_to_dicts(self, emp):
        rows = emp.execute(
            'retrieve (e.name, e.sal) where e.dept = "ee"'
        ).to_dicts()
        assert {"name": "wong", "sal": 35000} in rows

    def test_first(self, emp):
        assert emp.execute("retrieve (e.name) where e.sal > 39000").first() \
            == ("snodgrass",)
        assert emp.execute("retrieve (e.name) where e.sal > 99000").first() \
            is None


class TestAggregateErrors:
    def test_aggregate_in_where_rejected(self, emp):
        with pytest.raises(TQuelSemanticError):
            emp.execute("retrieve (e.name) where e.sal > avg(e.sal)")

    def test_mixed_targets_rejected(self, emp):
        with pytest.raises(TQuelSemanticError):
            emp.execute("retrieve (e.dept, n = count(e.name))")

    def test_sum_of_string_rejected(self, emp):
        with pytest.raises(TQuelSemanticError):
            emp.execute("retrieve (s = sum(e.name))")

    def test_aggregate_in_replace_rejected(self, emp):
        with pytest.raises(TQuelSemanticError):
            emp.execute("replace e (sal = sum(e.sal))")

    def test_valid_clause_with_aggregates_rejected(self, db):
        db.execute("create interval t (id = i4)")
        db.execute("range of x is t")
        with pytest.raises(TQuelSemanticError):
            db.execute(
                'retrieve (n = count(x.id)) valid from "1980" to "1981"'
            )

    def test_wrapped_aggregate_rejected(self, emp):
        with pytest.raises(TQuelSemanticError):
            emp.execute("retrieve (k = sum(e.sal) + 1)")
