"""One API, three transports.

``repro.connect`` returns a local Session (bare name), a durable local
Session (``file:DIR``) or a RemoteSession (``tcp://``); all three must
present the same Session/PreparedStatement/Result surface with the same
semantics.  Every test here runs against all three.
"""

from __future__ import annotations

import pytest

import repro
from repro.engine.database import TemporalDatabase
from repro.errors import (
    ExecutionError,
    TQuelSemanticError,
    TQuelSyntaxError,
    UnknownRelationError,
)
from repro.server import ServerThread
from repro.storage.iostats import IODelta

BACKINGS = ["local", "file", "remote"]


@pytest.fixture(params=BACKINGS)
def backing(request):
    return request.param


@pytest.fixture
def make_session(backing, tmp_path):
    """A factory of sessions over one shared backing store.

    The first and every later call see the same database, so tests can
    open sibling sessions (writer vs pinned reader) on any transport.
    """
    sessions = []
    server = None
    database = None

    def factory():
        nonlocal server, database
        if backing == "local":
            if database is None:
                database = TemporalDatabase("conformance")
            session = repro.connect(database=database)
        elif backing == "file":
            if database is None:
                session = repro.connect(f"file:{tmp_path / 'conformance'}")
                database = session.db
            else:
                session = repro.connect(database=database)
        else:
            if server is None:
                database = TemporalDatabase("conformance")
                server = ServerThread(
                    database,
                    telemetry_dir=str(tmp_path / "server-telemetry"),
                )
            session = repro.connect(server.url)
        sessions.append(session)
        return session

    yield factory
    for session in sessions:
        session.close()
    if server is not None:
        server.stop()


def _load(session):
    session.execute("create persistent emp (name = c20, sal = i4)")
    session.execute('append to emp (name = "ahn", sal = 30000)')
    session.execute('append to emp (name = "snodgrass", sal = 35000)')
    session.execute("range of e is emp")


def test_execute_returns_result_rows(make_session):
    session = make_session()
    _load(session)
    result = session.execute("retrieve (e.name, e.sal)")
    assert result.kind == "retrieve"
    assert sorted(row[:2] for row in result.rows) == [
        ("ahn", 30000), ("snodgrass", 35000)
    ]
    assert result.columns[:2] == ["name", "sal"]
    assert result.input_pages >= 1
    # The Result sequence surface survives every transport.
    assert len(result) == 2
    assert result.first()[:2] == ("ahn", 30000)
    assert list(result) == result.rows


def test_multi_statement_script_returns_list(make_session):
    session = make_session()
    results = session.execute(
        "create emp (name = c20, sal = i4)\n"
        'append to emp (name = "ahn", sal = 1)\n'
        "range of e is emp\n"
        "retrieve (e.name)"
    )
    assert isinstance(results, list)
    assert [r.kind for r in results] == [
        "create", "append", "range", "retrieve"
    ]
    assert results[-1].rows == [("ahn",)]


def test_prepare_execute_with_params(make_session):
    session = make_session()
    _load(session)
    probe = session.prepare("retrieve (e.sal) where e.name = $name")
    assert [r[0] for r in probe.execute(params={"name": "ahn"})] == [30000]
    many = probe.executemany(
        [{"name": "ahn"}, {"name": "snodgrass"}, {"name": "nobody"}]
    )
    assert [len(result) for result in many] == [1, 1, 0]


def test_empty_result_shape(make_session):
    session = make_session()
    _load(session)
    result = session.execute('retrieve (e.name) where e.sal > 99999')
    assert result.rows == []
    assert result.columns == ["name"]
    assert len(result) == 0


def test_explain_narrates_a_plan(make_session):
    session = make_session()
    _load(session)
    text = session.explain("retrieve (e.name) where e.sal > 0")
    assert isinstance(text, str) and text


def test_relation_names_and_rows(make_session):
    session = make_session()
    _load(session)
    assert session.relation_names() == ["emp"]
    rows = session.relation_rows("emp")
    assert len(rows) == 2
    assert all(isinstance(row, tuple) for row in rows)


def test_error_classes_survive_the_transport(make_session):
    session = make_session()
    _load(session)
    with pytest.raises(TQuelSyntaxError):
        session.execute("retrieve retrieve retrieve")
    with pytest.raises(TQuelSemanticError):
        session.execute("retrieve (zzz.name)")
    with pytest.raises(UnknownRelationError):
        session.relation_rows("nope")
    # The session survives the errors.
    assert len(session.execute("retrieve (e.name)")) == 2


def test_pinned_snapshot_ignores_later_writes(make_session):
    reader = make_session()
    _load(reader)
    writer = make_session()
    writer.execute("range of e is emp")
    watermark = reader.pin()
    assert watermark is not None
    assert reader.pinned == watermark
    writer.execute('append to emp (name = "late", sal = 1)')
    assert len(reader.execute("retrieve (e.name)")) == 2
    reader.unpin()
    assert reader.pinned is None
    assert len(reader.execute("retrieve (e.name)")) == 3


def test_snapshot_context_manager(make_session):
    session = make_session()
    _load(session)
    with session.snapshot():
        assert session.pinned is not None
        assert len(session.execute("retrieve (e.name)")) == 2
        with pytest.raises(ExecutionError):
            session.execute('append to emp (name = "x", sal = 1)')
    assert session.pinned is None
    session.execute('append to emp (name = "x", sal = 1)')
    assert len(session.execute("retrieve (e.name)")) == 3


def test_io_totals_attribute_to_this_session(make_session):
    session = make_session()
    _load(session)
    before = session.io_totals()
    assert isinstance(before, IODelta)
    session.execute("retrieve (e.name)")
    after = session.io_totals()
    assert after.input_pages > before.input_pages
    assert "emp" in after.by_relation


def test_commit_checkpoints_or_refuses(make_session, backing, tmp_path):
    session = make_session()
    _load(session)
    if backing == "file":
        group = session.commit()
        assert group >= 1
        restored = TemporalDatabase.load(tmp_path / "conformance")
        assert restored.relation("emp").row_count == 2
    else:
        # In-memory databases have no checkpoint directory.
        with pytest.raises(ExecutionError):
            session.commit()


def test_close_semantics(make_session):
    session = make_session()
    _load(session)
    assert not session.closed
    session.close()
    assert session.closed
    session.close()  # idempotent
    with pytest.raises(ExecutionError):
        session.execute("retrieve (e.name)")


def test_context_manager_closes(make_session):
    with make_session() as session:
        _load(session)
    assert session.closed
    with pytest.raises(ExecutionError):
        session.__enter__()


def test_telemetry_export_writes_artifacts(make_session, tmp_path):
    import os

    session = make_session()
    _load(session)
    artifacts = session.export_telemetry(tmp_path / "telemetry")
    assert artifacts
    for path in artifacts.values():
        assert os.path.exists(path)
