"""Statement-level atomicity: a failure mid-update rolls back the
primary store, the history store, and every secondary index."""

from __future__ import annotations

import pytest

from repro import Clock, FaultInjected, TemporalDatabase, check_database, fault
from repro.errors import RecordCodecError
from tests.conftest import MAR1_1980, make_db


@pytest.fixture(autouse=True)
def clean_failpoints():
    fault.reset()
    yield
    fault.reset()


def loaded_db(structure="hash", two_level=False, atomic=True):
    if atomic:
        db = make_db()
    else:
        db = TemporalDatabase(
            "test",
            clock=Clock(start=MAR1_1980, tick=60),
            atomic_statements=False,
        )
    db.execute("create persistent interval r (id = i4, v = i4, pad = c96)")
    if two_level:
        db.execute(
            "modify r to twolevel on id where fillfactor = 100, "
            "primary = hash"
        )
    else:
        db.execute(f"modify r to {structure} on id where fillfactor = 100")
    db.execute("index on r is rv (v) where levels = 2")
    db.execute("range of x is r")
    for i in range(1, 9):
        db.execute(f'append to r (id = {i}, v = {i * 10}, pad = "p")')
    return db


def current_rows(db):
    return sorted(
        db.execute('retrieve (x.id, x.v) when x overlap "now"').rows
    )


def all_version_count(db):
    return db.relation("r").row_count


class TestRollback:
    @pytest.mark.parametrize("two_level", [False, True])
    def test_failed_replace_leaves_no_trace(self, two_level):
        db = loaded_db(two_level=two_level)
        before_rows = current_rows(db)
        before_versions = all_version_count(db)
        before_pages = db.relation("r").page_count
        # A temporal replace inserts two versions per target; firing on
        # the second target's insert leaves the statement half-done.
        fault.arm("mutate.insert_version", at_hit=3)
        with pytest.raises(FaultInjected):
            db.execute("replace x (v = x.v + 1) where x.id < 5")
        fault.reset()
        assert current_rows(db) == before_rows
        assert all_version_count(db) == before_versions
        assert db.relation("r").page_count == before_pages
        assert check_database(db) == []

    def test_failed_append_rolls_back_index(self):
        db = loaded_db()
        fault.arm("mutate.insert_version")
        with pytest.raises(FaultInjected):
            db.execute('append to r (id = 99, v = 990, pad = "q")')
        fault.reset()
        # Neither the relation nor the index knows the aborted value.
        assert current_rows(db) == current_rows(loaded_db())
        assert db.execute(
            "retrieve (x.id) where x.v = 990"
        ).rows == []
        assert check_database(db) == []

    def test_statement_succeeds_after_rollback(self):
        db = loaded_db()
        fault.arm("mutate.insert_version", at_hit=2)
        with pytest.raises(FaultInjected):
            db.execute("replace x (v = 0) where x.id = 3")
        fault.reset()
        db.execute("replace x (v = 0) where x.id = 3")
        rows = {row[0]: row[1] for row in current_rows(db)}
        assert rows[3] == 0
        assert check_database(db) == []

    def test_real_errors_also_roll_back(self):
        # Atomicity is not failpoint-specific: any mid-statement failure
        # rolls back (here, a string too wide for its c96 attribute
        # rejected after earlier rows of the statement already landed).
        db = loaded_db()
        before_versions = all_version_count(db)
        with pytest.raises(RecordCodecError):
            db.copy_in(
                "r",
                [(50, 500, "ok"), (51, 510, "x" * 200)],
            )
        assert all_version_count(db) == before_versions
        assert check_database(db) == []

    def test_delete_rollback(self):
        db = loaded_db(two_level=True)
        before_rows = current_rows(db)
        before_versions = all_version_count(db)
        fault.arm("mutate.insert_version")
        with pytest.raises(FaultInjected):
            db.execute("delete x where x.id = 5")
        fault.reset()
        assert current_rows(db) == before_rows
        assert all_version_count(db) == before_versions
        assert check_database(db) == []


class TestAtomicityFlag:
    def test_disabled_scope_leaves_partial_state(self):
        # With atomic_statements=False the same fault strands the
        # half-written statement -- demonstrating the default scope is
        # what provides atomicity.
        db = loaded_db(atomic=False)
        before_versions = all_version_count(db)
        fault.arm("mutate.insert_version", at_hit=3)
        with pytest.raises(FaultInjected):
            db.execute("replace x (v = x.v + 1) where x.id < 5")
        fault.reset()
        assert all_version_count(db) != before_versions

    def test_no_undo_scope_when_disabled(self):
        db = loaded_db(atomic=False)
        assert db.pool.undo is None
        db.execute('append to r (id = 90, v = 900, pad = "p")')
        assert db.pool.undo is None
