"""Integration tests for the benchmark harness at reduced scale."""

import pytest

from repro.bench.costmodel import expected_growth_rate, fit, prediction_errors
from repro.bench.enhancements import run_enhancements
from repro.bench.nonuniform import run_nonuniform
from repro.bench.queries import ALL_QUERY_IDS, benchmark_queries
from repro.bench.runner import BenchmarkRun, measure_suite, run_suite
from repro.bench.workload import (
    WorkloadConfig,
    all_configs,
    build_database,
)
from repro.catalog.schema import DatabaseType

SMALL = dict(tuples=64, seed=7)


def config(db_type=DatabaseType.TEMPORAL, loading=100, **kw):
    return WorkloadConfig(db_type=db_type, loading=loading, **SMALL | kw)


class TestWorkload:
    def test_eight_configurations(self):
        configs = all_configs(tuples=64)
        assert len(configs) == 8
        assert len({c.label for c in configs}) == 8

    def test_build_loads_both_relations(self):
        bench = build_database(config())
        assert bench.h.row_count == 64
        assert bench.i.row_count == 64

    def test_probe_amounts_present(self):
        bench = build_database(config())
        assert 69400 in bench.h_amounts.values()
        assert 73700 in bench.i_amounts.values()

    def test_amounts_unique_and_disjoint_from_ids(self):
        bench = build_database(config())
        values = list(bench.h_amounts.values())
        assert len(set(values)) == len(values)
        assert all(v > 1024 for v in values)

    def test_asof_qualifiers_pinned(self):
        from repro.temporal.parse import parse_temporal

        bench = build_database(config())
        threshold = parse_temporal("4:00 1/1/80")
        early = [
            row
            for row in bench.db.copy_out(bench.h_name)
            if row[4] < threshold
        ]
        assert len(early) == bench.config.asof_qualifiers

    def test_deterministic_given_seed(self):
        a = build_database(config())
        b = build_database(config())
        assert a.db.copy_out(a.h_name) == b.db.copy_out(b.h_name)

    def test_different_seeds_differ(self):
        a = build_database(config())
        b = build_database(config(seed=8))
        assert a.db.copy_out(a.h_name) != b.db.copy_out(b.h_name)

    def test_static_rows_are_user_width(self):
        bench = build_database(config(db_type=DatabaseType.STATIC))
        assert len(bench.db.copy_out(bench.h_name)[0]) == 4


class TestQueries:
    def test_temporal_has_all_twelve(self):
        texts = benchmark_queries(config())
        assert all(texts[q] is not None for q in ALL_QUERY_IDS)

    def test_static_drops_temporal_queries(self):
        texts = benchmark_queries(config(db_type=DatabaseType.STATIC))
        for query_id in ("Q03", "Q04", "Q11", "Q12"):
            assert texts[query_id] is None
        assert "when" not in texts["Q05"]

    def test_rollback_substitutes_as_of(self):
        texts = benchmark_queries(config(db_type=DatabaseType.ROLLBACK))
        assert 'as of "now"' in texts["Q05"]
        assert "when" not in texts["Q05"]

    def test_historical_keeps_when(self):
        texts = benchmark_queries(config(db_type=DatabaseType.HISTORICAL))
        assert 'overlap "now"' in texts["Q05"]
        assert texts["Q03"] is None

    def test_two_level_variant_anchors_both_join_vars(self):
        texts = benchmark_queries(config(), two_level=True)
        assert texts["Q09"].count('overlap "now"') == 2


class TestRunner:
    @pytest.fixture(scope="class")
    def sweep(self):
        return BenchmarkRun(config(), max_update_count=3).run()

    def test_sizes_recorded_per_update_count(self, sweep):
        assert sorted(sweep.sizes) == [0, 1, 2, 3]

    def test_costs_increase_with_update_count(self, sweep):
        for query_id in ("Q01", "Q03", "Q09"):
            series = sweep.input_series(query_id)
            assert series == sorted(series)
            assert series[-1] > series[0]

    def test_static_runs_only_uc0(self):
        result = BenchmarkRun(
            config(db_type=DatabaseType.STATIC), max_update_count=3
        ).run()
        assert sorted(result.sizes) == [0]

    def test_measure_suite_skips_inapplicable(self):
        bench = build_database(config(db_type=DatabaseType.ROLLBACK))
        suite = measure_suite(bench)
        assert suite["Q11"] is None
        assert suite["Q01"] is not None

    def test_run_suite_cached(self):
        first = run_suite(tuples=64, max_update_count=1, seed=3)
        second = run_suite(tuples=64, max_update_count=1, seed=3)
        assert first is second

    def test_output_cost_constant_across_update_counts(self, sweep):
        outputs = {
            sweep.costs["Q09"][uc].output_pages for uc in sweep.costs["Q09"]
        }
        assert len(outputs) == 1


class TestCostModel:
    @pytest.fixture(scope="class")
    def sweep(self):
        return BenchmarkRun(config(), max_update_count=4).run()

    def test_growth_rate_near_two(self, sweep):
        model = fit(sweep, "Q03")
        assert model.growth_rate == pytest.approx(2.0, rel=0.15)

    def test_expected_growth_rates(self):
        assert expected_growth_rate(DatabaseType.STATIC, 100) is None
        assert expected_growth_rate(DatabaseType.ROLLBACK, 100) == 1.0
        assert expected_growth_rate(DatabaseType.ROLLBACK, 50) == 0.5
        assert expected_growth_rate(DatabaseType.TEMPORAL, 100) == 2.0
        assert expected_growth_rate(DatabaseType.TEMPORAL, 50) == 1.0

    def test_prediction_formula_linear(self, sweep):
        # Interior points predicted within a few percent (Section 5.3).
        for update_count, measured, predicted in prediction_errors(
            sweep, "Q04"
        ):
            assert predicted == pytest.approx(measured, rel=0.05)

    def test_fixed_cost_identified_for_isam(self, sweep):
        model = fit(sweep, "Q02")
        assert model.fixed == 1  # one directory level


class TestEnhancements:
    @pytest.fixture(scope="class")
    def enh(self):
        return run_enhancements(tuples=64, update_count=3, seed=7)

    def test_all_variants_measured(self, enh):
        from repro.bench.enhancements import VARIANTS

        assert set(enh.variants) == set(VARIANTS)

    def test_twolevel_restores_uc0_cost_for_static_queries(self, enh):
        for query_id in ("Q05", "Q06", "Q07", "Q08", "Q09", "Q10"):
            assert (
                enh.variants["twolevel_simple"][query_id]
                == enh.baseline_uc0[query_id]
            )

    def test_clustering_improves_version_scan(self, enh):
        assert (
            enh.variants["twolevel_clustered"]["Q01"]
            < enh.variants["twolevel_simple"]["Q01"]
        )

    def test_hash_index_beats_heap_index(self, enh):
        assert (
            enh.variants["index_1level_hash"]["Q07"]
            < enh.variants["index_1level_heap"]["Q07"]
        )

    def test_two_level_index_beats_one_level(self, enh):
        assert (
            enh.variants["index_2level_hash"]["Q07"]
            <= enh.variants["index_1level_hash"]["Q07"]
        )

    def test_best_case_is_two_pages(self, enh):
        # 2-level hash index: 1 index page + 1 data page (Figure 10).
        assert enh.variants["index_2level_hash"]["Q07"] == 2

    def test_conventional_degrades(self, enh):
        assert (
            enh.variants["conventional"]["Q07"]
            > enh.baseline_uc0["Q07"] * 3
        )


class TestSerialization:
    def test_result_roundtrips_through_json(self):
        import json

        from repro.bench.runner import result_from_dict

        original = BenchmarkRun(config(), max_update_count=2).run()
        encoded = json.dumps(original.to_dict())
        restored = result_from_dict(json.loads(encoded))
        assert restored.config == original.config
        assert restored.sizes == original.sizes
        assert restored.costs == original.costs

    def test_restored_result_supports_analysis(self):
        from repro.bench.costmodel import fit
        from repro.bench.runner import result_from_dict

        original = BenchmarkRun(config(), max_update_count=2).run()
        restored = result_from_dict(original.to_dict())
        assert fit(restored, "Q01") == fit(original, "Q01")

    def test_validator_refuses_reduced_scale(self):
        from repro.bench.validate import validate

        results = run_suite(tuples=64, max_update_count=2, seed=3)
        with pytest.raises(ValueError):
            validate(results)


class TestNonUniform:
    def test_growth_rate_independent_of_distribution(self):
        result = run_nonuniform(
            tuples=64, max_average_update_count=2, seed=7, updated_tuple=28
        )
        for _, weighted, uniform, *__ in result.rows:
            assert weighted == pytest.approx(uniform, rel=0.15)

    def test_chain_cost_explodes_clean_cost_flat(self):
        result = run_nonuniform(
            tuples=64, max_average_update_count=2, seed=7, updated_tuple=28
        )
        (_, __, ___, chain1, clean1, ____), (
            _____, ______, _______, chain2, clean2, ________,
        ) = result.rows
        assert clean1 == clean2 == 1
        assert chain2 > chain1 > 10
