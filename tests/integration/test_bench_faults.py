"""Benchmark pool hardening: a crashed worker is retried, not fatal."""

from __future__ import annotations

import pytest

from repro import fault
from repro.bench.runner import BenchWorkerError, _sweep_worker, run_suite
from repro.bench.workload import WorkloadConfig
from repro.catalog.schema import DatabaseType


@pytest.fixture(autouse=True)
def clean_failpoints():
    fault.reset()
    yield
    fault.reset()


def _config():
    return WorkloadConfig(
        db_type=DatabaseType.STATIC, loading=100, tuples=64, seed=3
    )


class TestSweepWorker:
    def test_worker_returns_ok_tuple(self):
        status, data = _sweep_worker((_config(), 0))
        assert status == "ok"
        assert data["config"]["db_type"] == "static"

    def test_worker_crash_travels_back_as_data(self):
        fault.arm("bench.worker")
        status, detail = _sweep_worker((_config(), 0))
        assert status == "error"
        assert "FaultInjected" in detail
        assert "bench.worker" in detail


class TestPoolRetry:
    def test_crashed_workers_retry_and_match_serial_results(self):
        serial = run_suite(
            tuples=64, max_update_count=1, seed=3, jobs=1, cache=False
        )
        # Armed before the pool forks, every worker inherits the fault:
        # each worker's first configuration fails and is retried inline.
        fault.arm("bench.worker", times=8)
        parallel = run_suite(
            tuples=64, max_update_count=1, seed=3, jobs=2, cache=False
        )
        fault.reset()
        assert set(parallel) == set(serial)
        for label, result in serial.items():
            assert parallel[label].to_dict() == result.to_dict(), label

    def test_double_failure_raises_structured_error(self, monkeypatch):
        # Force the inline retry itself to fail: the sweep must surface
        # which configuration died, with the worker traceback attached.
        from repro.bench import runner

        class ExplodingRun:
            def __init__(self, config, max_update_count=15):
                self.config = config

            def run(self, progress=None):
                raise RuntimeError("retry boom")

        monkeypatch.setattr(runner, "BenchmarkRun", ExplodingRun)
        fault.arm("bench.worker", times=8)
        with pytest.raises(BenchWorkerError) as excinfo:
            run_suite(
                tuples=64, max_update_count=1, seed=5, jobs=2, cache=False
            )
        fault.reset()
        assert excinfo.value.config is not None
        assert "after one retry" in str(excinfo.value)
        assert "retry boom" in str(excinfo.value)
