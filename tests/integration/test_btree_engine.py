"""Integration tests: B-tree relations through the full engine."""

import pytest

from repro.engine.integrity import check_relation
from repro.errors import CatalogError


@pytest.fixture
def btree_db(db):
    db.execute("create persistent interval r (id = i4, v = i4, pad = c100)")
    db.copy_in("r", [(i, 0, "p") for i in range(1, 33)])
    db.execute("modify r to btree on id where fillfactor = 100")
    db.execute("range of x is r")
    return db


class TestBTreeRelations:
    def test_keyed_lookup(self, btree_db):
        result = btree_db.execute("retrieve (x.v) where x.id = 20")
        assert [row[0] for row in result.rows] == [0]

    def test_evolution_and_version_scan(self, btree_db):
        for _ in range(4):
            btree_db.execute("replace x (v = x.v + 1)")
        result = btree_db.execute("retrieve (x.id, x.v) where x.id = 20")
        assert len(result.rows) == 5  # current + 4 closing versions
        current = btree_db.execute(
            'retrieve (x.v) where x.id = 20 when x overlap "now"'
        )
        assert [row[0] for row in current.rows] == [4]

    def test_keyed_access_degrades_gently(self, btree_db):
        base = btree_db.execute(
            "retrieve (x.v) where x.id = 20"
        ).input_pages
        for _ in range(6):
            btree_db.execute("replace x (v = x.v + 1)")
        grown = btree_db.execute(
            "retrieve (x.v) where x.id = 20"
        ).input_pages
        # It degrades (the paper's point)...
        assert grown > base
        # ...but stays below the hash file's 1 + 2n law (the clustering).
        assert grown < base + 2 * 6

    def test_integrity_after_evolution(self, btree_db):
        for _ in range(5):
            btree_db.execute("replace x (v = x.v + 1)")
        assert check_relation(btree_db.relation("r")) == []

    def test_scan_ordered_by_key(self, btree_db):
        btree_db.execute("replace x (v = 9) where x.id = 5")
        rows = btree_db.execute(
            'retrieve (x.id) as of "beginning" through "forever"'
        ).rows
        keys = [row[0] for row in rows]
        assert keys == sorted(keys)

    def test_checkpoint_roundtrip(self, btree_db, tmp_path):
        from repro import TemporalDatabase

        for _ in range(3):
            btree_db.execute("replace x (v = x.v + 1)")
        btree_db.save(tmp_path / "ck")
        restored = TemporalDatabase.load(tmp_path / "ck")
        query = "retrieve (x.id, x.v) where x.id = 20"
        assert sorted(restored.execute(query).rows) == sorted(
            btree_db.execute(query).rows
        )
        assert (
            restored.execute(query).input_pages
            == btree_db.execute(query).input_pages
        )

    def test_vacuum_on_btree(self, btree_db):
        from repro import format_chronon

        for _ in range(4):
            btree_db.execute("replace x (v = x.v + 1)")
        cutoff = format_chronon(btree_db.clock.now())
        removed = btree_db.execute(f'vacuum r before "{cutoff}"')
        assert removed.count == 32 * 4
        assert check_relation(btree_db.relation("r")) == []


class TestBTreeDeletion:
    def test_static_bulk_delete_keeps_order(self, db):
        db.execute("create s (id = i4, v = i4)")
        db.execute("modify s to btree on id")
        db.execute("range of x is s")
        for i in range(1, 41):
            db.execute(f"append to s (id = {i}, v = {i % 5})")
        result = db.execute("delete x where x.v = 2")
        assert result.count == 8
        keys = [row[0] for row in db.execute("retrieve (x.id)").rows]
        assert keys == sorted(keys)
        assert len(keys) == 32
        # Keyed lookups still work on survivors and miss the deleted.
        assert db.execute("retrieve (x.v) where x.id = 3").rows == [(3,)]
        assert db.execute("retrieve (x.v) where x.id = 2").rows == []

    def test_historical_event_bulk_delete(self, db):
        # Multiple physical removals from the same page must not corrupt
        # the rids of targets still pending (regression: per-target
        # deletion reshuffled slots mid-statement).
        db.execute("create event m (probe = c8, value = i4)")
        db.execute("range of e is m")
        for i in range(12):
            db.execute(f'append to m (probe = "p{i}", value = {i % 3})')
        result = db.execute("delete e where e.value = 0")
        assert result.count == 4
        survivors = db.execute("retrieve (e.probe, e.value)").rows
        assert len(survivors) == 8
        assert all(row[1] != 0 for row in survivors)


class TestBTreeRestrictions:
    def test_secondary_index_rejected(self, btree_db):
        with pytest.raises(CatalogError):
            btree_db.execute("index on r is v_idx (v)")

    def test_modify_to_btree_with_index_rejected(self, db):
        db.execute("create persistent interval r (id = i4, v = i4)")
        db.execute("modify r to hash on id")
        db.execute("index on r is v_idx (v)")
        with pytest.raises(CatalogError):
            db.execute("modify r to btree on id")

    def test_zone_map_rejected(self, btree_db):
        with pytest.raises(CatalogError):
            btree_db.execute(
                "modify r to btree on id where zonemap = 1"
            )

    def test_modify_drops_zone_map_quietly(self, db):
        db.execute("create persistent interval r (id = i4)")
        db.execute("modify r to hash on id where zonemap = 1")
        assert db.relation("r").zone_map is not None
        db.execute("modify r to btree on id")
        assert db.relation("r").zone_map is None
