"""Catalog-statistics invariants for the cost-based optimizer.

The planner prices plans from catalog statistics -- tuple counts, update
counts, the stats epoch.  Two invariants keep those statistics honest:

* they survive a checkpoint ``save`` -> ``load`` round trip, so a
  restored database plans with the same costs it had before the crash;
* bumping the stats epoch (DDL, bulk load, vacuum) invalidates cached
  planner decisions, so no stale plan outlives the statistics that
  justified it.
"""

from __future__ import annotations

import pytest

from repro import FOREVER, Clock, TemporalDatabase, parse_temporal

MAR1_1980 = parse_temporal("3/1/80")
JAN15_1980 = parse_temporal("1/15/80")


def _rows(first, last):
    return [
        (i, i % 8, "x", JAN15_1980 + 3600 * i, FOREVER,
         JAN15_1980 + 3600 * i, FOREVER)
        for i in range(first, last + 1)
    ]


@pytest.fixture
def db():
    db = TemporalDatabase(
        "catstats", clock=Clock(start=MAR1_1980, tick=60), optimizer=True
    )
    db.execute(
        "create persistent interval emp (id = i4, dept = i4, pad = c40)"
    )
    db.execute("modify emp to hash on id")
    db.copy_in("emp", _rows(1, 48))
    db.execute("range of e is emp")
    return db


def test_stats_survive_checkpoint_round_trip(db, tmp_path):
    for i in (1, 2, 3):
        db.execute(f"replace e (dept = 9) where e.id = {i}")
    before = db.relation_stats("emp")
    assert before["updates"] >= 3
    assert before["stats_epoch"] == db.stats_epoch

    db.save(tmp_path / "ckpt")
    restored = TemporalDatabase.load(tmp_path / "ckpt")
    assert restored.stats_epoch == db.stats_epoch
    restored.execute("range of e is emp")  # bumps the epoch (DDL)
    after = restored.relation_stats("emp")

    assert after["updates"] == before["updates"]
    assert after["rows"] == before["rows"]
    assert after["pages"] == before["pages"]
    # The restored database answers with the same rows and pages, so
    # the planner sees the same world.
    db.pool.flush_all()
    want = db.execute("retrieve (e.pad) where e.id = 7")
    restored.pool.flush_all()
    got = restored.execute("retrieve (e.pad) where e.id = 7")
    assert got.rows == want.rows
    assert got.io.input_pages == want.io.input_pages


def test_bulk_load_bumps_epoch_and_invalidates_plans(db):
    text = "retrieve (e.pad) where e.id = 7"
    db.execute(text)
    epoch = db.stats_epoch
    assert db.planner.cached_decisions >= 1

    db.copy_in("emp", _rows(49, 96))

    assert db.stats_epoch > epoch
    # Cached decisions keyed on the old epoch are unreachable: the next
    # execution re-plans (a cache miss, not a stale hit).
    misses = db.metrics.counter_value("planner.cache_misses")
    db.execute(text)
    assert db.metrics.counter_value("planner.cache_misses") == misses + 1


def test_ddl_and_vacuum_bump_stats_epoch(db):
    epoch = db.stats_epoch
    db.execute("index on emp is dix (dept)")
    assert db.stats_epoch > epoch

    epoch = db.stats_epoch
    for i in (10, 11):
        db.execute(f"delete e where e.id = {i}")
    db.vacuum_relation("emp", db.clock.now())
    assert db.stats_epoch > epoch


def test_update_counts_feed_relation_stats(db):
    before = db.relation_stats("emp")["updates"]
    db.execute("replace e (dept = 5) where e.id = 20")
    assert db.relation_stats("emp")["updates"] == before + 1
