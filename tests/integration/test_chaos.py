"""Chaos matrix: the mixed workload under every failpoint vs the oracle.

Each cell of :func:`repro.server.chaos.default_matrix` runs a seeded
``repro.sim`` workload through a real server/client pair with one
failpoint armed and retries enabled, then differentially checks every
statement result and the final relation state against the pure-Python
oracle.  A cell passes only when no committed statement was lost or
double-applied -- the end-to-end at-most-once guarantee.
"""

from __future__ import annotations

import pytest

from repro import fault
from repro.server import chaos


@pytest.fixture(autouse=True)
def clean_faults():
    fault.reset()
    yield
    fault.reset()


def _cell_id(cell):
    return f"{cell.failpoint}-seed{cell.seed}-hit{cell.at_hit}"


MATRIX = chaos.default_matrix(seeds=(11,))
NET_CELLS = [c for c in MATRIX if c.failpoint in chaos.NET_POINTS]
EXEC_CELLS = [c for c in MATRIX if c.failpoint in chaos.EXEC_POINTS]


@pytest.mark.parametrize("cell", NET_CELLS, ids=_cell_id)
def test_net_chaos_cell_matches_oracle(cell):
    report = chaos.run_net_cell(cell, ops=16)
    assert report.ok, report.detail
    assert report.fires > 0, "failpoint never fired: cell tested nothing"
    assert report.statements_run > 0


@pytest.mark.parametrize("cell", EXEC_CELLS, ids=_cell_id)
def test_exec_chaos_cell_degrades_to_serial(cell):
    report = chaos.run_exec_cell(cell)
    assert report.ok, report.detail
    assert report.fires > 0, "failpoint never fired: cell tested nothing"


def test_chaos_cell_is_deterministic():
    cell = chaos.ChaosCell("net.frame_drop", seed=11, at_hit=2)
    first = chaos.run_cell(cell, ops=16)
    fault.reset()
    second = chaos.run_cell(cell, ops=16)
    assert first.ok and second.ok
    assert first.statements_run == second.statements_run
    assert first.fires == second.fires
    assert first.dedup_hits == second.dedup_hits
