"""Tests for coalescing (retrieve coalesced) and the period-merge utility."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import format_chronon, parse_temporal
from repro.errors import TQuelSemanticError
from repro.temporal.coalesce import coalesce_periods, coalesce_rows


class TestCoalescePeriods:
    def test_adjacent_merge(self):
        assert coalesce_periods([(1, 5), (5, 9)]) == [(1, 9)]

    def test_overlapping_merge(self):
        assert coalesce_periods([(1, 6), (4, 9)]) == [(1, 9)]

    def test_disjoint_stay_apart(self):
        assert coalesce_periods([(1, 3), (5, 9)]) == [(1, 3), (5, 9)]

    def test_unsorted_input(self):
        assert coalesce_periods([(5, 9), (1, 5)]) == [(1, 9)]

    def test_contained_period_absorbed(self):
        assert coalesce_periods([(1, 10), (3, 4)]) == [(1, 10)]

    def test_empty(self):
        assert coalesce_periods([]) == []

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 100), st.integers(1, 30)
            ).map(lambda p: (p[0], p[0] + p[1])),
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_merged_cover_same_chronons(self, periods):
        merged = coalesce_periods(periods)
        covered = {
            t for start, stop in periods for t in range(start, stop)
        }
        merged_covered = {
            t for start, stop in merged for t in range(start, stop)
        }
        assert merged_covered == covered
        # Output is disjoint and non-adjacent.
        for (_, stop), (start, __) in zip(merged, merged[1:]):
            assert stop < start


class TestCoalesceRows:
    def test_groups_by_values(self):
        rows = [
            ("a", 1, 0, 5),
            ("a", 1, 5, 9),
            ("b", 1, 0, 9),
            ("a", 2, 9, 12),
        ]
        assert coalesce_rows(rows, 2) == [
            ("a", 1, 0, 9),
            ("a", 2, 9, 12),
            ("b", 1, 0, 9),
        ]


class TestRetrieveCoalesced:
    @pytest.fixture
    def sal(self, db):
        db.execute("create interval sal (name = c12, monthly = i4)")
        db.execute("range of s is sal")
        # Three bounded stints at the same salary, back to back, then a
        # raise: the first three coalesce.
        for start, stop in (
            ("1/1/82", "4/1/82"), ("4/1/82", "7/1/82"), ("7/1/82", "10/1/82"),
        ):
            db.execute(
                'append to sal (name = "jane", monthly = 2600) '
                f'valid from "{start}" to "{stop}"'
            )
        db.execute(
            'append to sal (name = "jane", monthly = 3000) '
            'valid from "10/1/82" to "forever"'
        )
        return db

    def test_coalesces_value_equivalent_stints(self, sal):
        plain = sal.execute('retrieve (s.monthly) where s.name = "jane"')
        merged = sal.execute(
            'retrieve coalesced (s.monthly) where s.name = "jane"'
        )
        assert len(plain.rows) == 4
        assert len(merged.rows) == 2
        low = next(row for row in merged.rows if row[0] == 2600)
        assert format_chronon(low[1]).startswith("1982-01-01")
        assert format_chronon(low[2]).startswith("1982-10-01")

    def test_different_values_not_merged(self, sal):
        merged = sal.execute(
            'retrieve coalesced (s.name, s.monthly) where s.name = "jane"'
        )
        assert {row[1] for row in merged.rows} == {2600, 3000}

    def test_unique_then_coalesced(self, sal):
        result = sal.execute(
            'retrieve unique coalesced (s.name) where s.name = "jane"'
        )
        # One maximal period: jane employed continuously since Jan 82.
        assert len(result.rows) == 1
        assert result.rows[0][2] == parse_temporal("forever")

    def test_requires_interval_result(self, db):
        db.execute("create flat (x = i4)")
        db.execute("range of f is flat")
        with pytest.raises(TQuelSemanticError):
            db.execute("retrieve coalesced (f.x)")

    def test_roundtrips_through_unparser(self):
        from repro.tquel.parser import parse_statement
        from repro.tquel.unparse import unparse

        stmt = parse_statement("retrieve coalesced (s.monthly)")
        assert stmt.coalesced
        assert parse_statement(unparse(stmt)) == stmt
