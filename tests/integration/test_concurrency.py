"""Concurrent sessions on one engine: the acceptance workload.

Eight sessions on a shared TemporalDatabase run a mixed read/write
workload from real threads.  The invariants:

* zero isolation violations -- a pinned reader's view never changes,
  and every unpinned retrieve sees a prefix-consistent committed state
  (row counts only ever grow for append-only relations);
* per-session I/O attribution -- sessions that touch disjoint relations
  report disjoint ``by_relation`` maps;
* group commit coalesces concurrent ``commit()`` calls into fewer
  checkpoint saves than requests.
"""

from __future__ import annotations

import threading

import pytest

import repro
from repro import Clock, TemporalDatabase, parse_temporal
from repro.errors import ExecutionError

SESSIONS = 8
ROUNDS = 12


def _database():
    return TemporalDatabase(
        "mixed", clock=Clock(start=parse_temporal("1/1/80"), tick=60)
    )


def test_eight_session_mixed_workload(tmp_path):
    db = _database()
    setup = db.session()
    for n in range(SESSIONS):
        setup.execute(f"create persistent interval load{n} (v = i4)")
        setup.execute(f"append to load{n} (v = 0)")
    setup.close()

    barrier = threading.Barrier(SESSIONS)
    failures = []

    def worker(n):
        session = db.session()
        try:
            session.execute(f"range of x is load{n}")
            # Everyone also reads a neighbour's relation.
            other = (n + 1) % SESSIONS
            session.execute(f"range of y is load{other}")
            barrier.wait(timeout=30)
            last_seen = 0
            for round_no in range(ROUNDS):
                if n % 2 == 0:
                    # Writers append to their own relation, then verify
                    # their writes are visible to themselves.
                    session.execute(
                        f"append to load{n} (v = {round_no + 1})"
                    )
                rows = session.execute("retrieve (x.v)").rows
                count = len(rows)
                if count < last_seen:
                    failures.append(
                        f"session {n}: row count went backwards "
                        f"({last_seen} -> {count})"
                    )
                last_seen = count
                # A pinned snapshot must be frozen while neighbours write.
                with session.snapshot():
                    first = len(session.execute("retrieve (y.v)").rows)
                    second = len(session.execute("retrieve (y.v)").rows)
                    if first != second:
                        failures.append(
                            f"session {n}: pinned view moved "
                            f"({first} -> {second})"
                        )
            if n % 2 == 0 and last_seen != ROUNDS + 1:
                failures.append(
                    f"session {n}: lost own writes "
                    f"(saw {last_seen}, wrote {ROUNDS + 1})"
                )
            totals = session.io_totals()
            if totals.input_pages <= 0:
                failures.append(f"session {n}: no attributed I/O")
            artifacts = session.export_telemetry(
                tmp_path / f"telemetry-{n}"
            )
            if not artifacts:
                failures.append(f"session {n}: telemetry export empty")
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(f"session {n}: {type(exc).__name__}: {exc}")
        finally:
            session.close()

    threads = [
        threading.Thread(target=worker, args=(n,)) for n in range(SESSIONS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not failures, "\n".join(failures)
    assert not db._open_sessions

    # Final state: each writer relation holds its 13 committed rows.
    check = db.session()
    for n in range(0, SESSIONS, 2):
        check.execute(f"range of z is load{n}")
        assert len(check.execute("retrieve (z.v)").rows) == ROUNDS + 1
    check.close()


def test_io_attribution_is_disjoint_across_sessions():
    db = _database()
    setup = db.session()
    setup.execute("create persistent alpha (v = i4)")
    setup.execute("create persistent beta (v = i4)")
    for n in range(50):
        setup.execute(f"append to alpha (v = {n})")
        setup.execute(f"append to beta (v = {n})")
    setup.close()

    results = {}

    def reader(name, relation):
        session = db.session()
        session.execute(f"range of r is {relation}")
        for _ in range(5):
            session.execute("retrieve (r.v)")
        results[name] = session.io_totals().by_relation
        session.close()

    threads = [
        threading.Thread(target=reader, args=("a", "alpha")),
        threading.Thread(target=reader, args=("b", "beta")),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)

    user_relations_a = {
        rel for rel in results["a"] if not rel.startswith("relation")
    }
    user_relations_b = {
        rel for rel in results["b"] if not rel.startswith("relation")
    }
    assert "alpha" in user_relations_a and "beta" not in user_relations_a
    assert "beta" in user_relations_b and "alpha" not in user_relations_b


def test_group_commit_coalesces_concurrent_saves(tmp_path):
    db = _database()
    db.checkpoint_dir = str(tmp_path / "ckpt")
    setup = db.session()
    setup.execute("create persistent emp (v = i4)")
    setup.execute("append to emp (v = 1)")
    setup.close()

    generations = []
    barrier = threading.Barrier(SESSIONS)

    def committer():
        session = db.session()
        barrier.wait(timeout=30)
        generations.append(session.commit())
        session.close()

    threads = [
        threading.Thread(target=committer) for _ in range(SESSIONS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)

    assert len(generations) == SESSIONS
    # Coalescing: far fewer checkpoint saves than commit() calls, yet
    # every caller observed a generation at or past its request.
    assert max(generations) < SESSIONS
    restored = TemporalDatabase.load(tmp_path / "ckpt")
    assert restored.relation("emp").row_count == 1


def test_concurrent_update_statements_stamp_distinct_times():
    """Two statements must never share a transaction timestamp.

    Writers on *different* relations hold disjoint latches, so only the
    clock itself orders their stamps: each update statement allocates
    its timestamp atomically (clock.begin_statement) under its latches.
    A shared stamp would let one statement's ``transaction_start`` equal
    another's ``transaction_stop`` -- a zero-width, never-visible
    version that silently erases history.
    """
    db = _database()
    setup = db.session()
    for n in range(4):
        setup.execute(f"create persistent stamped{n} (v = i4)")
    setup.close()

    barrier = threading.Barrier(4)
    failures = []

    def writer(n):
        session = db.session()
        try:
            barrier.wait(timeout=30)
            for round_no in range(20):
                session.execute(f"append to stamped{n} (v = {round_no})")
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(f"writer {n}: {type(exc).__name__}: {exc}")
        finally:
            session.close()

    threads = [
        threading.Thread(target=writer, args=(n,)) for n in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not failures, "\n".join(failures)

    check = db.session()
    stamps = []
    for n in range(4):
        position = db.relation(f"stamped{n}").schema.position(
            "transaction_start"
        )
        stamps.extend(
            row[position] for row in check.relation_rows(f"stamped{n}")
        )
    check.close()
    assert len(stamps) == 4 * 20
    assert len(set(stamps)) == len(stamps), (
        "concurrent statements shared a transaction timestamp"
    )


def test_pinned_view_is_frozen_against_a_racing_writer():
    """pin() must never capture a watermark covering an in-flight write.

    The reader pins while a writer hammers the same relation; under a
    single pin, two retrieves must agree (a row appearing between them
    means the watermark covered a write that was still uncommitted at
    pin time), and successive snapshots must never lose rows.
    """
    db = _database()
    setup = db.session()
    setup.execute("create persistent hot (v = i4)")
    setup.execute("append to hot (v = 0)")
    setup.close()

    stop = threading.Event()
    failures = []

    def writer():
        session = db.session()
        session.execute("range of w is hot")
        try:
            n = 1
            while not stop.is_set() and n <= 300:
                session.execute(f"append to hot (v = {n})")
                n += 1
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(f"writer: {type(exc).__name__}: {exc}")
        finally:
            session.close()

    def reader():
        session = db.session()
        session.execute("range of r is hot")
        try:
            last = 0
            for _ in range(80):
                session.pin()
                first = len(session.execute("retrieve (r.v)").rows)
                second = len(session.execute("retrieve (r.v)").rows)
                session.unpin()
                if first != second:
                    failures.append(
                        f"pinned view moved ({first} -> {second})"
                    )
                if first < last:
                    failures.append(
                        f"snapshot went backwards ({last} -> {first})"
                    )
                last = first
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(f"reader: {type(exc).__name__}: {exc}")
        finally:
            stop.set()
            session.close()

    threads = [
        threading.Thread(target=writer),
        threading.Thread(target=reader),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not failures, "\n".join(failures)


def test_pinned_session_refuses_writes():
    db = _database()
    session = db.session()
    session.execute("create emp (v = i4)")
    session.execute("append to emp (v = 1)")
    session.pin()
    with pytest.raises(ExecutionError, match="pinned"):
        session.execute("append to emp (v = 2)")
    with pytest.raises(ExecutionError, match="pinned"):
        session.execute("create other (v = i4)")
    session.unpin()
    session.execute("append to emp (v = 2)")
    session.close()


def test_sessions_have_private_range_tables():
    db = _database()
    session_a = db.session()
    session_b = db.session()
    session_a.execute("create emp (v = i4)")
    session_a.execute("append to emp (v = 1)")
    session_a.execute("range of e is emp")
    # B never declared e; A's private range table must not leak.
    with pytest.raises(Exception):
        session_b.execute("retrieve (e.v)")
    session_b.execute("range of e is emp")
    assert len(session_b.execute("retrieve (e.v)").rows) == 1
    session_a.close()
    session_b.close()
