"""Integration tests: the copy statement (batch file I/O) and the monitor."""

import io

import pytest

from repro import FOREVER
from repro.monitor import Monitor


class TestCopyFiles:
    @pytest.fixture
    def loaded(self, db, tmp_path):
        db.execute("create persistent interval ev (id = i4, note = c12)")
        db.execute("range of e is ev")
        db.execute('append to ev (id = 1, note = "alpha")')
        db.execute('append to ev (id = 2, note = "beta")')
        return db, tmp_path

    def test_copy_out_then_in_roundtrips(self, loaded):
        db, tmp_path = loaded
        path = tmp_path / "ev.dat"
        out = db.execute(f'copy ev into "{path}"')
        assert out.count == 2
        db.execute("create persistent interval ev2 (id = i4, note = c12)")
        result = db.execute(f'copy ev2 from "{path}"')
        assert result.count == 2
        assert sorted(db.copy_out("ev2")) == sorted(db.copy_out("ev"))

    def test_copy_writes_human_readable_times(self, loaded):
        db, tmp_path = loaded
        path = tmp_path / "ev.dat"
        db.execute(f'copy ev into "{path}"')
        text = path.read_text()
        assert "forever" in text
        assert "1980-" in text

    def test_copy_in_user_width_rows(self, db, tmp_path):
        db.execute("create plain (id = i4, note = c12)")
        path = tmp_path / "p.dat"
        path.write_text("1\thello\n2\tworld\n")
        result = db.execute(f'copy plain from "{path}"')
        assert result.count == 2

    def test_copy_in_bad_arity(self, db, tmp_path):
        from repro.errors import ExecutionError

        db.execute("create plain (id = i4, note = c12)")
        path = tmp_path / "p.dat"
        path.write_text("1\thello\textra\tstuff\tbeyond\n")
        with pytest.raises(ExecutionError):
            db.execute(f'copy plain from "{path}"')

    def test_programmatic_copy_in_full_width(self, db):
        db.execute("create persistent interval t (id = i4)")
        db.copy_in("t", [(1, 100, FOREVER, 100, FOREVER)])
        db.execute("range of x is t")
        assert db.execute("retrieve (x.id)").rows[0][0] == 1


class TestMonitor:
    def make_monitor(self, db):
        out = io.StringIO()
        return Monitor(db=db, out=out), out

    def test_statement_and_result_table(self, db):
        monitor, out = self.make_monitor(db)
        monitor.handle("create emp (name = c8, sal = i4)")
        monitor.handle('append to emp (name = "ahn", sal = 5)')
        monitor.handle("range of e is emp")
        monitor.handle("retrieve (e.name, e.sal)")
        text = out.getvalue()
        assert "ahn" in text
        assert "1 tuple(s)" in text

    def test_error_reported_not_raised(self, db):
        monitor, out = self.make_monitor(db)
        monitor.handle("retrieve (zz.id)")
        assert "error:" in out.getvalue()

    def test_meta_list_relations(self, db):
        db.execute("create emp (name = c8)")
        monitor, out = self.make_monitor(db)
        monitor.handle("\\d")
        assert "emp" in out.getvalue()

    def test_meta_describe_relation(self, db):
        db.execute("create persistent interval emp (name = c8)")
        monitor, out = self.make_monitor(db)
        monitor.handle("\\d emp")
        text = out.getvalue()
        assert "temporal" in text and "structure: heap" in text

    def test_meta_clock(self, db):
        monitor, out = self.make_monitor(db)
        monitor.handle("\\clock")
        assert "now =" in out.getvalue()

    def test_meta_quit_via_run(self, db):
        monitor, out = self.make_monitor(db)
        monitor.run(io.StringIO("\\q\nretrieve (x.y)\n"))
        assert "error" not in out.getvalue()

    def test_io_reporting_toggle(self, db):
        db.execute("create emp (name = c8)")
        db.execute("range of e is emp")
        monitor, out = self.make_monitor(db)
        monitor.handle("\\io")  # off
        monitor.handle("retrieve (e.name)")
        assert "[input" not in out.getvalue()

    def test_script_execution(self, db, tmp_path):
        script = tmp_path / "setup.tql"
        script.write_text(
            'create emp (name = c8, sal = i4)\n'
            'append to emp (name = "ahn", sal = 5)\n'
            "range of e is emp\n"
            "retrieve (e.name)\n"
        )
        monitor, out = self.make_monitor(db)
        monitor.handle(f"\\i {script}")
        assert "ahn" in out.getvalue()

    def test_script_missing_file(self, db):
        monitor, out = self.make_monitor(db)
        monitor.handle("\\i /nonexistent/file.tql")
        assert "error" in out.getvalue()

    def test_save_and_restore(self, db, tmp_path):
        db.execute("create emp (name = c8)")
        db.execute('append to emp (name = "ahn")')
        monitor, out = self.make_monitor(db)
        monitor.handle(f"\\save {tmp_path / 'ck'}")
        monitor.handle(f"\\restore {tmp_path / 'ck'}")
        monitor.handle("range of e is emp")
        monitor.handle("retrieve (e.name)")
        text = out.getvalue()
        assert "saved" in text and "restored" in text and "ahn" in text

    def test_restore_missing_checkpoint(self, db, tmp_path):
        monitor, out = self.make_monitor(db)
        monitor.handle(f"\\restore {tmp_path / 'nope'}")
        assert "error" in out.getvalue()

    def test_bad_resolution_reported(self, db):
        monitor, out = self.make_monitor(db)
        monitor.handle("\\time fortnight")
        assert "unknown resolution" in out.getvalue()

    def test_bad_clock_advance_reported(self, db):
        monitor, out = self.make_monitor(db)
        monitor.handle("\\clock advance banana")
        assert "error" in out.getvalue()

    def test_unknown_meta_command(self, db):
        monitor, out = self.make_monitor(db)
        monitor.handle("\\frobnicate")
        assert "unknown meta-command" in out.getvalue()

    def test_line_continuation(self, db):
        import io

        monitor, out = self.make_monitor(db)
        monitor.run(
            io.StringIO(
                "create emp \\\n(name = c8, sal = i4)\n"
                'append to emp (name = "ahn", \\\n sal = 7)\n'
                "range of e is emp\nretrieve (e.sal)\n"
            )
        )
        assert "7" in out.getvalue()

    def test_continuation_flushes_at_eof(self, db):
        import io

        db.execute("create emp (name = c8)")
        db.execute('append to emp (name = "x")')
        db.execute("range of e is emp")
        monitor, out = self.make_monitor(db)
        monitor.run(io.StringIO("retrieve \\\n(e.name)"))
        assert "x" in out.getvalue()

    def test_times_formatted_at_resolution(self, db):
        db.execute("create interval t (id = i4)")
        db.execute("append to t (id = 1)")
        db.execute("range of x is t")
        monitor, out = self.make_monitor(db)
        monitor.handle("\\time year")
        monitor.handle("retrieve (x.id)")
        assert "1980" in out.getvalue()
        assert "forever" in out.getvalue()


class TestMonitorTelemetry:
    def make_monitor(self, db):
        out = io.StringIO()
        return Monitor(db=db, out=out), out

    def setup_relation(self, db):
        db.execute("create emp (name = c8, sal = i4)")
        db.execute('append to emp (name = "ahn", sal = 5)')
        db.execute("range of e is emp")

    def test_events_shows_statement_tail(self, db):
        self.setup_relation(db)
        monitor, out = self.make_monitor(db)
        monitor.handle("\\events")
        text = out.getvalue()
        assert "statement.end" in text
        assert "statement=append" in text

    def test_events_count_and_clear(self, db):
        self.setup_relation(db)
        monitor, out = self.make_monitor(db)
        monitor.handle("\\events 1")
        assert "earlier event(s) buffered" in out.getvalue()
        monitor.handle("\\events clear")
        monitor.handle("\\events")
        text = out.getvalue()
        assert "events cleared" in text
        assert "(no events recorded)" in text
        monitor.handle("\\events wat")
        assert "usage: \\events" in out.getvalue()

    def test_heatmap_toggle_and_strips(self, db):
        monitor, out = self.make_monitor(db)
        monitor.handle("\\heatmap")
        assert "heatmap capture off" in out.getvalue()
        monitor.handle("\\heatmap on")
        self.setup_relation(db)
        monitor.handle("retrieve (e.name)")
        monitor.handle("\\heatmap emp")
        text = out.getvalue()
        assert "read(s)" in text
        assert "[" in text and "]" in text
        monitor.handle("\\heatmap clear")
        monitor.handle("\\heatmap emp")
        assert "no recorded accesses for 'emp'" in out.getvalue()

    def test_heatmap_hint_when_capture_off(self, db):
        self.setup_relation(db)
        monitor, out = self.make_monitor(db)
        monitor.handle("\\heatmap emp")
        assert "capture is off" in out.getvalue()

    def test_metrics_reports_buffer_hit_rate(self, db):
        self.setup_relation(db)
        db.execute("retrieve (e.name)")
        monitor, out = self.make_monitor(db)
        monitor.handle("\\metrics")
        assert "buffer hit rate:" in out.getvalue()

    def test_metrics_reset_clears_trace_history(self, db):
        db.tracer.enable()
        self.setup_relation(db)
        assert len(db.tracer.history) > 0
        monitor, out = self.make_monitor(db)
        monitor.handle("\\metrics reset")
        assert db.tracer.last is None
        assert len(db.tracer.history) == 0
        assert db.tracer.enabled

    def test_telemetry_exports_directory(self, db, tmp_path):
        db.tracer.enable()
        self.setup_relation(db)
        db.execute("retrieve (e.name)")
        monitor, out = self.make_monitor(db)
        target = tmp_path / "telemetry"
        monitor.handle(f"\\telemetry {target}")
        text = out.getvalue()
        assert "wrote trace:" in text
        assert (target / "trace.json").exists()
        assert (target / "metrics.prom").exists()
        assert (target / "events.jsonl").exists()
        monitor.handle("\\telemetry")
        assert "usage: \\telemetry" in out.getvalue()

    def test_help_mentions_new_commands(self, db):
        monitor, out = self.make_monitor(db)
        monitor.handle("\\?")
        text = out.getvalue()
        for command in ("\\events", "\\heatmap", "\\telemetry", "\\metrics"):
            assert command in text
