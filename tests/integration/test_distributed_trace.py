"""End-to-end distributed tracing and query statistics.

The acceptance scenario of the observability PR: a ``tcp://`` client
executing a parallel aggregate against a process-partitioned relation
produces ONE merged trace tree -- client span, server statement span,
and one span per pool worker, all sharing the client's trace id -- and
the query-statistics store reports the statement's fingerprint with
non-zero predicted and actual page reads whose ratio is within the
Fig. 9 validation tolerance.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.engine.database import TemporalDatabase
from repro.observe.export import chrome_trace
from repro.observe.stats import SlowQueryLog
from repro.server.server import ServerThread

AGGREGATE = "retrieve (total = count(x.id)) where x.v < 7"


def build_db(parallel: str = "thread", rows: int = 160,
             partitions: int = 3) -> TemporalDatabase:
    db = TemporalDatabase("disttrace")
    db.execute("create r (id = i4, v = i4)")
    for i in range(rows):
        db.execute(f"append to r (id = {i}, v = {i % 10})")
    db.partition_relation("r", "hash", "id", partitions, parallel=parallel)
    db.execute("range of x is r")
    return db


def collect_lanes(span, out=None):
    if out is None:
        out = []
    out.append((span.attributes.get("lane"), span.trace_id))
    for child in span.children:
        collect_lanes(child, out)
    return out


class TestLocalWorkerSpans:
    def test_traced_parallel_aggregate_adopts_worker_spans(self):
        db = build_db()
        db.tracer.enable()
        db.execute(AGGREGATE)
        root = db.tracer.last
        workers = [
            child for child in root.children
            if child.attributes.get("lane") == "worker"
        ]
        assert len(workers) == 3
        for worker in workers:
            assert worker.trace_id == root.trace_id
            assert worker.parent_id == root.span_id
            # Thread fan-out reports the scan_batches kernel; the
            # process pool reports page_fold (and ships io too).
            assert worker.attributes["kernel"] == "scan_batches"
            assert worker.attributes["partition"].startswith("r#")

    def test_explain_analyze_shows_worker_spans(self):
        db = build_db()
        text = db.explain(AGGREGATE, analyze=True)
        assert "worker" in text
        assert "lane=worker" in text

    def test_worker_events_merge_into_coordinator_recorder(self):
        db = build_db()
        db.tracer.enable()
        db.execute(AGGREGATE)
        kinds = [event.kind for event in db.recorder.dump()]
        assert kinds.count("exec.partition_scan") == 3

    def test_worker_page_visits_mirror_into_heatmap(self):
        db = build_db()
        db.heatmap.enable()
        db.tracer.enable()
        db.execute(AGGREGATE)
        files = db.heatmap.files()
        assert any(name.startswith("r#") for name in files)

    def test_untraced_statements_ship_no_spans(self):
        db = build_db()
        db.execute(AGGREGATE)  # tracer disabled
        assert db.tracer.last is None
        assert not any(
            event.kind == "exec.partition_scan"
            for event in db.recorder.dump()
        )


class TestRemoteMergedTrace:
    def test_tcp_process_statement_produces_one_merged_tree(self):
        db = build_db(parallel="process")
        with ServerThread(db) as server:
            with repro.connect(server.url) as session:
                session.tracer.enable()
                session.execute("range of x is r")
                result = session.execute(AGGREGATE)
                assert result.rows == [(112,)]
                root = session.last_trace()
        lanes = collect_lanes(root)
        lane_names = {lane for lane, _ in lanes if lane}
        assert {"client", "server", "worker"} <= lane_names
        workers = sum(1 for lane, _ in lanes if lane == "worker")
        assert workers >= 1
        assert {tid for _, tid in lanes} == {root.trace_id}

    def test_remote_stats_report_predicted_vs_actual(self):
        db = build_db(parallel="thread")
        with ServerThread(db) as server:
            with repro.connect(server.url) as session:
                session.execute("range of x is r")
                session.execute(AGGREGATE)
                session.execute(AGGREGATE)
                stats = session.query_stats(50)
        entry = next(
            e for e in stats["entries"]
            if e["fingerprint"].startswith("retrieve ( total = count")
        )
        assert entry["calls"] >= 2
        assert entry["predicted_pages"] > 0
        assert entry["actual_pages"] > 0
        ratio = entry["predicted_pages"] / entry["actual_pages"]
        assert ratio == pytest.approx(1.0, abs=0.25)

    def test_prepared_statements_trace_and_count_plan_hits(self):
        db = build_db(parallel="thread")
        with ServerThread(db) as server:
            with repro.connect(server.url) as session:
                session.tracer.enable()
                session.execute("range of x is r")
                query = session.prepare(
                    "retrieve (x.id) where x.v = $v"
                )
                query.execute(params={"v": 1})
                query.execute(params={"v": 2})
                root = session.last_trace()
                stats = session.query_stats(50)
        lanes = collect_lanes(root)
        assert {"client", "server"} <= {lane for lane, _ in lanes if lane}
        entry = next(
            e for e in stats["entries"]
            if e["fingerprint"].startswith("retrieve ( x . id )")
        )
        assert entry["calls"] == 2
        assert entry["plan_cache_hits"] == 2

    def test_chrome_trace_renders_client_server_worker_lanes(self):
        db = build_db(parallel="thread")
        with ServerThread(db) as server:
            with repro.connect(server.url) as session:
                session.tracer.enable()
                session.execute("range of x is r")
                session.execute(AGGREGATE)
                trace = chrome_trace(list(session.tracer.history))
        names = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M"
        }
        assert {"repro:client", "repro:server", "repro:worker"} <= names
        pids = {
            event["pid"]
            for event in trace["traceEvents"]
            if event["ph"] == "X"
        }
        assert len(pids) >= 3
        json.dumps(trace)  # serializable end to end

    def test_client_prometheus_export_covers_retry_stats(self):
        db = build_db(parallel="thread")
        with ServerThread(db) as server:
            with repro.connect(server.url) as session:
                session.execute("range of x is r")
                session.execute(AGGREGATE)
                text = session.prometheus_text()
        assert "repro_client_retries_total 0" in text
        assert "repro_client_reconnects_total 0" in text
        assert "repro_client_retry_stats_backoff_seconds 0" in text

    def test_engine_prometheus_export_preregisters_exec_counters(self):
        from repro.observe.export import prometheus_text

        db = build_db(parallel="thread")
        text = prometheus_text(db.metrics)
        assert "repro_exec_degraded_total 0" in text
        assert "repro_exec_worker_failures_total 0" in text


class TestStatsDurability:
    def test_query_stats_survive_save_and_load(self, tmp_path):
        db = TemporalDatabase("t")
        db.execute("create r (id = i4)")
        db.execute("append to r (id = 1)")
        db.execute("range of x is r")
        db.execute("retrieve (x.id)")
        fingerprints = {e.fingerprint for e in db.query_stats.top(None)}
        db.save(tmp_path / "chk")
        restored = TemporalDatabase.load(tmp_path / "chk")
        assert {
            e.fingerprint for e in restored.query_stats.top(None)
        } == fingerprints
        entry = restored.query_stats.get("retrieve ( x . id )")
        assert entry.calls == 1
        assert entry.actual_pages >= 1

    def test_restored_partitioned_relation_keeps_tracing(self, tmp_path):
        db = build_db(parallel="thread")
        db.save(tmp_path / "chk")
        restored = TemporalDatabase.load(tmp_path / "chk")
        restored.tracer.enable()
        restored.execute("range of x is r")
        restored.execute(AGGREGATE)
        root = restored.tracer.last
        workers = [
            child for child in root.children
            if child.attributes.get("lane") == "worker"
        ]
        assert len(workers) == 3


class TestSlowQueryLog:
    def test_slow_statements_capture_trace_and_plan(self):
        db = build_db(parallel="thread")
        db.slowlog = SlowQueryLog(threshold_ms=0.0)
        db.execute(AGGREGATE)
        entries = db.slowlog.dump()
        assert entries
        entry = entries[-1]
        assert entry["text"] == AGGREGATE
        assert entry["elapsed_ms"] > 0
        assert entry["trace"]["name"] == "statement"
        assert any(
            child["name"] == "execute"
            for child in entry["trace"]["children"]
        )
        assert "decompose" in entry["plan"] or "scan" in entry["plan"]

    def test_fast_statements_stay_out_with_high_threshold(self):
        db = TemporalDatabase("t")
        db.slowlog = SlowQueryLog(threshold_ms=60000.0)
        db.execute("create r (id = i4)")
        assert db.slowlog.dump() == []


class TestTelemetrySmoke:
    def test_smoke_driver_end_to_end(self, tmp_path):
        from repro.server.telemetry_smoke import run_telemetry_smoke

        summary = run_telemetry_smoke(
            str(tmp_path / "out"), seed=3, ops=12, rows=120, partitions=2
        )
        assert summary["worker_spans"] >= 1
        assert abs(summary["prediction_ratio"] - 1.0) <= 0.25
        trace = json.loads(
            (tmp_path / "out" / "trace.json").read_text()
        )
        assert trace["traceEvents"]
        stats = json.loads((tmp_path / "out" / "stats.json").read_text())
        assert stats["entries"]
