"""Integration tests: historical relations (valid time, Section 4)."""

import pytest

from repro import FOREVER, format_chronon


@pytest.fixture
def sal(db):
    db.execute("create interval sal (name = c12, monthly = i4)")
    db.execute("range of s is sal")
    db.execute('append to sal (name = "jane", monthly = 2600)')
    return db


def versions(db, name):
    result = db.execute(
        f'retrieve (s.monthly, s.valid_from, s.valid_to) where s.name = "{name}"'
    )
    # Historical results carry their own (computed) valid columns too;
    # take the explicit attribute projections.
    return sorted((row[0], row[1], row[2]) for row in result.rows)


class TestVersionSemantics:
    def test_append_defaults_valid_from_now_to_forever(self, sal):
        (row,) = versions(sal, "jane")
        assert row[2] == FOREVER

    def test_append_with_valid_clause(self, sal):
        sal.execute(
            'append to sal (name = "tom", monthly = 100) '
            'valid from "1/1/79" to "1/1/80"'
        )
        (row,) = versions(sal, "tom")
        assert format_chronon(row[1]).startswith("1979-01-01")
        assert format_chronon(row[2]).startswith("1980-01-01")

    def test_replace_closes_and_opens(self, sal):
        sal.execute('replace s (monthly = 2900) where s.name = "jane"')
        old, new = sorted(versions(sal, "jane"))
        assert old[0] == 2600 and old[2] != FOREVER
        assert new[0] == 2900 and new[2] == FOREVER
        assert old[2] == new[1]

    def test_replace_adds_exactly_one_version(self, sal):
        sal.execute('replace s (monthly = 2900) where s.name = "jane"')
        assert sal.relation("sal").row_count == 2

    def test_retroactive_replace(self, sal):
        sal.execute(
            'replace s (monthly = 3000) valid from "1/1/79" to "forever" '
            'where s.name = "jane"'
        )
        rows = versions(sal, "jane")
        assert any(
            format_chronon(start).startswith("1979") for _, start, __ in rows
        )

    def test_delete_closes_validity(self, sal):
        sal.execute('delete s where s.name = "jane"')
        (row,) = versions(sal, "jane")
        assert row[2] != FOREVER
        assert sal.relation("sal").row_count == 1

    def test_deleted_not_current(self, sal):
        sal.execute('delete s where s.name = "jane"')
        result = sal.execute('retrieve (s.name) when s overlap "now"')
        assert result.rows == []


class TestHistoricalQueries:
    def test_when_at_past_instant(self, sal):
        t_hired = sal.clock.now()
        sal.execute('replace s (monthly = 2900) where s.name = "jane"')
        result = sal.execute(
            f'retrieve (s.monthly) when s overlap "{format_chronon(t_hired)}"'
        )
        assert 2600 in [row[0] for row in result.rows]

    def test_results_carry_valid_period(self, sal):
        result = sal.execute("retrieve (s.monthly)")
        assert result.columns == ["monthly", "valid_from", "valid_to"]

    def test_no_when_returns_all_versions(self, sal):
        sal.execute('replace s (monthly = 2900) where s.name = "jane"')
        assert len(sal.execute("retrieve (s.monthly)").rows) == 2

    def test_as_of_rejected(self, sal):
        from repro.errors import TQuelSemanticError

        with pytest.raises(TQuelSemanticError):
            sal.execute('retrieve (s.monthly) as of "now"')

    def test_valid_clause_computes_output_period(self, sal):
        result = sal.execute(
            'retrieve (s.monthly) valid from "1/1/85" to "1/1/86"'
        )
        (row,) = result.rows
        assert format_chronon(row[1]).startswith("1985-01-01")


class TestEventRelations:
    @pytest.fixture
    def meas(self, db):
        db.execute("create event meas (probe = c8, value = i4)")
        db.execute("range of m is meas")
        return db

    def test_append_event_defaults_to_now(self, meas):
        meas.execute('append to meas (probe = "t1", value = 7)')
        result = meas.execute("retrieve (m.value, m.valid_at)")
        assert result.rows[0][1] <= meas.clock.now()

    def test_append_event_with_valid_at(self, meas):
        meas.execute(
            'append to meas (probe = "t1", value = 7) valid at "2/15/80"'
        )
        result = meas.execute('retrieve (m.value) when m overlap "2/15/80"')
        assert result.rows[0][0] == 7

    def test_event_results_have_valid_at_column(self, meas):
        meas.execute('append to meas (probe = "t1", value = 7)')
        result = meas.execute("retrieve (m.value)")
        assert "valid_from" in result.columns or "valid_at" in result.columns

    def test_event_record_is_112_bytes(self, meas):
        # id/c8 + i4 + one 4-byte valid_at on top of 12 user bytes.
        assert meas.relation("meas").schema.record_size == 16

    def test_replace_event_updates_in_place(self, meas):
        meas.execute('append to meas (probe = "t1", value = 7)')
        meas.execute('replace m (value = 9) where m.probe = "t1"')
        assert meas.relation("meas").row_count == 1
        assert meas.execute("retrieve (m.value)").rows[0][0] == 9

    def test_delete_event_removes(self, meas):
        meas.execute('append to meas (probe = "t1", value = 7)')
        meas.execute('delete m where m.probe = "t1"')
        assert meas.relation("meas").row_count == 0
