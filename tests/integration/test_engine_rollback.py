"""Integration tests: rollback relations (transaction time, Section 4)."""

import pytest

from repro import FOREVER


@pytest.fixture
def acct(db):
    db.execute("create persistent acct (owner = c12, balance = i4)")
    db.execute("range of a is acct")
    db.execute('append to acct (owner = "lum", balance = 1000)')
    return db


def stamps(db, owner):
    result = db.execute(
        "retrieve (a.balance, a.transaction_start, a.transaction_stop) "
        f'where a.owner = "{owner}" as of "beginning" through "forever"'
    )
    return sorted(result.rows, key=lambda row: row[1])


class TestVersionSemantics:
    def test_append_stamps_start_and_forever(self, acct):
        (row,) = stamps(acct, "lum")
        assert row[2] == FOREVER
        assert row[1] <= acct.clock.now()

    def test_replace_inserts_one_version(self, acct):
        acct.execute('replace a (balance = 2000) where a.owner = "lum"')
        assert acct.relation("acct").row_count == 2

    def test_replace_stamps_old_version(self, acct):
        acct.execute('replace a (balance = 2000) where a.owner = "lum"')
        old, new = stamps(acct, "lum")
        assert old[2] != FOREVER
        assert new[2] == FOREVER
        assert old[2] == new[1]  # stamped out exactly when the new begins

    def test_delete_stamps_not_removes(self, acct):
        acct.execute('delete a where a.owner = "lum"')
        assert acct.relation("acct").row_count == 1
        (row,) = stamps(acct, "lum")
        assert row[2] != FOREVER

    def test_deleted_tuple_invisible_now(self, acct):
        acct.execute('delete a where a.owner = "lum"')
        assert acct.execute('retrieve (a.owner) as of "now"').rows == []

    def test_deleted_tuple_visible_in_past(self, acct):
        before = acct.clock.now()
        acct.execute('delete a where a.owner = "lum"')
        result = acct.execute(
            f'retrieve (a.owner) as of "{_fmt(before)}"'
        )
        assert result.rows == [("lum",)]

    def test_replace_targets_only_current(self, acct):
        for value in (2000, 3000, 4000):
            acct.execute(
                f'replace a (balance = {value}) where a.owner = "lum"'
            )
        # Each replace touched exactly one (the current) version.
        assert acct.relation("acct").row_count == 4
        result = acct.execute('retrieve (a.balance) as of "now"')
        assert result.rows == [(4000,)]


def _fmt(chronon):
    from repro import format_chronon

    return format_chronon(chronon)


class TestAsOf:
    def test_default_as_of_is_now(self, acct):
        acct.execute('replace a (balance = 2000) where a.owner = "lum"')
        result = acct.execute("retrieve (a.balance)")
        assert result.rows == [(2000,)]

    def test_as_of_past_reconstructs_state(self, acct):
        t1 = acct.clock.now()
        acct.execute('replace a (balance = 2000) where a.owner = "lum"')
        result = acct.execute(f'retrieve (a.balance) as of "{_fmt(t1)}"')
        assert result.rows == [(1000,)]

    def test_as_of_before_creation_is_empty(self, acct):
        result = acct.execute('retrieve (a.balance) as of "1/1/70"')
        assert result.rows == []

    def test_as_of_through_spans_versions(self, acct):
        acct.execute('replace a (balance = 2000) where a.owner = "lum"')
        result = acct.execute(
            'retrieve (a.balance) as of "beginning" through "forever"'
        )
        assert sorted(row[0] for row in result.rows) == [1000, 2000]

    def test_rollback_results_have_no_valid_columns(self, acct):
        result = acct.execute("retrieve (a.owner)")
        assert result.columns == ["owner"]


class TestAuditTrailScenario:
    def test_error_correction_preserves_history(self, acct):
        acct.execute(
            'replace a (balance = a.balance + 2500) where a.owner = "lum"'
        )
        wrong_time = acct.clock.now()
        acct.execute('replace a (balance = 1250) where a.owner = "lum"')
        # The erroneous state remains reconstructible.
        result = acct.execute(
            f'retrieve (a.balance) as of "{_fmt(wrong_time)}"'
        )
        assert result.rows == [(3500,)]
        # And the current state is corrected.
        assert acct.execute("retrieve (a.balance)").rows == [(1250,)]
