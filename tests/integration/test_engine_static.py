"""Integration tests: static relations behave like a conventional DBMS."""

import pytest

from repro.errors import DuplicateRelationError, UnknownRelationError


@pytest.fixture
def emp(db):
    db.execute("create emp (name = c12, dept = c8, sal = i4)")
    db.execute("range of e is emp")
    for name, dept, sal in (
        ("ahn", "cs", 30000),
        ("snodgrass", "cs", 40000),
        ("stonebraker", "ee", 50000),
    ):
        db.execute(
            f'append to emp (name = "{name}", dept = "{dept}", sal = {sal})'
        )
    return db


class TestCrud:
    def test_retrieve_all(self, emp):
        result = emp.execute("retrieve (e.name, e.sal)")
        assert len(result.rows) == 3
        assert result.columns == ["name", "sal"]

    def test_where_filter(self, emp):
        result = emp.execute('retrieve (e.name) where e.dept = "cs"')
        assert sorted(row[0] for row in result.rows) == ["ahn", "snodgrass"]

    def test_no_valid_columns_in_static_results(self, emp):
        result = emp.execute("retrieve (e.name)")
        assert result.columns == ["name"]

    def test_replace_in_place(self, emp):
        emp.execute('replace e (sal = e.sal + 1000) where e.dept = "cs"')
        result = emp.execute('retrieve (e.sal) where e.name = "ahn"')
        assert result.rows == [(31000,)]
        # No version accumulated.
        assert emp.relation("emp").row_count == 3

    def test_delete_removes_physically(self, emp):
        result = emp.execute('delete e where e.dept = "cs"')
        assert result.count == 2
        assert emp.relation("emp").row_count == 1

    def test_delete_everything(self, emp):
        emp.execute("delete e")
        assert emp.execute("retrieve (e.name)").rows == []

    def test_append_with_defaults(self, emp):
        emp.execute('append to emp (name = "wong")')
        result = emp.execute('retrieve (e.dept, e.sal) where e.name = "wong"')
        assert result.rows == [("", 0)]

    def test_when_clause_rejected(self, emp):
        from repro.errors import TQuelSemanticError

        with pytest.raises(TQuelSemanticError):
            emp.execute('retrieve (e.name) when e overlap "now"')


class TestDdl:
    def test_duplicate_create_rejected(self, emp):
        with pytest.raises(DuplicateRelationError):
            emp.execute("create emp (x = i4)")

    def test_destroy_removes_relation(self, emp):
        emp.execute("destroy emp")
        with pytest.raises(UnknownRelationError):
            emp.relation("emp")

    def test_destroy_clears_ranges(self, emp):
        emp.execute("destroy emp")
        assert "e" not in emp.ranges

    def test_modify_to_hash_and_query(self, emp):
        emp.execute("modify emp to hash on name where fillfactor = 100")
        result = emp.execute('retrieve (e.sal) where e.name = "ahn"')
        assert result.rows == [(30000,)]
        assert result.input_pages == 1

    def test_modify_to_isam_and_query(self, emp):
        emp.execute("modify emp to isam on name")
        result = emp.execute('retrieve (e.sal) where e.name = "ahn"')
        assert result.rows == [(30000,)]

    def test_modify_static_to_twolevel_rejected(self, emp):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            emp.execute("modify emp to twolevel on name")

    def test_retrieve_into_creates_static_snapshot(self, emp):
        emp.execute('retrieve into rich (e.name, e.sal) where e.sal > 35000')
        emp.execute("range of r is rich")
        result = emp.execute("retrieve (r.name)")
        assert sorted(row[0] for row in result.rows) == [
            "snodgrass", "stonebraker",
        ]


class TestSystemCatalogQueries:
    def test_catalog_is_queryable(self, emp):
        emp.execute("range of c is relations")
        result = emp.execute('retrieve (c.relname, c.dbtype) where c.relname = "emp"')
        assert result.rows == [("emp", "static")]

    def test_attribute_catalog(self, emp):
        emp.execute("range of a is attributes")
        result = emp.execute(
            'retrieve (a.attname) where a.relname = "emp"'
        )
        assert sorted(row[0] for row in result.rows) == [
            "dept", "name", "sal",
        ]

    def test_system_io_not_counted_as_user(self, emp):
        emp.execute("range of c is relations")
        result = emp.execute("retrieve (c.relname)")
        assert result.input_pages == 0
        assert result.io.system.reads > 0

    def test_system_relations_immutable(self, emp):
        from repro.errors import TQuelSemanticError

        emp.execute("range of c is relations")
        with pytest.raises(TQuelSemanticError):
            emp.execute("delete c")
