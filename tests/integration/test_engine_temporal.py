"""Integration tests: temporal (bitemporal) relations -- the Section-4
embedding where a replace "inserts two new versions"."""

import pytest

from repro import FOREVER, format_chronon


@pytest.fixture
def part(db):
    db.execute("create persistent interval part (pname = c12, qty = i4)")
    db.execute("range of p is part")
    db.execute('append to part (pname = "bolt", qty = 10)')
    return db


def all_versions(db):
    result = db.execute(
        "retrieve (p.qty, p.transaction_start, p.transaction_stop, "
        "p.valid_from, p.valid_to) "
        'as of "beginning" through "forever"'
    )
    return sorted(row[:5] for row in result.rows)


class TestVersionSemantics:
    def test_append_inserts_one(self, part):
        assert part.relation("part").row_count == 1

    def test_replace_inserts_two_versions(self, part):
        part.execute('replace p (qty = 20) where p.pname = "bolt"')
        # "each 'replace' operation in a temporal relation inserts two new
        # versions" -- 1 original + 2 new.
        assert part.relation("part").row_count == 3

    def test_replace_version_anatomy(self, part):
        part.execute('replace p (qty = 20) where p.pname = "bolt"')
        rows = all_versions(part)
        stamped = [r for r in rows if r[2] != FOREVER]
        closed = [r for r in rows if r[2] == FOREVER and r[4] != FOREVER]
        current = [r for r in rows if r[2] == FOREVER and r[4] == FOREVER]
        assert len(stamped) == 1 and stamped[0][0] == 10
        assert len(closed) == 1 and closed[0][0] == 10
        assert len(current) == 1 and current[0][0] == 20
        # The closing version records validity until the update instant.
        assert closed[0][4] == current[0][3]

    def test_delete_inserts_one_closing_version(self, part):
        part.execute('delete p where p.pname = "bolt"')
        assert part.relation("part").row_count == 2
        rows = all_versions(part)
        assert not any(
            r[2] == FOREVER and r[4] == FOREVER for r in rows
        )

    def test_delete_preserves_bitemporal_history(self, part):
        before = part.clock.now()
        part.execute('delete p where p.pname = "bolt"')
        # Rollback to before the delete: the part exists again.
        result = part.execute(
            f'retrieve (p.qty) as of "{format_chronon(before)}" '
            f'when p overlap "{format_chronon(before)}"'
        )
        assert [row[0] for row in result.rows] == [10]

    def test_n_replaces_make_2n_plus_1_versions(self, part):
        for qty in (20, 30, 40, 50):
            part.execute(f'replace p (qty = {qty}) where p.pname = "bolt"')
        assert part.relation("part").row_count == 9


class TestBitemporalQueries:
    def test_current_state(self, part):
        part.execute('replace p (qty = 20) where p.pname = "bolt"')
        result = part.execute('retrieve (p.qty) when p overlap "now"')
        assert [row[0] for row in result.rows] == [20]

    def test_as_of_past_and_valid_past(self, part):
        t0 = part.clock.now()
        part.execute('replace p (qty = 20) where p.pname = "bolt"')
        part.execute('replace p (qty = 30) where p.pname = "bolt"')
        # As the database stood at t0, valid at t0: the original.
        stamp = format_chronon(t0)
        result = part.execute(
            f'retrieve (p.qty) as of "{stamp}" when p overlap "{stamp}"'
        )
        assert [row[0] for row in result.rows] == [10]

    def test_retroactive_change_visible_only_after_recording(self, part):
        # Retroactively declare qty 99 valid since 1979.
        before = part.clock.now()
        part.execute(
            'replace p (qty = 99) valid from "1/1/79" to "forever" '
            'where p.pname = "bolt"'
        )
        stamp_before = format_chronon(before)
        # As of before the change, 1979 had no bolt fact at all.
        early = part.execute(
            f'retrieve (p.qty) as of "{stamp_before}" when p overlap "6/1/79"'
        )
        assert early.rows == []
        # As of now, the 1979 validity exists.
        late = part.execute('retrieve (p.qty) when p overlap "6/1/79"')
        assert [row[0] for row in late.rows] == [99]

    def test_temporal_join_with_valid_clause(self, part):
        part.execute("create persistent interval loc (pname = c12, bin = i4)")
        part.execute('append to loc (pname = "bolt", bin = 7)')
        part.execute("range of l is loc")
        result = part.execute(
            "retrieve (p.qty, l.bin) "
            "valid from start of (p overlap l) to end of (p extend l) "
            "where p.pname = l.pname when p overlap l"
        )
        (row,) = result.rows
        assert row[:2] == (10, 7)

    def test_default_result_period_is_intersection(self, part):
        part.execute("create persistent interval loc (pname = c12, bin = i4)")
        part.execute('append to loc (pname = "bolt", bin = 7)')
        part.execute("range of l is loc")
        result = part.execute(
            "retrieve (p.qty, l.bin) where p.pname = l.pname "
            "when p overlap l"
        )
        (row,) = result.rows
        valid_from = row[result.columns.index("valid_from")]
        loc_created = part.execute("retrieve (l.valid_from)").rows[0][0]
        assert valid_from == loc_created  # the later of the two starts

    def test_q11_style_precede_join(self, part):
        part.execute('append to part (pname = "nut", qty = 5)')
        result = part.execute(
            "retrieve (p.qty) valid from start of p to end of p "
            "when start of p precede p"
        )
        assert len(result.rows) == 2


class TestTwoLevelStoreIntegration:
    def test_modify_to_twolevel_preserves_contents(self, part):
        for qty in (20, 30):
            part.execute(f'replace p (qty = {qty}) where p.pname = "bolt"')
        before = sorted(all_versions(part))
        part.execute(
            'modify part to twolevel on pname where history = "clustered"'
        )
        assert sorted(all_versions(part)) == before

    def test_current_query_reads_primary_only(self, part):
        for qty in range(20, 120, 10):
            part.execute(f'replace p (qty = {qty}) where p.pname = "bolt"')
        part.execute("modify part to twolevel on pname")
        result = part.execute(
            'retrieve (p.qty) where p.pname = "bolt" when p overlap "now"'
        )
        assert [row[0] for row in result.rows] == [110]
        assert result.input_pages == 1

    def test_version_scan_reads_history_chain(self, part):
        for qty in range(20, 120, 10):
            part.execute(f'replace p (qty = {qty}) where p.pname = "bolt"')
        part.execute(
            'modify part to twolevel on pname where history = "clustered"'
        )
        result = part.execute('retrieve (p.qty) where p.pname = "bolt"')
        # 1 current + 10 closing versions are transaction-current.
        assert len(result.rows) == 11

    def test_updates_keep_working_on_twolevel(self, part):
        part.execute("modify part to twolevel on pname")
        part.execute('replace p (qty = 42) where p.pname = "bolt"')
        result = part.execute('retrieve (p.qty) when p overlap "now"')
        assert [row[0] for row in result.rows] == [42]
        store = part.relation("part").storage
        assert store.history_pages >= 1
