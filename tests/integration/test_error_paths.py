"""Integration tests for error handling across the statement surface."""

import pytest

from repro.errors import (
    CatalogError,
    ExecutionError,
    TQuelSemanticError,
    TQuelSyntaxError,
    UnknownRelationError,
)


@pytest.fixture
def basic(db):
    db.execute("create persistent interval r (id = i4, v = i4)")
    db.execute("range of x is r")
    db.execute("append to r (id = 1, v = 10)")
    return db


class TestDdlErrors:
    def test_modify_unknown_relation(self, basic):
        with pytest.raises(UnknownRelationError):
            basic.execute("modify ghost to hash on id")

    def test_modify_unknown_structure(self, basic):
        with pytest.raises(CatalogError):
            basic.execute("modify r to rtree on id")

    def test_modify_keyed_without_key(self, basic):
        with pytest.raises(CatalogError):
            basic.execute("modify r to hash")

    def test_modify_unknown_key_attribute(self, basic):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            basic.execute("modify r to hash on ghost")

    def test_modify_unknown_option(self, basic):
        with pytest.raises(TQuelSemanticError):
            basic.execute("modify r to hash on id where sparkle = 1")

    def test_modify_bad_history_layout(self, basic):
        with pytest.raises(CatalogError):
            basic.execute(
                'modify r to twolevel on id where history = "holographic"'
            )

    def test_index_duplicate_name(self, basic):
        basic.execute("index on r is v_idx (v)")
        with pytest.raises(CatalogError):
            basic.execute("index on r is v_idx (v)")

    def test_index_bad_levels(self, basic):
        with pytest.raises(CatalogError):
            basic.execute("index on r is v2 (v) where levels = 3")

    def test_index_isam_structure_rejected(self, basic):
        with pytest.raises(CatalogError):
            basic.execute("index on r is v2 (v) where structure = isam")

    def test_index_unknown_attribute(self, basic):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            basic.execute("index on r is v2 (ghost)")

    def test_destroy_unknown(self, basic):
        with pytest.raises(UnknownRelationError):
            basic.execute("destroy ghost")

    def test_create_reserved_attribute(self, basic):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            basic.execute("create t (valid_from = i4)")

    def test_create_shadowing_system_relation(self, basic):
        from repro.errors import DuplicateRelationError

        with pytest.raises(DuplicateRelationError):
            basic.execute("create relations (x = i4)")

    def test_create_bad_type(self, basic):
        from repro.errors import RecordCodecError

        with pytest.raises(RecordCodecError):
            basic.execute("create t (x = blob)")


class TestStatementErrors:
    def test_range_over_unknown_relation(self, basic):
        with pytest.raises(UnknownRelationError):
            basic.execute("range of q is ghost")

    def test_empty_input(self, basic):
        with pytest.raises(ExecutionError):
            basic.execute("   ")

    def test_syntax_error_position(self, basic):
        with pytest.raises(TQuelSyntaxError) as info:
            basic.execute("retrieve (x.id,, x.v)")
        assert "line 1" in str(info.value)

    def test_append_value_overflow(self, basic):
        from repro.errors import RecordCodecError

        with pytest.raises(RecordCodecError):
            basic.execute("append to r (id = 1, v = 3000000000)")

    def test_copy_rows_arity(self, basic):
        with pytest.raises(ExecutionError):
            basic.copy_in("r", [(1,)])

    def test_multi_statement_results(self, basic):
        results = basic.execute(
            "retrieve (x.id); retrieve (x.v)"
        )
        assert isinstance(results, list) and len(results) == 2

    def test_as_of_through_before_at(self, basic):
        with pytest.raises(ExecutionError):
            basic.execute('retrieve (x.id) as of "1981" through "1980"')

    def test_vacuum_unknown_relation(self, basic):
        with pytest.raises(UnknownRelationError):
            basic.execute('vacuum ghost before "now"')


class TestStatementAtomicityOfErrors:
    def test_failed_statement_leaves_data_queryable(self, basic):
        with pytest.raises(TQuelSemanticError):
            basic.execute('retrieve (x.id) when x overlap "now" '
                          "where x.ghost = 1")
        assert basic.execute("retrieve (x.id)").rows

    def test_failed_ddl_keeps_catalog_consistent(self, basic):
        with pytest.raises(CatalogError):
            basic.execute("modify r to rtree on id")
        # The old structure still answers queries.
        assert basic.execute("retrieve (x.v) where x.id = 1").rows
