"""Smoke tests: every example script runs cleanly and prints its story."""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=120,
        check=True,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert "current state" in proc.stdout
        assert "rollback" in proc.stdout

    def test_employee_history(self):
        proc = run_example("employee_history.py")
        assert "salary history" in proc.stdout
        assert "3000" in proc.stdout

    def test_audit_rollback(self):
        proc = run_example("audit_rollback.py")
        assert "audit trail" in proc.stdout
        assert "3500" in proc.stdout  # the erroneous balance is preserved

    def test_engineering_versions(self):
        proc = run_example("engineering_versions.py")
        assert "bitemporal audit" in proc.stdout
        assert "page reads" in proc.stdout

    def test_benchmark_tour(self):
        proc = run_example("benchmark_tour.py")
        assert "growth rate is 2" in proc.stdout
        assert "Figure 10" in proc.stdout

    def test_workforce_analytics(self):
        proc = run_example("workforce_analytics.py")
        assert "headcount and payroll" in proc.stdout
        assert "coalesced" in proc.stdout
        assert "plan:" in proc.stdout
