"""Integration tests for EXPLAIN: the plans must match the paper's own
narration of how each benchmark query is processed (Section 5.3)."""

import pytest


@pytest.fixture
def bench(temporal_pair):
    return temporal_pair


class TestPaperQueryPlans:
    def test_q01_hashed_access(self, bench):
        plan = bench.explain("retrieve (h.id, h.seq) where h.id = 28")
        assert "keyed hash access on id" in plan
        assert "as of" in plan and "(implicit)" in plan

    def test_q02_isam_access(self, bench):
        plan = bench.explain("retrieve (i.id, i.seq) where i.id = 28")
        assert "keyed isam access on id" in plan

    def test_q03_sequential_scan(self, bench):
        plan = bench.explain('retrieve (h.id, h.seq) as of "08:00 1/1/80"')
        assert "sequential scan" in plan
        assert "1980-01-01 08:00:00" in plan

    def test_q09_detachment_and_substitution(self, bench):
        # "Processing Q09 first scans an ISAM file sequentially doing
        # selection and projection into a temporary relation.  It then
        # performs one hashed access for each ... tuple" (Section 5.3).
        plan = bench.explain(
            "retrieve (h.id, i.id, i.amount) where h.id = i.amount "
            'when h overlap i and i overlap "now"'
        )
        assert "detach i (ti)" in plan
        assert "substitute depth 0: i (temporary(i))" in plan
        assert "substitute depth 1: h (th) via keyed hash access on id" in plan

    def test_q10_roles_reversed(self, bench):
        plan = bench.explain(
            "retrieve (i.id, h.id, h.amount) where i.id = h.amount "
            'when h overlap i and h overlap "now"'
        )
        assert "detach h (th)" in plan
        assert "keyed isam access on id" in plan

    def test_q11_pure_substitution(self, bench):
        plan = bench.explain(
            "retrieve (h.id, i.id) when start of h precede i "
            'as of "4:00 1/1/80"'
        )
        assert "detach" not in plan
        assert "substitute depth 0: h (th) via sequential scan" in plan
        assert "substitute depth 1: i (ti) via sequential scan" in plan

    def test_q12_both_detached(self, bench):
        plan = bench.explain(
            "retrieve (h.id, i.amount) "
            "where h.id = 28 and i.amount = 10010 "
            'when h overlap i as of "now"'
        )
        assert plan.count("detach") == 2
        assert "via keyed hash access on id" in plan


class TestEnhancedPlans:
    def test_two_level_current_only(self, bench):
        bench.execute("modify th to twolevel on id")
        plan = bench.explain(
            'retrieve (h.id) where h.id = 28 when h overlap "now"'
        )
        assert "[primary store only]" in plan

    def test_two_level_version_scan_reads_history(self, bench):
        bench.execute("modify th to twolevel on id")
        plan = bench.explain("retrieve (h.id) where h.id = 28")
        assert "[primary store only]" not in plan

    def test_secondary_index_path(self, bench):
        bench.execute(
            "index on th is amt_idx (amount) "
            "where structure = hash, levels = 2"
        )
        plan = bench.explain(
            "retrieve (h.id) where h.amount = 10010 "
            'when h overlap "now"'
        )
        assert "secondary index amt_idx (hash, current index only)" in plan


class TestOtherShapes:
    def test_aggregate_plan(self, bench):
        plan = bench.explain("retrieve (n = count(h.id))")
        assert "aggregate into a single row" in plan

    def test_grouped_aggregate_plan(self, bench):
        plan = bench.explain(
            "retrieve (h.amount, n = count(h.id by h.amount))"
        )
        assert "aggregate grouped by 1 expression(s)" in plan

    def test_unique_and_into(self, bench):
        plan = bench.explain("retrieve into snap unique (h.id)")
        assert "deduplicate result rows" in plan
        assert "store result into snap" in plan

    def test_explain_rejects_updates(self, bench):
        with pytest.raises(Exception):
            bench.explain("delete h")

    def test_explain_does_not_execute(self, bench):
        before = bench.stats.checkpoint()
        bench.explain(
            "retrieve (h.id, i.id) where h.id = i.amount "
            'when h overlap i and i overlap "now"'
        )
        delta = bench.stats.delta(before)
        assert delta.input_pages == 0
        assert delta.output_pages == 0

    def test_monitor_explain(self, bench):
        import io

        from repro.monitor import Monitor

        out = io.StringIO()
        monitor = Monitor(db=bench, out=out)
        monitor.handle("\\explain retrieve (h.id) where h.id = 28")
        assert "keyed hash access" in out.getvalue()
