"""The paper's Figure 2 example query, end to end.

    retrieve (h.id, h.seq, i.id, i.seq, i.amount)
        valid from start of (h overlap i) to end of (h extend i)
        where h.id = 500 and i.amount = 73700
        when h overlap i
        as of "1981"

"The example query ... inquires the state of a database as of 1981,
shifting back in time.  Retrieved tuples satisfy not only the 'where'
clause, but also the 'when' clause specifying that the two tuples must
have coexisted at some moment.  The 'valid' clause specifies the values of
the 'valid from' and 'valid to' attributes of the result tuples."
"""

import pytest

from repro import Clock, TemporalDatabase, parse_temporal

FIGURE2 = (
    "retrieve (h.id, h.seq, i.id, i.seq, i.amount) "
    "valid from start of (h overlap i) to end of (h extend i) "
    "where h.id = 500 and i.amount = 73700 "
    'when h overlap i as of "1981"'
)


@pytest.fixture
def database():
    clock = Clock(start=parse_temporal("6/1/80"), tick=3600)
    db = TemporalDatabase("figure2", clock=clock)
    for name in ("temporal_h", "temporal_i"):
        db.execute(
            f"create persistent interval {name} "
            "(id = i4, amount = i4, seq = i4, string = c96)"
        )
    db.execute("range of h is temporal_h")
    db.execute("range of i is temporal_i")
    # Recorded mid-1980: tuple 500 and the 73700 amount coexist.
    db.execute(
        'append to temporal_h (id = 500, amount = 11111, seq = 0, '
        'string = "h")'
    )
    db.execute(
        'append to temporal_i (id = 9, amount = 73700, seq = 0, '
        'string = "i") valid from "7/1/80" to "forever"'
    )
    return db


class TestFigure2:
    def test_query_parses_and_answers(self, database):
        result = database.execute(FIGURE2)
        assert len(result.rows) == 1
        row = dict(zip(result.columns, result.rows[0]))
        assert (row["id"], row["id2"], row["amount"]) == (500, 9, 73700)

    def test_valid_clause_computes_intersection_and_span(self, database):
        result = database.execute(FIGURE2)
        row = dict(zip(result.columns, result.rows[0]))
        # 'from start of (h overlap i)': the later of the two starts
        # (i's, recorded valid from 7/1/80)...
        assert row["valid_from"] == parse_temporal("7/1/80")
        # ...'to end of (h extend i)': the span's end is forever.
        assert row["valid_to"] == parse_temporal("forever")

    def test_rollback_shifts_back_in_time(self, database):
        # Changes recorded after 1981 are invisible to the query.
        database.clock.set(parse_temporal("6/1/82"))
        database.execute(
            "replace i (amount = 99999) where i.amount = 73700"
        )
        assert database.execute(FIGURE2).rows  # 1981 still sees 73700
        # As of now, the surviving 73700 fact is the closing version,
        # recording validity until the 1982 replace.
        closing = database.execute(
            "retrieve (i.valid_to) where i.amount = 73700"
        )
        assert [row[0] for row in closing.rows] == [
            parse_temporal("6/1/82") + 3600
        ]
        # The Figure 2 query still joins it with h (they coexisted), the
        # result period spanning per the valid clause.
        now_view = database.execute(
            FIGURE2.replace('as of "1981"', 'as of "now"')
        )
        row = dict(zip(now_view.columns, now_view.rows[0]))
        assert row["valid_from"] == parse_temporal("7/1/80")

    def test_before_the_facts_sees_nothing(self, database):
        early = FIGURE2.replace('"1981"', '"1979"')
        assert database.execute(early).rows == []
