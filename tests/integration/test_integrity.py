"""Integration tests for the integrity checker (repro.engine.integrity)."""

import pytest

from repro.engine.integrity import check_database, check_relation


@pytest.fixture
def healthy(db):
    db.execute("create persistent interval r (id = i4, v = i4, pad = c100)")
    # Load before modify so the hash file gets a real bucket count.
    db.copy_in("r", [(i, 0, "p") for i in range(1, 33)])
    db.execute("modify r to hash on id where fillfactor = 100")
    db.execute("range of x is r")
    for _ in range(3):
        db.execute("replace x (v = x.v + 1)")
    return db


class TestHealthyDatabases:
    def test_hash_relation_clean(self, healthy):
        assert check_relation(healthy.relation("r")) == []

    def test_isam_relation_clean(self, healthy):
        healthy.execute("modify r to isam on id where fillfactor = 50")
        assert check_relation(healthy.relation("r")) == []

    def test_heap_relation_clean(self, healthy):
        healthy.execute("modify r to heap")
        assert check_relation(healthy.relation("r")) == []

    def test_two_level_clean(self, healthy):
        healthy.execute(
            'modify r to twolevel on id where history = "clustered"'
        )
        assert check_relation(healthy.relation("r")) == []

    def test_indexed_relation_clean(self, healthy):
        healthy.execute("index on r is v_idx (v) where levels = 2")
        healthy.execute("replace x (v = 99) where x.id = 5")
        assert check_relation(healthy.relation("r")) == []

    def test_whole_database_clean(self, healthy):
        healthy.execute("create emp (name = c8)")
        healthy.execute('append to emp (name = "a")')
        assert check_database(healthy) == []

    def test_restored_checkpoint_clean(self, healthy, tmp_path):
        from repro import TemporalDatabase

        healthy.save(tmp_path / "ck")
        restored = TemporalDatabase.load(tmp_path / "ck")
        assert check_database(restored) == []


class TestCorruptionDetected:
    def test_misplaced_hash_record(self, healthy):
        relation = healthy.relation("r")
        storage = relation.storage
        # Plant a record in the wrong bucket, bypassing the engine.
        wrong_bucket = 2
        page = storage.file.peek(wrong_bucket)
        victim = storage.codec.encode(
            (wrong_bucket + 1, 0, "x", 0, 1, 0, 1)
        )
        if page.count < page.capacity:
            page.append(victim)
        else:
            page.write(0, victim)
        problems = check_relation(relation)
        assert any(p.kind == "misplaced-record" for p in problems)

    def test_overflow_cycle_detected(self, healthy):
        relation = healthy.relation("r")
        file = relation.storage.file
        head = file.peek(0)
        if head.overflow < 0:
            pytest.skip("bucket 0 grew no chain")
        tail = file.peek(head.overflow)
        tail.set_overflow(0)  # cycle back to the primary page
        problems = check_relation(relation)
        assert any(p.kind == "overflow-cycle" for p in problems)

    def test_row_count_drift_detected(self, healthy):
        relation = healthy.relation("r")
        relation.storage._row_count += 5
        problems = check_relation(relation)
        assert any(p.kind == "row-count" for p in problems)

    def test_inverted_transaction_period(self, db):
        db.execute("create persistent r (id = i4)")
        db.execute("range of x is r")
        db.execute("append to r (id = 1)")
        relation = db.relation("r")
        ((rid, row),) = list(relation.storage.scan())
        bad = relation.schema.with_attribute(row, "transaction_stop", 1)
        relation.storage.update(rid, bad)
        problems = check_relation(relation)
        assert any(p.kind == "inverted-period" for p in problems)

    def test_duplicate_current_version(self, db):
        db.execute("create persistent interval r (id = i4)")
        db.execute("modify r to hash on id")
        db.execute("range of x is r")
        db.execute("append to r (id = 1)")
        relation = db.relation("r")
        # Bypass the engine: insert a second fully-current version.
        relation.storage.insert(
            relation.schema.new_version((1,), now=db.clock.now())
        )
        problems = check_relation(relation)
        assert any(p.kind == "duplicate-current" for p in problems)

    def test_dangling_index_entry(self, healthy):
        healthy.execute("index on r is v_idx (v)")
        relation = healthy.relation("r")
        index = relation.indexes["v_idx"]
        index.add_history(12345, (500 << 12) | 7)  # points past the file
        problems = check_relation(relation)
        assert any(p.kind == "dangling-index-entry" for p in problems)


class TestMonitorCheck:
    def test_check_command(self, healthy):
        import io

        from repro.monitor import Monitor

        out = io.StringIO()
        monitor = Monitor(db=healthy, out=out)
        monitor.handle("\\check")
        assert "integrity check passed" in out.getvalue()

    def test_check_reports_problems(self, healthy):
        import io

        from repro.monitor import Monitor

        healthy.relation("r").storage._row_count += 1
        out = io.StringIO()
        monitor = Monitor(db=healthy, out=out)
        monitor.handle("\\check r")
        assert "PROBLEM" in out.getvalue()
