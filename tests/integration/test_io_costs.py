"""Integration tests: the paper's analytic I/O cost laws, at reduced scale.

These tests pin the numbers the reproduction derives from the paper's page
layout rules: with 64 tuples of 124 bytes (8 per 1024-byte page), a
temporal relation occupies 9 hashed primary pages / 8 ISAM data pages + 1
directory page, and each uniform update pass adds two versions per tuple
(16 pages at 100 % loading).  All the shapes of Figures 5-9 follow.
"""

import pytest

from repro import FOREVER, parse_temporal

N = 64  # tuples; 8 per page at 100 % loading


@pytest.fixture
def bench(temporal_pair):
    return temporal_pair


def q(db, text):
    result = db.execute(text)
    return result.input_pages


def evolve(db, steps=1):
    for _ in range(steps):
        db.execute("replace h (seq = h.seq + 1)")
        db.execute("replace i (seq = i.seq + 1)")


class TestInitialLayout:
    def test_hash_pages(self, bench):
        # ceil(64/8) + 1 spare = 9 primary pages.
        assert bench.relation("th").page_count == 9

    def test_isam_pages(self, bench):
        assert bench.relation("ti").page_count == 9  # 8 data + 1 directory

    def test_tuples_per_page(self, bench):
        assert bench.relation("th").schema.record_size == 124


class TestQ01Law:
    """Hashed keyed access costs 1 + 2n on a temporal relation."""

    def test_cost_series(self, bench):
        costs = []
        for _ in range(4):
            costs.append(q(bench, "retrieve (h.id, h.seq) where h.id = 28"))
            evolve(bench)
        assert costs == [1, 3, 5, 7]

    def test_version_count_grows(self, bench):
        evolve(bench, 2)
        result = bench.execute("retrieve (h.id, h.seq) where h.id = 28")
        # As-of now: current version + one closing version per update.
        assert len(result.rows) == 3


class TestQ02Law:
    """ISAM keyed access costs 2 + 2n (directory + data chain)."""

    def test_cost_series(self, bench):
        costs = []
        for _ in range(4):
            costs.append(q(bench, "retrieve (i.id, i.seq) where i.id = 34"))
            evolve(bench)
        assert costs == [2, 4, 6, 8]


class TestScanLaws:
    def test_q03_scan_equals_hash_size(self, bench):
        evolve(bench, 2)
        cost = q(bench, 'retrieve (h.id, h.seq) as of "08:00 1/1/80"')
        assert cost == bench.relation("th").page_count

    def test_q04_scan_skips_directory(self, bench):
        evolve(bench, 2)
        cost = q(bench, 'retrieve (i.id, i.seq) as of "08:00 1/1/80"')
        assert cost == bench.relation("ti").page_count - 1

    def test_growth_is_16_pages_per_update(self, bench):
        size0 = bench.relation("th").page_count
        evolve(bench, 3)
        grown = bench.relation("th").page_count - size0
        # 128 new versions per pass need >= 16 pages; per-bucket
        # fragmentation (9 buckets) allows a little slack.
        assert 3 * 16 <= grown <= 3 * 18

    def test_q05_same_cost_as_q01(self, bench):
        evolve(bench, 2)
        q01 = q(bench, "retrieve (h.id, h.seq) where h.id = 28")
        q05 = q(
            bench,
            'retrieve (h.id, h.seq) where h.id = 28 when h overlap "now"',
        )
        assert q01 == q05  # conventional structures cannot stop early

    def test_q05_output_constant_q01_grows(self, bench):
        evolve(bench, 3)
        q01 = bench.execute("retrieve (h.id, h.seq) where h.id = 28")
        q05 = bench.execute(
            'retrieve (h.id, h.seq) where h.id = 28 when h overlap "now"'
        )
        assert len(q05.rows) == 1
        assert len(q01.rows) == 4


class TestJoinLaws:
    def test_q09_shape(self, bench):
        # Detach i into a temporary, then one hashed access per tuple.
        cost0 = q(
            bench,
            "retrieve (h.id, i.id, i.amount) where h.id = i.amount "
            'when h overlap i and i overlap "now"',
        )
        # scan of i data (8) + temp traffic + 64 one-page probes.
        assert 64 <= cost0 <= 90

    def test_q09_probe_cost_grows_with_chains(self, bench):
        text = (
            "retrieve (h.id, i.id, i.amount) where h.id = i.amount "
            'when h overlap i and i overlap "now"'
        )
        cost0 = q(bench, text)
        evolve(bench)
        cost1 = q(bench, text)
        # Each probe now reads 1 primary + 2 overflow pages.
        assert cost1 >= cost0 + 2 * N

    def test_q12_shape(self, bench):
        cost = q(
            bench,
            "retrieve (h.id, h.seq, i.id, i.seq, i.amount) "
            "valid from start of (h overlap i) to end of (h extend i) "
            "where h.id = 28 and i.amount = 10010 "
            'when h overlap i as of "now"',
        )
        # hash lookup (1) + isam data scan (8) + two one-page temporaries.
        assert cost == 1 + 8 + 2


class TestGrowthRateLaw:
    def test_temporal_growth_rate_is_two(self, bench):
        text = "retrieve (h.id, h.seq) where h.id = 28"
        cost0 = q(bench, text)
        evolve(bench, 4)
        cost4 = q(bench, text)
        variable = 1  # one primary page, no fixed portion
        growth = (cost4 - cost0) / (variable * 4)
        assert growth == 2.0

    def test_rollback_growth_rate_is_one(self, db):
        db.execute("create persistent rb (id = i4, v = i4, pad = c104)")
        rows = [(i, 0, "p") for i in range(1, N + 1)]
        db.copy_in("rb", rows)
        db.execute("modify rb to hash on id where fillfactor = 100")
        db.execute("range of r is rb")
        cost0 = q(db, "retrieve (r.v) where r.id = 28")
        for _ in range(4):
            db.execute("replace r (v = r.v + 1)")
        cost4 = q(db, "retrieve (r.v) where r.id = 28")
        assert (cost4 - cost0) / 4 == 1.0

    def test_fifty_percent_loading_halves_growth(self, db):
        from repro import FOREVER

        db.execute("create persistent interval half (id = i4, v = i4, pad = c100)")
        stamp = parse_temporal("1/15/80")
        rows = [
            (i, 0, "p", stamp, FOREVER, stamp, FOREVER)
            for i in range(1, N + 1)
        ]
        db.copy_in("half", rows)
        db.execute("modify half to hash on id where fillfactor = 50")
        db.execute("range of f is half")
        cost0 = q(db, "retrieve (f.v) where f.id = 35")
        for _ in range(4):
            db.execute("replace f (v = f.v + 1)")
        cost4 = q(db, "retrieve (f.v) where f.id = 35")
        # Growth rate = 2 x 0.5 = 1 page per update.
        assert (cost4 - cost0) / 4 == 1.0


class TestOutputCosts:
    def test_plain_retrieve_writes_nothing(self, bench):
        result = bench.execute("retrieve (h.id, h.seq) where h.id = 28")
        assert result.output_pages == 0

    def test_join_writes_temporary(self, bench):
        result = bench.execute(
            "retrieve (h.id, i.id, i.amount) where h.id = i.amount "
            'when h overlap i and i overlap "now"'
        )
        assert result.output_pages >= 1
