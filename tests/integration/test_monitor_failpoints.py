"""The monitor's ``\\failpoints`` meta-command."""

from __future__ import annotations

import io

import pytest

from repro import fault
from repro.monitor import Monitor


@pytest.fixture(autouse=True)
def clean_failpoints():
    fault.reset()
    fault.detach_metrics()
    yield
    fault.reset()
    fault.detach_metrics()


@pytest.fixture
def monitor():
    return Monitor(out=io.StringIO())


def output_of(monitor) -> str:
    return monitor.out.getvalue()


class TestFailpointsCommand:
    def test_listing_shows_catalogue(self, monitor):
        monitor.handle("\\failpoints")
        text = output_of(monitor)
        for name in fault.POINTS:
            assert name in text
        assert "inactive" in text

    def test_on_counts_hits_into_metrics(self, monitor):
        monitor.handle("\\failpoints on")
        assert fault.is_active()
        monitor.handle('create r (id = i4)')
        monitor.handle('append to r (id = 1)')
        monitor.handle("\\failpoints")
        assert "hits=" in output_of(monitor)
        counters = monitor.db.metrics.snapshot()["counters"]
        assert counters.get("fault.hits.mutate.insert_version", 0) >= 1
        monitor.handle("\\failpoints off")
        assert not fault.is_active()

    def test_arm_fires_and_reports_error(self, monitor):
        monitor.handle('create r (id = i4)')
        monitor.handle("\\failpoints arm mutate.insert_version")
        assert fault.armed() == {"mutate.insert_version": (1, 1)}
        monitor.handle('append to r (id = 1)')
        assert "failpoint 'mutate.insert_version' fired" in output_of(monitor)
        # One-shot: the retry goes through.
        monitor.handle('append to r (id = 1)')
        monitor.handle("\\failpoints")
        assert "fires=1" in output_of(monitor)

    def test_disarm_and_reset(self, monitor):
        monitor.handle("\\failpoints arm pager.write 5 2")
        assert fault.armed() == {"pager.write": (5, 2)}
        monitor.handle("\\failpoints disarm pager.write")
        assert fault.armed() == {}
        monitor.handle("\\failpoints reset")
        assert not fault.is_active()

    def test_bad_arguments_are_reported(self, monitor):
        monitor.handle("\\failpoints arm no.such.point")
        assert "error" in output_of(monitor)
        assert fault.armed() == {}
        monitor.handle("\\failpoints bogus")
        assert "usage" in output_of(monitor)

    def test_help_lists_the_command(self, monitor):
        monitor.handle("\\?")
        assert "failpoints" in output_of(monitor)
