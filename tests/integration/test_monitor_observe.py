"""Monitor observability meta-commands over every transport.

``\\stats`` and ``\\trace`` work on local in-memory sessions, durable
``file:`` sessions, and remote ``tcp://`` sessions alike; commands that
inspect the in-process engine (``\\metrics``, ``\\slowlog``) refuse
politely over the wire.  The stats rows key on fingerprints, so the
same statement shape -- whatever its literal values or ``$name``
bindings -- accumulates into one row.
"""

from __future__ import annotations

import io

import repro
from repro.engine.database import TemporalDatabase
from repro.monitor import Monitor
from repro.observe.stats import SlowQueryLog, fingerprint
from repro.server.server import ServerThread

SETUP = [
    "create emp (name = c10, sal = i4)",
    'append to emp (name = "ahn", sal = 30000)',
    'append to emp (name = "snodgrass", sal = 42000)',
    "range of e is emp",
]

QUERY_FP = fingerprint('retrieve (e.sal) where e.name = "ahn"')


def make_monitor(session=None, db=None):
    out = io.StringIO()
    return Monitor(session=session, db=db, out=out), out


def run_setup(monitor):
    for statement in SETUP:
        monitor.handle(statement)


class TestStatsCommand:
    def test_local_session_renders_the_store(self):
        monitor, out = make_monitor(db=TemporalDatabase("t"))
        run_setup(monitor)
        monitor.handle('retrieve (e.sal) where e.name = "ahn"')
        monitor.handle("\\stats")
        text = out.getvalue()
        assert "pred/act" in text
        assert QUERY_FP[:40] in text

    def test_file_transport(self, tmp_path):
        with repro.connect(f"file:{tmp_path / 'db'}") as session:
            monitor, out = make_monitor(session=session)
            run_setup(monitor)
            monitor.handle('retrieve (e.sal) where e.name = "ahn"')
            monitor.handle("\\stats 5")
        assert QUERY_FP[:40] in out.getvalue()

    def test_tcp_transport(self):
        db = TemporalDatabase("t")
        with ServerThread(db) as server:
            with repro.connect(server.url) as session:
                monitor, out = make_monitor(session=session)
                run_setup(monitor)
                monitor.handle('retrieve (e.sal) where e.name = "ahn"')
                monitor.handle("\\stats")
        text = out.getvalue()
        assert "needs the in-process engine" not in text
        assert QUERY_FP[:40] in text

    def test_fingerprint_stable_across_literals_and_bindings(self):
        db = TemporalDatabase("t")
        monitor, out = make_monitor(db=db)
        run_setup(monitor)
        # Two literal values and a $name binding: one statement shape.
        monitor.handle('retrieve (e.sal) where e.name = "ahn"')
        monitor.handle('retrieve (e.sal) where e.name = "snodgrass"')
        query = monitor.session.prepare(
            "retrieve (e.sal) where e.name = $name"
        )
        query.execute(params={"name": "ahn"})
        entry = db.query_stats.get(QUERY_FP)
        assert entry is not None
        assert entry.calls == 3
        assert entry.plan_cache_hits >= 1
        monitor.handle("\\stats")
        # Exactly one stats row carries this shape.
        rows = [
            line for line in out.getvalue().splitlines()
            if QUERY_FP[:40] in line
        ]
        assert len(rows) == 1

    def test_bad_count_prints_usage(self):
        monitor, out = make_monitor(db=TemporalDatabase("t"))
        monitor.handle("\\stats many")
        assert "usage: \\stats [n]" in out.getvalue()


class TestTraceCommand:
    def test_local_toggle_and_last(self):
        monitor, out = make_monitor(db=TemporalDatabase("t"))
        run_setup(monitor)
        monitor.handle("\\trace on")
        monitor.handle("retrieve (e.sal)")
        monitor.handle("\\trace last")
        monitor.handle("\\trace off")
        text = out.getvalue()
        assert "tracing on" in text
        assert "statement" in text
        assert "tracing off" in text

    def test_tcp_last_merges_server_spans(self):
        db = TemporalDatabase("t")
        with ServerThread(db) as server:
            with repro.connect(server.url) as session:
                monitor, out = make_monitor(session=session)
                run_setup(monitor)
                monitor.handle("\\trace on")
                monitor.handle("retrieve (e.sal)")
                monitor.handle("\\trace last")
        text = out.getvalue()
        assert "lane=client" in text
        assert "lane=server" in text

    def test_no_trace_yet_hints(self):
        monitor, out = make_monitor(db=TemporalDatabase("t"))
        monitor.handle("\\trace on")
        monitor.handle("\\trace last")
        assert "no traced statement yet" in out.getvalue()

    def test_bad_mode_prints_usage(self):
        monitor, out = make_monitor(db=TemporalDatabase("t"))
        monitor.handle("\\trace sideways")
        assert "usage: \\trace [on|off|last]" in out.getvalue()


class TestMetricsCommand:
    def test_local_renders_counters(self):
        monitor, out = make_monitor(db=TemporalDatabase("t"))
        run_setup(monitor)
        monitor.handle("retrieve (e.sal)")
        monitor.handle("\\metrics")
        assert "statements" in out.getvalue()

    def test_refused_over_tcp(self):
        db = TemporalDatabase("t")
        with ServerThread(db) as server:
            with repro.connect(server.url) as session:
                monitor, out = make_monitor(session=session)
                monitor.handle("\\metrics")
        assert "needs the in-process engine" in out.getvalue()


class TestSlowlogCommand:
    def test_local_shows_and_clears(self):
        db = TemporalDatabase("t")
        db.slowlog = SlowQueryLog(threshold_ms=0.0)
        monitor, out = make_monitor(db=db)
        run_setup(monitor)
        monitor.handle('retrieve (e.sal) where e.name = "ahn"')
        monitor.handle("\\slowlog")
        text = out.getvalue()
        assert 'retrieve (e.sal) where e.name = "ahn"' in text
        monitor.handle("\\slowlog clear")
        assert db.slowlog.dump() == []

    def test_refused_over_tcp(self):
        db = TemporalDatabase("t")
        with ServerThread(db) as server:
            with repro.connect(server.url) as session:
                monitor, out = make_monitor(session=session)
                monitor.handle("\\slowlog")
        assert "needs the in-process engine" in out.getvalue()


class TestTelemetryCommand:
    def test_local_exports_artifacts(self, tmp_path):
        monitor, out = make_monitor(db=TemporalDatabase("t"))
        run_setup(monitor)
        monitor.handle("\\trace on")
        monitor.handle("retrieve (e.sal)")
        monitor.handle(f"\\telemetry {tmp_path / 'telemetry'}")
        text = out.getvalue()
        assert "wrote trace:" in text
        assert "wrote stats:" in text
        assert (tmp_path / "telemetry" / "stats.json").exists()

    def test_tcp_without_server_dir_reports_error(self):
        db = TemporalDatabase("t")
        with ServerThread(db) as server:
            with repro.connect(server.url) as session:
                monitor, out = make_monitor(session=session)
                run_setup(monitor)
                try:
                    monitor.handle("\\telemetry anywhere")
                except repro.ReproError:
                    return  # refused: no operator-configured directory
        # If the monitor caught it itself, it must have printed the
        # refusal rather than claiming success.
        assert "wrote" not in out.getvalue()

    def test_usage_without_directory(self):
        monitor, out = make_monitor(db=TemporalDatabase("t"))
        monitor.handle("\\telemetry")
        assert "usage: \\telemetry <directory>" in out.getvalue()
