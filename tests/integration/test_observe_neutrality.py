"""Instrumentation neutrality: tracing/metrics never change page counts.

The paper's entire result set is page-read counts; the hard invariant of
the observability layer is that turning it on does not move a single
number.  These tests run the benchmark queries on two identically-built
databases -- one untraced, one with tracing and metrics fully enabled --
and require byte-identical costs, then exercise ``EXPLAIN ANALYZE`` over
every benchmark query.
"""

from __future__ import annotations

import pytest

from repro.bench.evolve import evolve_uniform
from repro.bench.queries import benchmark_queries
from repro.bench.runner import measure_suite, trace_queries
from repro.bench.workload import WorkloadConfig, build_database
from repro.catalog.schema import DatabaseType

SMALL = dict(tuples=64, seed=7)

PIPELINE_STAGES = ("lex", "parse", "semantics", "plan", "execute")


def build(db_type=DatabaseType.TEMPORAL, loading=100, updates=2):
    bench = build_database(
        WorkloadConfig(db_type=db_type, loading=loading, **SMALL)
    )
    if updates and db_type is not DatabaseType.STATIC:
        evolve_uniform(bench, steps=updates)
    return bench


@pytest.mark.parametrize(
    "db_type",
    [
        DatabaseType.STATIC,
        DatabaseType.ROLLBACK,
        DatabaseType.HISTORICAL,
        DatabaseType.TEMPORAL,
    ],
)
def test_tracing_and_metrics_do_not_change_page_counts(db_type):
    plain = build(db_type)
    observed = build(db_type)
    observed.db.tracer.enable()
    assert observed.db.metrics.enabled

    baseline = measure_suite(plain)
    traced = measure_suite(observed)

    assert set(baseline) == set(traced)
    for query_id, cost in baseline.items():
        assert traced[query_id] == cost, (
            f"{db_type.value} {query_id}: instrumentation changed the "
            f"measured cost ({cost} -> {traced[query_id]})"
        )


def test_span_io_matches_statement_io():
    bench = build()
    db = bench.db
    texts = benchmark_queries(bench.config)
    with db.tracer.force():
        for query_id, text in texts.items():
            if text is None:
                continue
            db.pool.flush_all()
            result = db.execute(text)
            span = db.tracer.last
            assert span.io.input_pages == result.input_pages, query_id
            assert span.io.output_pages == result.output_pages, query_id


def test_trace_queries_covers_suite_with_full_pipeline():
    bench = build()
    spans = trace_queries(bench)
    expected = {
        query_id
        for query_id, text in benchmark_queries(bench.config).items()
        if text is not None
    }
    assert set(spans) == expected
    for query_id, span in spans.items():
        stages = [child.name for child in span.children]
        assert stages == list(PIPELINE_STAGES), query_id
        assert span.duration > 0
        # tracing stays off outside the helper
    assert not bench.db.tracer.enabled


def test_explain_analyze_all_benchmark_queries():
    bench = build()
    db = bench.db
    for query_id, text in benchmark_queries(bench.config).items():
        if text is None:
            continue
        rendered = db.explain(text, analyze=True)
        assert rendered.startswith("plan:"), query_id
        assert "measured:" in rendered, query_id
        for stage in PIPELINE_STAGES:
            assert f"─ {stage}" in rendered, (query_id, stage)
        assert "result:" in rendered, query_id


def test_explain_analyze_page_counts_match_untraced_run():
    plain = build()
    analyzed = build()
    texts = benchmark_queries(plain.config)
    for query_id, text in texts.items():
        if text is None:
            continue
        plain.db.pool.flush_all()
        expected = plain.db.execute(text)
        analyzed.db.pool.flush_all()
        rendered = analyzed.db.explain(text, analyze=True)
        line = next(
            part
            for part in rendered.split("\n")
            if part.strip().startswith("result:")
        )
        assert f"input {expected.input_pages} page(s)" in line, query_id
        assert f"output {expected.output_pages} page(s)" in line, query_id


@pytest.mark.parametrize(
    "db_type",
    [
        DatabaseType.STATIC,
        DatabaseType.ROLLBACK,
        DatabaseType.HISTORICAL,
        DatabaseType.TEMPORAL,
    ],
)
def test_sweep_cells_identical_without_batch_execution(db_type):
    """Every sweep cell matches the tuple-at-a-time reference path.

    The batch kernel defaults on, so the default sweep (the one
    ``repro.bench.validate`` scores against the paper's 482 published
    cells) is a batched sweep; cell-for-cell equality with batching
    disabled means the validation scorecard is identical on both paths.
    """
    from repro.bench.runner import BenchmarkRun

    config = WorkloadConfig(db_type=db_type, loading=100, **SMALL)
    batched = BenchmarkRun(config, max_update_count=2).run()

    bench = build_database(config)
    bench.db.batch_execution = False
    top_uc = 0 if db_type is DatabaseType.STATIC else 2
    for update_count in range(top_uc + 1):
        if update_count:
            evolve_uniform(bench, steps=1)
        for query_id, cost in measure_suite(bench).items():
            if cost is None:
                continue
            assert batched.costs[query_id][update_count] == cost, (
                query_id,
                update_count,
            )


def test_sweep_cells_unaffected_by_instrumentation():
    """A benchmark sweep's every cell is identical with tracing enabled.

    This is the same protocol ``repro.bench.validate`` checks against the
    paper's published tables, so identical cells here means identical
    validation verdicts with and without instrumentation.
    """
    from repro.bench.runner import BenchmarkRun

    config = WorkloadConfig(
        db_type=DatabaseType.TEMPORAL, loading=100, **SMALL
    )
    plain = BenchmarkRun(config, max_update_count=2).run()

    bench = build_database(config)
    bench.db.tracer.enable()
    for update_count in range(3):
        if update_count:
            evolve_uniform(bench, steps=1)
        for query_id, cost in measure_suite(bench).items():
            if cost is None:
                continue
            assert plain.costs[query_id][update_count] == cost, (
                query_id,
                update_count,
            )


@pytest.mark.parametrize(
    "db_type",
    [
        DatabaseType.STATIC,
        DatabaseType.ROLLBACK,
        DatabaseType.HISTORICAL,
        DatabaseType.TEMPORAL,
    ],
)
def test_statement_atomicity_is_accounting_neutral(db_type):
    """The undo scope (page pre-images, meta snapshots) is unmetered:
    building, evolving and measuring with atomic statements disabled
    yields byte-identical costs and sizes."""
    atomic = build(db_type, updates=0)
    bare = build(db_type, updates=0)
    bare.db.atomic_statements = False
    assert atomic.db.atomic_statements
    if db_type is not DatabaseType.STATIC:
        evolve_uniform(atomic, steps=2)
        evolve_uniform(bare, steps=2)
    assert atomic.sizes() == bare.sizes()
    assert measure_suite(atomic) == measure_suite(bare)


def test_fault_counting_is_accounting_neutral():
    """Counting failpoint hits (the monitor's ``\\failpoints on``) is
    plain Python arithmetic and never moves a page count."""
    from repro import fault

    fault.reset()
    plain = build(DatabaseType.TEMPORAL)
    baseline = measure_suite(plain)
    try:
        fault.set_counting(True)
        counted = build(DatabaseType.TEMPORAL)
        assert measure_suite(counted) == baseline
        assert fault.counts()["pager.write"][0] > 0
    finally:
        fault.reset()


@pytest.mark.parametrize(
    "db_type",
    [
        DatabaseType.STATIC,
        DatabaseType.ROLLBACK,
        DatabaseType.HISTORICAL,
        DatabaseType.TEMPORAL,
    ],
)
def test_full_telemetry_stack_is_accounting_neutral(db_type, tmp_path):
    """Recorder (debug level), heatmap, tracer and exports all enabled
    yield byte-identical page counts to a bare database, and exporting
    telemetry mid-run moves nothing either."""
    from repro.observe import events as observe_events
    from repro.observe.export import export_telemetry

    plain = build(db_type)
    observed = build(db_type)
    db = observed.db
    db.tracer.enable()
    db.recorder.min_level = observe_events.DEBUG
    db.heatmap.enable()

    baseline = measure_suite(plain)
    assert measure_suite(observed) == baseline
    assert len(db.recorder.dump(kind="statement.end")) > 0
    assert db.heatmap.files(), "an enabled heatmap must capture accesses"

    written = export_telemetry(db, tmp_path / "telemetry")
    assert set(written) >= {"trace", "metrics_prom", "metrics_json", "events"}
    assert measure_suite(observed) == measure_suite(plain)


def test_heatmap_totals_equal_metered_io():
    """The heatmap is a spatial decomposition of exactly the metered
    accesses: per file, its totals equal the I/O meter's delta."""
    bench = build(DatabaseType.TEMPORAL)
    db = bench.db
    db.pool.flush_all()
    db.heatmap.enable()
    before = db.stats.checkpoint()
    measure_suite(bench)
    delta = db.stats.delta(before)
    for name, counters in delta.by_relation.items():
        if name.startswith("_temp"):
            continue  # temporaries are recreated per statement
        reads, writes = db.heatmap.totals(name)
        assert (reads, writes) == (counters.reads, counters.writes), name


def test_sweep_cells_identical_with_full_telemetry():
    """A full sweep's every cell is identical with the recorder at debug
    level, the heatmap capturing and the tracer on -- the telemetry
    analogue of the validation-protocol instrumentation test above."""
    from repro.bench.runner import BenchmarkRun
    from repro.observe import events as observe_events

    config = WorkloadConfig(
        db_type=DatabaseType.TEMPORAL, loading=100, **SMALL
    )
    plain = BenchmarkRun(config, max_update_count=2).run()

    bench = build_database(config)
    bench.db.tracer.enable()
    bench.db.recorder.min_level = observe_events.DEBUG
    bench.db.heatmap.enable()
    for update_count in range(3):
        if update_count:
            evolve_uniform(bench, steps=1)
        for query_id, cost in measure_suite(bench).items():
            if cost is None:
                continue
            assert plain.costs[query_id][update_count] == cost, (
                query_id,
                update_count,
            )


def test_checksummed_checkpoint_round_trip_is_accounting_neutral(tmp_path):
    """Page checksums live only in the checkpoint files: a database
    restored from a checksummed checkpoint measures identically."""
    bench = build(DatabaseType.TEMPORAL)
    baseline = measure_suite(bench)
    bench.db.save(tmp_path / "ckpt")
    from repro import TemporalDatabase

    restored = TemporalDatabase.load(tmp_path / "ckpt")
    bench.db = restored
    restored.execute(f"range of h is {bench.h_name}")
    restored.execute(f"range of i is {bench.i_name}")
    assert measure_suite(bench) == baseline
