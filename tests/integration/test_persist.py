"""Integration tests: database checkpoint/restore (repro.engine.persist).

The restored database must answer queries with the same rows *and the
same page counts* -- physical layout is part of what the benchmark
measures.
"""

import pytest

from repro import TemporalDatabase
from repro.engine.persist import PersistError


@pytest.fixture
def evolved(db):
    db.execute(
        "create persistent interval part (id = i4, qty = i4, pad = c100)"
    )
    db.execute("modify part to hash on id where fillfactor = 100")
    db.execute("range of p is part")
    for i in range(1, 33):
        db.execute(f"append to part (id = {i}, qty = {i * 10})")
    for _ in range(3):
        db.execute("replace p (qty = p.qty + 1)")
    return db


def checkpoint(db, tmp_path):
    target = tmp_path / "ckpt"
    db.save(target)
    return TemporalDatabase.load(target)


class TestRoundTrip:
    def test_rows_identical(self, evolved, tmp_path):
        restored = checkpoint(evolved, tmp_path)
        query = 'retrieve (p.id, p.qty) as of "beginning" through "forever"'
        assert sorted(restored.execute(query).rows) == sorted(
            evolved.execute(query).rows
        )

    def test_page_counts_identical(self, evolved, tmp_path):
        restored = checkpoint(evolved, tmp_path)
        assert (
            restored.relation("part").page_count
            == evolved.relation("part").page_count
        )

    def test_io_costs_identical(self, evolved, tmp_path):
        restored = checkpoint(evolved, tmp_path)
        for query in (
            "retrieve (p.qty) where p.id = 7",
            'retrieve (p.qty) as of "beginning" through "forever"',
        ):
            assert (
                restored.execute(query).input_pages
                == evolved.execute(query).input_pages
            )

    def test_clock_and_ranges_survive(self, evolved, tmp_path):
        restored = checkpoint(evolved, tmp_path)
        assert restored.clock.now() == evolved.clock.now()
        assert restored.ranges == evolved.ranges

    def test_updates_continue_after_restore(self, evolved, tmp_path):
        restored = checkpoint(evolved, tmp_path)
        restored.execute("replace p (qty = p.qty + 1) where p.id = 7")
        result = restored.execute(
            'retrieve (p.qty) where p.id = 7 when p overlap "now"'
        )
        assert result.rows[0][0] == 74

    def test_catalog_restored(self, evolved, tmp_path):
        restored = checkpoint(evolved, tmp_path)
        restored.execute("range of c is relations")
        rows = restored.execute(
            'retrieve (c.structure) where c.relname = "part"'
        ).rows
        assert rows == [("hash",)]


class TestStructures:
    def test_isam_restores_directory(self, db, tmp_path):
        db.execute("create persistent r (id = i4, pad = c108)")
        db.execute("range of x is r")
        db.copy_in("r", [(i, "p") for i in range(1, 65)])
        db.execute("modify r to isam on id where fillfactor = 50")
        restored = checkpoint(db, tmp_path)
        original_cost = db.execute("retrieve (x.id) where x.id = 34")
        restored_cost = restored.execute("retrieve (x.id) where x.id = 34")
        assert restored_cost.rows == original_cost.rows
        assert restored_cost.input_pages == original_cost.input_pages

    def test_two_level_store_restores_both_areas(self, db, tmp_path):
        db.execute("create persistent interval r (id = i4, v = i4)")
        db.execute("range of x is r")
        for i in range(1, 9):
            db.execute(f"append to r (id = {i}, v = 0)")
        for _ in range(4):
            db.execute("replace x (v = x.v + 1)")
        db.execute(
            'modify r to twolevel on id where history = "clustered"'
        )
        restored = checkpoint(db, tmp_path)
        store = restored.relation("r").storage
        assert store.primary_pages == db.relation("r").storage.primary_pages
        assert store.history_pages == db.relation("r").storage.history_pages
        query = "retrieve (x.v) where x.id = 3"
        assert (
            restored.execute(query).input_pages
            == db.execute(query).input_pages
        )

    def test_secondary_index_restored_and_maintained(self, db, tmp_path):
        db.execute("create persistent interval r (id = i4, v = i4)")
        db.execute("modify r to hash on id")
        db.execute("index on r is v_idx (v) where levels = 2")
        db.execute("range of x is r")
        for i in range(1, 9):
            db.execute(f"append to r (id = {i}, v = {100 + i})")
        restored = checkpoint(db, tmp_path)
        result = restored.execute(
            'retrieve (x.id) where x.v = 105 when x overlap "now"'
        )
        assert [row[0] for row in result.rows] == [5]
        # The restored index keeps absorbing updates.
        restored.execute("replace x (v = 999) where x.id = 5")
        again = restored.execute(
            'retrieve (x.id) where x.v = 999 when x overlap "now"'
        )
        assert [row[0] for row in again.rows] == [5]

    def test_event_relation_roundtrip(self, db, tmp_path):
        db.execute("create event m (probe = c8, value = i4)")
        db.execute('append to m (probe = "t1", value = 7) valid at "2/15/80"')
        restored = checkpoint(db, tmp_path)
        restored.execute("range of e is m")
        result = restored.execute(
            'retrieve (e.value) when e overlap "2/15/80"'
        )
        assert result.rows[0][0] == 7


class TestErrors:
    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(PersistError):
            TemporalDatabase.load(tmp_path / "nowhere")

    def test_corrupt_page_file(self, evolved, tmp_path):
        target = tmp_path / "ckpt"
        evolved.save(target)
        (target / "part.pages").write_bytes(b"garbage")
        with pytest.raises(PersistError):
            TemporalDatabase.load(target)

    def test_save_is_idempotent(self, evolved, tmp_path):
        target = tmp_path / "ckpt"
        evolved.save(target)
        evolved.save(target)  # overwrite in place
        restored = TemporalDatabase.load(target)
        assert restored.relation("part").row_count == (
            evolved.relation("part").row_count
        )
