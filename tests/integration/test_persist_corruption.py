"""Corruption round-trips: every damaged checkpoint is detected with a
structured error naming the file (and page), and salvage mode recovers
what is intact."""

from __future__ import annotations

import json
import struct

import pytest

from repro.engine import persist
from repro.engine.persist import (
    ChecksumError,
    FormatVersionError,
    PersistError,
    TrailingGarbageError,
    TruncatedFileError,
)
from tests.conftest import make_db


@pytest.fixture
def checkpoint(tmp_path):
    """A saved two-relation database; returns (directory, original db)."""
    db = make_db()
    db.execute("create persistent interval r (id = i4, v = i4)")
    db.execute("modify r to hash on id where fillfactor = 100")
    db.execute("create persistent s (id = i4, v = i4)")
    db.execute("range of x is r")
    for i in range(1, 20):
        db.execute(f"append to r (id = {i}, v = {i})")
        db.execute(f"append to s (id = {i}, v = {i})")
    root = tmp_path / "ckpt"
    db.save(root)
    return root, db


def _flip_bit(path, offset):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0x40
    path.write_bytes(bytes(data))


class TestCorruptionDetection:
    def test_bit_flip_in_page_image(self, checkpoint):
        root, _ = checkpoint
        target = root / "r.pages"
        # Well inside the first page image: header + page header + 100.
        _flip_bit(target, persist._HEADER.size + persist._PAGE_HEADER.size + 100)
        with pytest.raises(ChecksumError) as excinfo:
            persist.load(root)
        assert excinfo.value.path == str(target)
        assert excinfo.value.page == 0

    def test_bit_flip_in_file_header(self, checkpoint):
        root, _ = checkpoint
        target = root / "r.pages"
        data = bytearray(target.read_bytes())
        data[7] ^= 0x01  # page-count field: structural checks catch it
        target.write_bytes(bytes(data))
        with pytest.raises(PersistError) as excinfo:
            persist.load(root)
        assert excinfo.value.path == str(target)

    def test_truncated_page_image(self, checkpoint):
        root, _ = checkpoint
        target = root / "r.pages"
        data = target.read_bytes()
        target.write_bytes(data[:-100])
        with pytest.raises(TruncatedFileError) as excinfo:
            persist.load(root)
        assert excinfo.value.path == str(target)
        assert excinfo.value.page is not None

    def test_truncated_mid_page_header(self, checkpoint):
        # Cutting inside a page header must not leak a bare struct.error.
        root, _ = checkpoint
        target = root / "r.pages"
        data = target.read_bytes()
        target.write_bytes(data[: persist._HEADER.size + 2])
        with pytest.raises(TruncatedFileError):
            persist.load(root)

    def test_empty_page_file(self, checkpoint):
        root, _ = checkpoint
        (root / "r.pages").write_bytes(b"")
        with pytest.raises(TruncatedFileError):
            persist.load(root)

    def test_trailing_garbage_rejected(self, checkpoint):
        root, _ = checkpoint
        target = root / "r.pages"
        with open(target, "ab") as handle:
            handle.write(b"\x00" * 7)
        with pytest.raises(TrailingGarbageError) as excinfo:
            persist.load(root)
        assert excinfo.value.path == str(target)
        assert "7 byte(s)" in str(excinfo.value)

    def test_page_file_version_bump(self, checkpoint):
        root, _ = checkpoint
        target = root / "r.pages"
        data = bytearray(target.read_bytes())
        struct.pack_into("<H", data, 4, persist._VERSION + 1)
        target.write_bytes(bytes(data))
        with pytest.raises(FormatVersionError) as excinfo:
            persist.load(root)
        assert excinfo.value.path == str(target)

    def test_manifest_version_bump(self, checkpoint):
        root, _ = checkpoint
        manifest_path = root / persist.MANIFEST
        manifest = json.loads(manifest_path.read_text(encoding="ascii"))
        manifest["format"] = persist._VERSION + 1
        manifest_path.write_text(json.dumps(manifest), encoding="ascii")
        with pytest.raises(FormatVersionError):
            persist.load(root)

    def test_wrong_magic(self, checkpoint):
        root, _ = checkpoint
        target = root / "r.pages"
        data = bytearray(target.read_bytes())
        data[:4] = b"NOPE"
        target.write_bytes(bytes(data))
        with pytest.raises(PersistError) as excinfo:
            persist.load(root)
        assert "not a tquel-repro page file" in str(excinfo.value)

    def test_corrupt_manifest_is_wrapped(self, checkpoint):
        # A mangled manifest raises PersistError, never a bare
        # json.JSONDecodeError.
        root, _ = checkpoint
        manifest_path = root / persist.MANIFEST
        manifest_path.write_text("{not json", encoding="ascii")
        with pytest.raises(PersistError) as excinfo:
            persist.load(root)
        assert excinfo.value.path == str(manifest_path)

    def test_missing_page_file(self, checkpoint):
        root, _ = checkpoint
        (root / "s.pages").unlink()
        with pytest.raises(PersistError) as excinfo:
            persist.load(root)
        assert excinfo.value.path == str(root / "s.pages")

    def test_missing_manifest_hints_at_recovery(self, checkpoint, tmp_path):
        root, _ = checkpoint
        (root / persist.MANIFEST).unlink()
        # Leave a journal sibling so the hint fires.
        (tmp_path / "ckpt.tmp").mkdir()
        with pytest.raises(PersistError) as excinfo:
            persist.load(root)
        assert "recover_checkpoint" in str(excinfo.value)


class TestSalvage:
    def test_salvage_recovers_intact_relations(self, checkpoint):
        root, original = checkpoint
        _flip_bit(
            root / "r.pages",
            persist._HEADER.size + persist._PAGE_HEADER.size + 50,
        )
        db = persist.load(root, salvage=True)
        assert db.salvage_report["recovered"] == ["s"]
        assert [
            entry["relation"] for entry in db.salvage_report["skipped"]
        ] == ["r"]
        assert "checksum" in db.salvage_report["skipped"][0]["error"]
        # The survivor answers queries with the original contents.
        db.execute("range of y is s")
        rows = db.execute("retrieve (y.id, y.v)").rows
        original.execute("range of y is s")
        assert sorted(rows) == sorted(original.execute(
            "retrieve (y.id, y.v)"
        ).rows)
        # The damaged relation is fully absent, not half-loaded.
        assert "r" not in db.relation_names()

    def test_salvage_without_damage_recovers_everything(self, checkpoint):
        root, _ = checkpoint
        db = persist.load(root, salvage=True)
        assert sorted(db.salvage_report["recovered"]) == ["r", "s"]
        assert db.salvage_report["skipped"] == []

    def test_without_salvage_damage_is_fatal(self, checkpoint):
        root, _ = checkpoint
        _flip_bit(
            root / "s.pages",
            persist._HEADER.size + persist._PAGE_HEADER.size + 50,
        )
        with pytest.raises(ChecksumError):
            persist.load(root)

    def test_public_api_exposes_salvage_and_errors(self, checkpoint):
        # Library users work through the package surface: the error
        # classes are package exports and the classmethod forwards
        # ``salvage``.
        import repro

        root, _ = checkpoint
        _flip_bit(
            root / "r.pages",
            persist._HEADER.size + persist._PAGE_HEADER.size + 50,
        )
        with pytest.raises(repro.ChecksumError) as excinfo:
            repro.TemporalDatabase.load(root)
        assert isinstance(excinfo.value, repro.PersistError)
        db = repro.TemporalDatabase.load(root, salvage=True)
        assert db.salvage_report["recovered"] == ["s"]


class TestRoundTrip:
    def test_clean_round_trip_is_exact(self, checkpoint):
        root, original = checkpoint
        restored = persist.load(root)
        for name in original.relation_names():
            for file_name in persist._relation_files(original.relation(name)):
                a = original.pool.file(file_name)
                b = restored.pool.file(file_name)
                assert a.page_count == b.page_count
                for page_id in range(a.page_count):
                    assert (
                        a.peek(page_id).to_bytes()
                        == b.peek(page_id).to_bytes()
                    )

    def test_resave_replaces_checkpoint_atomically(self, checkpoint):
        root, original = checkpoint
        original.execute("append to r (id = 99, v = 99)")
        original.save(root)
        restored = persist.load(root)
        restored.execute("range of x is r")
        rows = restored.execute("retrieve (x.id) where x.id = 99").rows
        assert len(rows) == 1
        # No journal leftovers after a clean save.
        assert persist.recover_checkpoint(root) == "clean"
