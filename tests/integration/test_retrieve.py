"""Integration tests: the query processor (decomposition, access paths,
target lists, unique, into)."""

import pytest

from repro.errors import ExecutionError, TQuelSemanticError


@pytest.fixture
def shop(db):
    db.execute("create parts (pnum = i4, pname = c12, weight = i4)")
    db.execute("create supply (snum = i4, pnum = i4, qty = i4)")
    db.execute("range of p is parts")
    db.execute("range of s is supply")
    for pnum, pname, weight in (
        (1, "bolt", 5), (2, "nut", 3), (3, "washer", 1), (4, "cam", 20),
    ):
        db.execute(
            f'append to parts (pnum = {pnum}, pname = "{pname}", '
            f"weight = {weight})"
        )
    for snum, pnum, qty in (
        (10, 1, 100), (10, 2, 50), (20, 1, 30), (20, 4, 70),
    ):
        db.execute(
            f"append to supply (snum = {snum}, pnum = {pnum}, qty = {qty})"
        )
    return db


class TestTargetLists:
    def test_expressions_in_targets(self, shop):
        result = shop.execute(
            "retrieve (p.pname, grams = p.weight * 1000) where p.pnum = 1"
        )
        assert result.rows == [("bolt", 5000)]
        assert result.columns == ["pname", "grams"]

    def test_constant_target(self, shop):
        result = shop.execute('retrieve (tag = "x", p.pnum) where p.pnum = 2')
        assert result.rows == [("x", 2)]

    def test_arithmetic_division_truncates(self, shop):
        result = shop.execute("retrieve (half = p.weight / 2) where p.pnum = 1")
        assert result.rows == [(2,)]

    def test_unary_minus(self, shop):
        result = shop.execute("retrieve (n = -p.weight) where p.pnum = 2")
        assert result.rows == [(-3,)]

    def test_division_by_zero_raises(self, shop):
        with pytest.raises(ExecutionError):
            shop.execute("retrieve (x = p.weight / 0)")


class TestPredicates:
    def test_comparison_operators(self, shop):
        heavy = shop.execute("retrieve (p.pname) where p.weight >= 5")
        assert sorted(r[0] for r in heavy.rows) == ["bolt", "cam"]
        light = shop.execute("retrieve (p.pname) where p.weight < 3")
        assert [r[0] for r in light.rows] == ["washer"]

    def test_not_equal(self, shop):
        result = shop.execute("retrieve (p.pnum) where p.pname != \"nut\"")
        assert len(result.rows) == 3

    def test_or_predicate(self, shop):
        result = shop.execute(
            "retrieve (p.pname) where p.pnum = 1 or p.weight = 1"
        )
        assert sorted(r[0] for r in result.rows) == ["bolt", "washer"]

    def test_not_predicate(self, shop):
        result = shop.execute(
            "retrieve (p.pname) where not (p.weight > 3)"
        )
        assert sorted(r[0] for r in result.rows) == ["nut", "washer"]

    def test_string_comparison(self, shop):
        result = shop.execute('retrieve (p.pnum) where p.pname = "cam"')
        assert result.rows == [(4,)]


class TestJoins:
    def test_two_variable_join(self, shop):
        result = shop.execute(
            "retrieve (s.snum, p.pname) where s.pnum = p.pnum "
            "and s.qty > 60"
        )
        assert sorted(result.rows) == [(10, "bolt"), (20, "cam")]

    def test_join_uses_keyed_inner_when_available(self, shop):
        shop.execute("modify parts to hash on pnum")
        result = shop.execute(
            "retrieve (s.snum, p.pname) where s.pnum = p.pnum"
        )
        assert len(result.rows) == 4

    def test_self_join(self, shop):
        shop.execute("range of q is parts")
        result = shop.execute(
            "retrieve (p.pname, q.pname) "
            "where p.weight = q.weight and p.pnum != q.pnum"
        )
        assert result.rows == []

    def test_three_variable_join(self, shop):
        shop.execute("create supplier (snum = i4, city = c12)")
        shop.execute('append to supplier (snum = 10, city = "chapelhill")')
        shop.execute('append to supplier (snum = 20, city = "durham")')
        shop.execute("range of u is supplier")
        result = shop.execute(
            "retrieve (u.city, p.pname) "
            "where u.snum = s.snum and s.pnum = p.pnum and p.pnum = 4"
        )
        assert result.rows == [("durham", "cam")]

    def test_join_with_detachment_projects_temporary(self, shop):
        # The one-variable clause on s detaches it into a temporary.
        result = shop.execute(
            "retrieve (p.pname, s.qty) "
            "where s.qty > 60 and s.pnum = p.pnum"
        )
        assert sorted(result.rows) == [("bolt", 100), ("cam", 70)]

    def test_cartesian_product(self, shop):
        result = shop.execute("retrieve (p.pnum, s.snum)")
        assert len(result.rows) == 16

    def test_variable_only_in_where(self, shop):
        # s appears in the qualification only: still a join (semi-join
        # effect with duplicates per match).
        result = shop.execute(
            "retrieve (p.pname) where s.pnum = p.pnum and s.qty > 90"
        )
        assert [row[0] for row in result.rows] == ["bolt"]

    def test_self_insert_select_no_halloween(self, shop):
        # Appending rows computed from the same relation must not feed on
        # its own insertions (inserts are deferred).
        shop.execute(
            "append to parts (pnum = p.pnum + 100, pname = p.pname) "
            "where p.weight > 3"
        )
        result = shop.execute("retrieve (p.pnum)")
        assert len(result.rows) == 6  # 4 originals + 2 copies


class TestUniqueAndInto:
    def test_unique_removes_duplicates(self, shop):
        plain = shop.execute("retrieve (s.snum)")
        unique = shop.execute("retrieve unique (s.snum)")
        assert len(plain.rows) == 4
        assert sorted(unique.rows) == [(10,), (20,)]

    def test_into_then_query(self, shop):
        shop.execute(
            "retrieve into heavy (p.pnum, p.pname) where p.weight > 4"
        )
        shop.execute("range of hv is heavy")
        result = shop.execute("retrieve (hv.pname)")
        assert sorted(r[0] for r in result.rows) == ["bolt", "cam"]

    def test_into_counts_output_pages(self, shop):
        result = shop.execute("retrieve into copy1 (p.pnum, p.pname)")
        assert result.output_pages >= 1

    def test_into_existing_rejected(self, shop):
        with pytest.raises(TQuelSemanticError):
            shop.execute("retrieve into parts (p.pnum)")


class TestAccessPathSelection:
    def test_hash_lookup_cost(self, shop):
        shop.execute("modify parts to hash on pnum")
        result = shop.execute("retrieve (p.pname) where p.pnum = 3")
        assert result.input_pages == 1

    def test_isam_lookup_cost(self, shop):
        shop.execute("modify parts to isam on pnum")
        result = shop.execute("retrieve (p.pname) where p.pnum = 3")
        # The whole relation fits in one data page, so the optimizer
        # scans it instead of paying the two-page directory descent.
        assert result.input_pages == 1
        shop.optimizer_enabled = False
        try:
            fixed = shop.execute("retrieve (p.pname) where p.pnum = 3")
        finally:
            shop.optimizer_enabled = True
        assert fixed.input_pages == 2  # directory + data page
        assert fixed.rows == result.rows

    def test_non_key_predicate_scans(self, shop):
        shop.execute("modify parts to hash on pnum")
        scan = shop.execute("retrieve (p.pname) where p.weight = 3")
        keyed = shop.execute("retrieve (p.pname) where p.pnum = 2")
        assert scan.input_pages > keyed.input_pages or (
            scan.input_pages == shop.relation("parts").page_count
        )

    def test_secondary_index_used_for_equality(self, shop):
        shop.execute("modify parts to hash on pnum")
        shop.execute("index on parts is w_idx (weight)")
        result = shop.execute("retrieve (p.pname) where p.weight = 20")
        assert result.rows == [("cam",)]
        assert result.input_pages <= 2  # index bucket + data page

    def test_key_value_can_be_expression(self, shop):
        shop.execute("modify parts to hash on pnum")
        result = shop.execute("retrieve (p.pname) where p.pnum = 2 + 2")
        assert result.rows == [("cam",)]

    def test_reversed_equality_still_keyed(self, shop):
        shop.execute("modify parts to hash on pnum")
        result = shop.execute("retrieve (p.pname) where 3 = p.pnum")
        assert result.rows == [("washer",)]
        assert result.input_pages == 1
