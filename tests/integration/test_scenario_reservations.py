"""End-to-end scenario: a bitemporal room-reservation system.

A single narrative test class exercising most of the system together --
DDL, bitemporal updates with valid clauses, joins, aggregates, rollback
audits, the two-level store, secondary indexes, and persistence -- the way
a downstream adopter would use it.
"""

import pytest

from repro import Clock, TemporalDatabase, parse_temporal


@pytest.fixture
def world(tmp_path):
    clock = Clock(start=parse_temporal("1983-01-03 08:00"), tick=600)
    db = TemporalDatabase("reservations", clock=clock)
    db.execute("create rooms (room = c8, seats = i4)")
    db.execute(
        "create persistent interval booking "
        "(room = c8, holder = c12, attendees = i4)"
    )
    db.execute("modify booking to hash on room")
    db.execute("range of r is rooms")
    db.execute("range of b is booking")
    for room, seats in (("alpha", 4), ("beta", 10), ("gamma", 30)):
        db.execute(f'append to rooms (room = "{room}", seats = {seats})')
    return db, clock, tmp_path


class TestReservationScenario:
    def test_full_story(self, world):
        db, clock, tmp_path = world

        # Monday morning: bookings come in, valid for specific meetings.
        # The database group holds beta for its standing meeting from the
        # 10th onward (an open-ended validity).
        db.execute(
            'append to booking (room = "beta", holder = "dbgroup", '
            "attendees = 8) "
            'valid from "1983-01-10 09:00" to "forever"'
        )
        db.execute(
            'append to booking (room = "gamma", holder = "colloq", '
            "attendees = 25) "
            'valid from "1983-01-10 10:00" to "1983-01-10 12:00"'
        )

        before_fix = clock.now()

        # A correction: the colloquium actually expects 40 people -- too
        # many for gamma?  The replace records the correction bitemporally.
        db.execute(
            'replace b (attendees = 40) where b.holder = "colloq"'
        )

        # Which bookings overflow their room, as currently believed,
        # during their own validity?
        result = db.execute(
            "retrieve (b.room, b.holder, b.attendees, r.seats) "
            "where b.room = r.room and b.attendees > r.seats"
        )
        overflowing = {row[1] for row in result.rows}
        assert overflowing == {"colloq"}

        # Who believed what, when?  As of before the correction the
        # colloquium fit.
        stamp = _fmt(before_fix)
        audit = db.execute(
            "retrieve (b.attendees) "
            f'where b.holder = "colloq" as of "{stamp}" '
            f'when b overlap "1983-01-10 10:30"'
        )
        assert [row[0] for row in audit.rows] == [25]

        # Aggregate: total attendees across bookings valid Monday 10:30,
        # as currently recorded.
        total = db.execute(
            "retrieve (t = sum(b.attendees)) "
            'when b overlap "1983-01-10 10:30"'
        )
        assert total.rows == [(48,)]

        # Months of churn: the dbgroup re-books weekly (the clock first
        # moves past the original meeting so each replace closes a
        # validity period and stores two new versions).
        clock.set(parse_temporal("1983-02-01 08:00"))
        for week in range(12):
            db.execute(
                "replace b (attendees = 8) "
                'where b.holder = "dbgroup"'
            )

        # Performance work: the admin moves the relation to a two-level
        # store and indexes attendees.
        version_scan_before = db.execute(
            'retrieve (b.attendees) where b.room = "beta"'
        )
        db.execute(
            'modify booking to twolevel on room where history = "clustered"'
        )
        db.execute(
            "index on booking is b_att_idx (attendees) "
            "where structure = hash, levels = 2"
        )
        version_scan_after = db.execute(
            'retrieve (b.attendees) where b.room = "beta"'
        )
        assert sorted(version_scan_after.rows) == sorted(
            version_scan_before.rows
        )
        # (At this toy scale everything fits in a page or two; the
        # performance claims are benchmarked at scale in benchmarks/.)
        # The two-level win: a current-state lookup reads the primary
        # store only -- one page, however much history beta has absorbed.
        current = db.execute(
            'retrieve (b.attendees) where b.room = "beta" '
            'when b overlap "now"'
        )
        assert current.input_pages == 1

        by_attendees = db.execute(
            "retrieve (b.room) where b.attendees = 40 "
            'when b overlap "1983-01-10 10:30"'
        )
        assert [row[0] for row in by_attendees.rows] == ["gamma"]
        # A historical probe reads both index levels plus the data page:
        # a handful of pages, never a scan.
        assert by_attendees.input_pages <= 4

        # Ops: nightly checkpoint, restore, and keep working.
        db.save(tmp_path / "nightly")
        restored = TemporalDatabase.load(tmp_path / "nightly")
        replay = restored.execute(
            "retrieve (b.room) where b.attendees = 40 "
            'when b overlap "1983-01-10 10:30"'
        )
        assert [row[0] for row in replay.rows] == ["gamma"]
        # Deleting the long-gone colloquium is a no-op: a fact whose
        # validity closed in the past is history, not a target.
        assert restored.execute('delete b where b.holder = "colloq"').count == 0
        # Cancelling the standing dbgroup hold, however, works...
        assert restored.execute('delete b where b.holder = "dbgroup"').count == 1
        gone = restored.execute(
            'retrieve (b.holder) when b overlap "1983-06-01"'
        )
        assert gone.rows == []
        # ...and the audit trail still knows everything.
        history = restored.execute(
            'retrieve (b.holder) as of "beginning" through "forever"'
        )
        holders = {row[0] for row in history.rows}
        assert holders == {"colloq", "dbgroup"}


def _fmt(chronon):
    from repro import format_chronon

    return format_chronon(chronon)
