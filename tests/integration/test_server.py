"""The asyncio server: result shapes, protocol abuse, limits, lifecycle.

Every Result shape crosses the wire through an in-process server
(ServerThread); malformed frames and abrupt disconnects must leave the
server serving; session limits, idle timeouts and authentication are
exercised end to end.
"""

from __future__ import annotations

import socket
import struct
import time

import pytest

import repro
from repro.engine.database import TemporalDatabase
from repro.errors import ExecutionError, TQuelSyntaxError
from repro.server import ServerThread, protocol


@pytest.fixture
def server():
    with ServerThread(TemporalDatabase("served")) as thread:
        yield thread


@pytest.fixture
def session(server):
    with repro.connect(server.url) as connected:
        yield connected


def _load(session):
    session.execute("create emp (name = c20, sal = i4)")
    for n in range(8):
        session.execute(f'append to emp (name = "e{n}", sal = {n * 100})')
    session.execute("range of e is emp")


# -- result shapes -----------------------------------------------------------


def test_empty_result_over_the_wire(session):
    _load(session)
    result = session.execute("retrieve (e.name) where e.sal > 99999")
    assert result.rows == []
    assert result.columns == ["name"]
    assert result.io is not None


def test_message_only_result_over_the_wire(session):
    _load(session)
    result = session.execute("range of x is emp")
    assert result.rows == []
    assert result.kind == "range"


def test_count_result_over_the_wire(session):
    _load(session)
    result = session.execute("delete e where e.sal < 300")
    assert result.kind == "delete"
    assert result.count == 3


def test_error_result_over_the_wire(session):
    with pytest.raises(TQuelSyntaxError):
        session.execute("this is not tquel")
    # The connection survives an error response.
    _load(session)
    assert len(session.execute("retrieve (e.name)")) == 8


def test_multi_page_stream(session):
    _load(session)
    pages = list(session.stream_pages("retrieve (e.name)", page_rows=3))
    assert [len(page) for page in pages] == [3, 3, 2]
    assert sorted(row[0] for page in pages for row in page) == sorted(
        f"e{n}" for n in range(8)
    )
    # stream() reassembles the full result.
    assert len(session.stream("retrieve (e.name)", page_rows=3)) == 8


def test_stream_refuses_scripts(session):
    _load(session)
    with pytest.raises(ExecutionError):
        session.stream("retrieve (e.name)\nretrieve (e.sal)")


def test_prepared_statement_over_the_wire(session):
    _load(session)
    probe = session.prepare("retrieve (e.name) where e.sal = $sal")
    assert probe.execute(params={"sal": 300}).rows == [("e3",)]
    assert [len(r) for r in probe.executemany(
        [{"sal": 0}, {"sal": 1}]
    )] == [1, 0]


# -- protocol abuse ----------------------------------------------------------


def _raw_connect(server):
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=5)
    protocol.send_frame(sock, {"op": "hello", "token": None})
    reply = protocol.recv_frame(sock)
    assert reply["ok"]
    return sock


def test_malformed_frame_gets_error_then_close(server):
    sock = _raw_connect(server)
    sock.sendall(struct.pack(">I", 12) + b"not json!!!!")
    reply = protocol.recv_frame(sock)
    assert reply["ok"] is False
    assert reply["error"]["type"] == "ProtocolError"
    # The server hangs up after a protocol error...
    assert protocol.recv_frame(sock) is None
    sock.close()
    # ...but keeps serving new connections.
    with repro.connect(server.url) as fresh:
        assert fresh.relation_names() == []


def test_oversized_length_prefix_is_refused(server):
    sock = _raw_connect(server)
    sock.sendall(struct.pack(">I", protocol.MAX_FRAME + 1))
    reply = protocol.recv_frame(sock)
    assert reply["ok"] is False
    assert reply["error"]["type"] == "ProtocolError"
    sock.close()


def test_unknown_op_is_an_error_response(server):
    sock = _raw_connect(server)
    protocol.send_frame(sock, {"op": "frobnicate"})
    reply = protocol.recv_frame(sock)
    assert reply["ok"] is False
    sock.close()


def test_abrupt_disconnect_releases_the_session(server):
    sock = _raw_connect(server)
    protocol.send_frame(
        sock, {"op": "execute", "text": "create t (a = i4)", "params": None}
    )
    assert protocol.recv_frame(sock)["ok"]
    # Hang up mid-session, no goodbye.
    sock.close()
    deadline = time.monotonic() + 5
    while server.server.active_sessions and time.monotonic() < deadline:
        time.sleep(0.05)
    assert server.server.active_sessions == 0
    with repro.connect(server.url) as fresh:
        assert fresh.relation_names() == ["t"]


def test_non_hello_first_frame_is_refused(server):
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=5)
    protocol.send_frame(sock, {"op": "execute", "text": "retrieve (1)"})
    reply = protocol.recv_frame(sock)
    assert reply["ok"] is False
    sock.close()


# -- limits, auth, lifecycle -------------------------------------------------


def test_max_sessions_refuses_the_overflow():
    with ServerThread(TemporalDatabase("small"), max_sessions=1) as server:
        first = repro.connect(server.url)
        with pytest.raises(ExecutionError, match="server full"):
            repro.connect(server.url)
        first.close()
        deadline = time.monotonic() + 5
        while server.server.active_sessions and time.monotonic() < deadline:
            time.sleep(0.05)
        # A slot freed: connecting works again.
        with repro.connect(server.url) as second:
            assert second.relation_names() == []


def test_auth_token_gates_hello():
    with ServerThread(TemporalDatabase("locked"), token="sesame") as server:
        with pytest.raises(ExecutionError, match="authentication failed"):
            repro.connect(server.url)
        with pytest.raises(ExecutionError, match="authentication failed"):
            repro.connect(server.url, token="wrong")
        with repro.connect(server.url, token="sesame") as session:
            assert session.relation_names() == []


def test_idle_timeout_closes_the_session():
    with ServerThread(
        TemporalDatabase("sleepy"), idle_timeout=0.3
    ) as server:
        session = repro.connect(server.url)
        try:
            deadline = time.monotonic() + 5
            while (
                server.server.active_sessions
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert server.server.active_sessions == 0
        finally:
            session.close()


def test_server_telemetry_reaches_the_recorder(server, session):
    _load(session)
    kinds = [event.kind for event in server.server.db.recorder.dump()]
    assert "server.start" in kinds
    assert "server.session_open" in kinds
    assert server.server.db.metrics.counter_value("server.connections") >= 1


# -- server-side paths are operator-controlled -------------------------------


def test_client_supplied_commit_path_is_refused(server, tmp_path):
    # The wire op rejects any path field -- a client must not steer
    # where the server writes checkpoints.
    sock = _raw_connect(server)
    protocol.send_frame(
        sock, {"op": "commit", "path": str(tmp_path / "evil")}
    )
    reply = protocol.recv_frame(sock)
    assert reply["ok"] is False
    assert "checkpoint" in reply["error"]["message"]
    sock.close()
    assert not (tmp_path / "evil").exists()


def test_remote_commit_with_path_is_refused_client_side(session, tmp_path):
    with pytest.raises(ExecutionError, match="not supported over the wire"):
        session.commit(str(tmp_path / "elsewhere"))


def test_telemetry_disabled_without_a_server_directory(session):
    # The fixture server has no telemetry_dir: the op must be refused.
    with pytest.raises(ExecutionError, match="telemetry export is disabled"):
        session.export_telemetry()


def test_telemetry_confined_to_the_server_directory(tmp_path):
    import os

    telemetry_dir = tmp_path / "server-telemetry"
    with ServerThread(
        TemporalDatabase("telemetered"), telemetry_dir=str(telemetry_dir)
    ) as server:
        with repro.connect(server.url) as session:
            _load(session)
            # A client-supplied path is ignored locally and refused on
            # the wire; exports land under the operator's directory.
            artifacts = session.export_telemetry(tmp_path / "client-choice")
            assert artifacts
            for path in artifacts.values():
                assert os.path.realpath(path).startswith(
                    os.path.realpath(str(telemetry_dir))
                )
                assert os.path.exists(path)
            assert not (tmp_path / "client-choice").exists()

            sock = _raw_connect(server)
            protocol.send_frame(
                sock, {"op": "telemetry", "path": str(tmp_path / "evil")}
            )
            reply = protocol.recv_frame(sock)
            assert reply["ok"] is False
            sock.close()
            assert not (tmp_path / "evil").exists()
