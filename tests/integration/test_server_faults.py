"""Server/client fault tolerance: retries, dedupe, overload, reaping.

Each test arms one deterministic failpoint (or configures one limit)
and drives a real ServerThread + RemoteSession pair through it.  The
wider seeded matrix lives in ``test_chaos.py``; these tests pin the
individual mechanisms -- at-most-once writes, cursor survival, overload
shedding, idle-client reaping, graceful drain -- one by one.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro import fault
from repro.engine import persist
from repro.engine.database import TemporalDatabase
from repro.errors import ConnectionLost, ServerOverloaded
from repro.server import ServerThread
from repro.server.client import RemoteSession


@pytest.fixture(autouse=True)
def clean_faults():
    fault.reset()
    yield
    fault.reset()


def _retrying(server, **kwargs):
    kwargs.setdefault("retries", 6)
    kwargs.setdefault("backoff_base", 0.01)
    kwargs.setdefault("backoff_cap", 0.05)
    return RemoteSession.open(server.url, **kwargs)


def _seed(session, rows=6):
    session.execute("create emp (name = c20, sal = i4)")
    session.execute("range of e is emp")
    for n in range(rows):
        session.execute(f'append to emp (name = "e{n}", sal = {n * 100})')


class TestConnectionLost:
    def test_transport_failures_unify_to_connection_lost(self):
        with ServerThread(TemporalDatabase("t")) as server:
            session = repro.connect(server.url)
            _seed(session, rows=2)
            fault.arm("net.conn_reset")
            with pytest.raises(ConnectionLost) as excinfo:
                session.relation_names()
            assert excinfo.value.op == "relation_names"
            session.close()

    def test_reply_loss_without_retries_raises_with_op(self):
        with ServerThread(TemporalDatabase("t")) as server:
            session = repro.connect(server.url)
            _seed(session, rows=2)
            fault.arm("net.frame_drop")
            with pytest.raises(ConnectionLost) as excinfo:
                session.execute("retrieve (e.name)")
            assert excinfo.value.op == "execute"
            session.close()


class TestAtMostOnceWrites:
    def test_lost_reply_retries_without_reapplying_the_write(self):
        db = TemporalDatabase("t")
        with ServerThread(db) as server:
            session = _retrying(server)
            _seed(session, rows=2)
            # The append executes server-side; only its reply is lost.
            fault.arm("net.frame_drop")
            result = session.execute('append to emp (name = "x", sal = 1)')
            assert result.count == 1
            rows = session.execute("retrieve (e.name)").rows
            assert sorted(r[0].strip() for r in rows) == ["e0", "e1", "x"]
            assert session.retry_stats["retries"] == 1
            assert session.retry_stats["reconnects"] == 1
            assert db.metrics.counter_value("server.dedup_hits") == 1
            assert db.metrics.counter_value("server.reconnects") == 1
            session.close()

    def test_unsent_request_retries_and_executes_once(self):
        db = TemporalDatabase("t")
        with ServerThread(db) as server:
            session = _retrying(server)
            _seed(session, rows=2)
            # The socket dies before the request leaves the client: the
            # retry is the first time the server sees the statement.
            fault.arm("net.conn_reset")
            result = session.execute('append to emp (name = "y", sal = 2)')
            assert result.count == 1
            assert len(session.execute("retrieve (e.name)").rows) == 3
            assert db.metrics.counter_value("server.dedup_hits") == 0
            session.close()

    def test_ranges_and_pin_replay_across_reconnect(self):
        with ServerThread(TemporalDatabase("t")) as server:
            session = _retrying(server)
            _seed(session, rows=3)
            watermark = session.pin()
            fault.arm("net.frame_drop")
            # Retried on a fresh connection: the range table and the
            # pinned watermark must have been rebuilt server-side.
            rows = session.execute("retrieve (e.name)").rows
            assert len(rows) == 3
            assert session.pinned == watermark
            session.unpin()
            session.execute('append to emp (name = "late", sal = 9)')
            assert len(session.execute("retrieve (e.name)").rows) == 4
            session.close()

    def test_prepared_statement_reprepares_after_reconnect(self):
        with ServerThread(TemporalDatabase("t")) as server:
            session = _retrying(server)
            _seed(session, rows=2)
            statement = session.prepare("retrieve (e.sal) where e.sal >= 0")
            assert len(statement.execute().rows) == 2
            fault.arm("net.frame_drop")
            assert len(statement.execute().rows) == 2
            # And again on the new connection's fresh handle.
            assert len(statement.execute().rows) == 2
            session.close()


class TestStreamDrop:
    def _streaming_session(self, server, **kwargs):
        session = _retrying(server, **kwargs)
        _seed(session, rows=6)
        return session

    def test_drop_mid_stream_without_retries_raises(self):
        with ServerThread(TemporalDatabase("t")) as server:
            session = self._streaming_session(server, retries=0)
            pages = session.stream_pages("retrieve (e.name)", page_rows=2)
            first = next(pages)
            assert len(first) == 2
            fault.arm("net.frame_drop")  # the next fetch reply is lost
            with pytest.raises(ConnectionLost) as excinfo:
                next(pages)
            assert excinfo.value.op == "fetch"
            session.close()

    def test_drop_mid_stream_with_retries_resumes_exactly(self):
        with ServerThread(TemporalDatabase("t")) as server:
            session = self._streaming_session(server)
            gathered = []
            pages = session.stream_pages("retrieve (e.sal)", page_rows=2)
            gathered.extend(next(pages))
            fault.arm("net.frame_drop")
            for page in pages:
                gathered.extend(page)
            # Every row exactly once: the lost page was re-delivered
            # from the cursor (seq dedupe), not skipped or repeated.
            assert sorted(r[0] for r in gathered) == [
                n * 100 for n in range(6)
            ]
            assert session.retry_stats["reconnects"] == 1
            session.close()

    def test_abandoned_cursor_is_reaped_after_ttl(self):
        db = TemporalDatabase("t")
        with ServerThread(db, client_ttl=0.05) as server:
            session = self._streaming_session(server, retries=0)
            pages = session.stream_pages("retrieve (e.name)", page_rows=2)
            next(pages)
            fault.arm("net.frame_drop")
            with pytest.raises(ConnectionLost):
                next(pages)
            # The client vanishes without closing; its server-side
            # cursor waits for it...
            assert server.server.known_clients == 1
            time.sleep(0.1)
            # ...until the TTL passes and any later connect reaps it.
            probe = repro.connect(server.url)
            probe.ping()
            assert server.server.known_clients == 1  # probe only
            assert db.metrics.counter_value("server.clients_reaped") == 1
            probe.close()


class TestOverload:
    def test_overload_refusal_carries_retry_after(self):
        db = TemporalDatabase("t")
        with ServerThread(db, max_inflight=0, retry_after=0.25) as server:
            session = repro.connect(server.url)
            with pytest.raises(ServerOverloaded) as excinfo:
                session.execute("create r (id = i4)")
            assert excinfo.value.retry_after == 0.25
            assert db.metrics.counter_value("server.overloaded") >= 1
            session.close()

    def test_retrying_client_backs_off_then_gives_up(self):
        with ServerThread(
            TemporalDatabase("t"), max_inflight=0, retry_after=0.01
        ) as server:
            session = _retrying(server, retries=2)
            with pytest.raises(ServerOverloaded):
                session.execute("create r (id = i4)")
            assert session.retry_stats["overloads"] == 2
            session.close()

    def test_generous_limit_never_refuses_a_serial_client(self):
        with ServerThread(TemporalDatabase("t"), max_inflight=4) as server:
            session = repro.connect(server.url)
            _seed(session)
            assert len(session.execute("retrieve (e.name)").rows) == 6
            session.close()


class TestHeartbeatAndShutdown:
    def test_ping_reports_load(self):
        with ServerThread(TemporalDatabase("t")) as server:
            session = repro.connect(server.url)
            pong = session.ping()
            assert pong["sessions"] == 1
            assert pong["inflight"] == 0
            session.close()

    def test_graceful_stop_drains_through_group_commit(self, tmp_path):
        db = TemporalDatabase("durable")
        db.checkpoint_dir = str(tmp_path / "ckpt")
        server = ServerThread(db)
        session = repro.connect(server.url)
        _seed(session, rows=4)
        session.close()
        # No explicit commit: the drain's final group commit must make
        # the appended rows durable on its own.
        server.stop()
        reloaded = persist.load(str(tmp_path / "ckpt"))
        check = repro.connect(database=reloaded)
        check.execute("range of e is emp")
        assert len(check.execute("retrieve (e.name)").rows) == 4


class TestExecutorOverWire:
    def test_worker_kill_degrades_and_flags_explain(self):
        from repro.engine import partition as partition_mod

        db = TemporalDatabase("t")
        saved = partition_mod._GATHER_TIMEOUT
        partition_mod._GATHER_TIMEOUT = 0.5
        try:
            with ServerThread(db) as server:
                session = repro.connect(server.url)
                session.execute("create r (id = i4, v = i4)")
                session.execute("range of x is r")
                for i in range(16):
                    session.execute(f"append to r (id = {i}, v = {i})")
                session.execute(
                    'partition r by hash on id into 4 '
                    'where parallel = "process"'
                )
                fault.arm("exec.worker_kill", times=16)
                result = session.execute("retrieve (total = sum(x.v))")
                assert result.rows == [(sum(range(16)),)]
                fault.disarm()
                plan = session.explain("retrieve (total = sum(x.v))")
                assert "degraded to serial" in plan
                assert db.metrics.counter_value("exec.degraded") == 1
                assert db.metrics.counter_value("partition.degraded") == 1
                session.close()
        finally:
            partition_mod._GATHER_TIMEOUT = saved
