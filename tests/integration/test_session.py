"""Integration tests: session API, prepared statements, plan cache."""

from __future__ import annotations

import pytest

import repro
from repro import Result, Session
from repro.errors import ExecutionError, TQuelSemanticError


@pytest.fixture
def session(db):
    with repro.connect(database=db) as session:
        session.execute(
            "create persistent interval emp (name = c20, sal = i4)"
        )
        session.execute("range of e is emp")
        session.execute('append to emp (name = "ahn", sal = 30000)')
        session.execute('append to emp (name = "snodgrass", sal = 35000)')
        yield session


class TestSession:
    def test_connect_creates_database(self):
        with repro.connect("payroll") as session:
            assert isinstance(session, Session)
            assert session.db.name == "payroll"

    def test_connect_wraps_existing_database(self, db):
        session = repro.connect(database=db)
        assert session.db is db

    def test_execute_matches_engine(self, session):
        result = session.execute("retrieve (e.name, e.sal)")
        assert {row[0] for row in result} == {"ahn", "snodgrass"}

    def test_closed_session_rejects_statements(self, session):
        session.close()
        assert session.closed
        with pytest.raises(ExecutionError, match="closed"):
            session.execute("retrieve (e.name)")
        with pytest.raises(ExecutionError, match="closed"):
            session.prepare("retrieve (e.name)")

    def test_close_is_idempotent(self, session):
        session.close()
        session.close()

    def test_context_manager_closes(self, db):
        with repro.connect(database=db) as session:
            pass
        assert session.closed

    def test_explain_passthrough(self, session):
        plan = session.explain("retrieve (e.name)")
        assert plan.startswith("plan:")
        assert "measured:" not in plan
        measured = session.explain("retrieve (e.name)", analyze=True)
        assert "measured:" in measured

    def test_observability_accessors(self, session):
        assert session.tracer is session.db.tracer
        assert session.metrics is session.db.metrics
        assert session.last_trace() is None
        session.tracer.enable()
        session.execute("retrieve (e.name)")
        assert session.last_trace() is not None


class TestParameters:
    def test_named_parameter_binding(self, session):
        result = session.execute(
            "retrieve (e.sal) where e.name = $name",
            params={"name": "ahn"},
        )
        assert result.rows[0][0] == 30000

    def test_unbound_parameter_raises(self, session):
        with pytest.raises(ExecutionError, match=r"\$name is not bound"):
            session.execute("retrieve (e.sal) where e.name = $name")

    def test_params_use_keyed_access(self, session):
        session.execute("modify emp to hash on name where fillfactor = 100")
        prepared = session.prepare(
            "retrieve (e.sal) where e.name = $who"
        )
        plan = prepared.explain()
        assert "keyed hash access on name" in plan
        result = prepared.execute(params={"who": "snodgrass"})
        assert [row[0] for row in result] == [35000]

    def test_bare_parameter_target_rejected(self, session):
        with pytest.raises(TQuelSemanticError):
            session.execute("retrieve ($x)")


class TestPreparedStatements:
    def test_execute_repeatedly(self, session):
        prepared = session.prepare("retrieve (e.name, e.sal)")
        first = prepared.execute()
        second = prepared.execute()
        assert first.rows == second.rows

    def test_executemany(self, session):
        prepared = session.prepare(
            'append to emp (name = $name, sal = $sal)'
        )
        results = prepared.executemany(
            [{"name": "clifford", "sal": 1}, {"name": "tansel", "sal": 2}]
        )
        assert [r.count for r in results] == [1, 1]
        names = {
            row[0]
            for row in session.execute("retrieve (e.name)")
        }
        assert {"clifford", "tansel"} <= names

    def test_session_executemany_shortcut(self, session):
        results = session.executemany(
            "retrieve (e.sal) where e.name = $n",
            [{"n": "ahn"}, {"n": "snodgrass"}, {"n": "nobody"}],
        )
        assert [[row[0] for row in r] for r in results] == [
            [30000],
            [35000],
            [],
        ]

    def test_prepare_bad_syntax_raises_immediately(self, session):
        from repro.errors import TQuelSyntaxError

        with pytest.raises(TQuelSyntaxError):
            session.prepare("retrieve (e.name")

    def test_prepare_bad_semantics_raises_immediately(self, session):
        with pytest.raises(TQuelSemanticError):
            session.prepare("retrieve (e.nosuch)")

    def test_multi_statement_script_with_internal_ddl(self, session):
        prepared = session.prepare(
            "create persistent interval dept (dname = c20) "
            'append to dept (dname = "cs") '
            "range of d is dept "
            "retrieve (d.dname)"
        )
        results = prepared.execute()
        assert [row[0] for row in results[-1]] == ["cs"]

    def test_prepared_counts_in_metrics(self, session):
        prepared = session.prepare("retrieve (e.name)")
        before = session.metrics.counter_value(
            "plancache.prepared_executions"
        )
        prepared.execute()
        prepared.execute()
        after = session.metrics.counter_value(
            "plancache.prepared_executions"
        )
        assert after == before + 2


class TestPlanCache:
    def test_repeat_execute_hits_cache(self, session):
        db = session.db
        text = "retrieve (e.name) where e.sal > 1000"
        session.execute(text)
        hits = db.metrics.counter_value("plancache.hits")
        session.execute(text)
        assert db.metrics.counter_value("plancache.hits") == hits + 1

    def test_ddl_invalidates_analyses(self, session):
        text = "retrieve (e.name, e.sal)"
        columns = session.execute(text).columns
        session.execute("create persistent interval other (x = i4)")
        # catalog changed; re-analysis must still resolve correctly
        assert session.execute(text).columns == columns

    def test_range_redefinition_changes_meaning(self, session):
        session.execute("create persistent interval pets (name = c20)")
        session.execute('append to pets (name = "rex")')
        text = "retrieve (e.name)"
        assert {row[0] for row in session.execute(text)} == {
            "ahn",
            "snodgrass",
        }
        session.execute("range of e is pets")
        assert {row[0] for row in session.execute(text)} == {"rex"}

    def test_cache_eviction_keeps_executing(self, session):
        db = session.db
        capacity = db._plan_cache_capacity
        for index in range(capacity + 5):
            session.execute(f"retrieve (e.sal) where e.sal > {index}")
        assert len(db._plan_cache) <= capacity
        result = session.execute("retrieve (e.sal) where e.sal > 0")
        assert len(result.rows) == 2

    def test_prepared_survives_cache_eviction(self, session):
        db = session.db
        prepared = session.prepare("retrieve (e.name)")
        for index in range(db._plan_cache_capacity + 1):
            session.execute(f"retrieve (e.sal) where e.sal > {index}")
        assert prepared.execute().rows  # entry pinned by the statement


class TestResultSequence:
    def test_result_is_a_sequence(self, session):
        result = session.execute("retrieve (e.name, e.sal)")
        assert isinstance(result, Result)
        assert len(result) == 2
        assert list(result) == result.rows
        assert result[0] in result
        assert result[-1] == result.rows[-1]

    def test_first_and_scalar(self, session):
        result = session.execute(
            "retrieve (n = count(e.name)) where e.sal > 0"
        )
        assert result.scalar() == 2
        assert result.first() == result.rows[0]
        empty = session.execute(
            'retrieve (e.name) where e.name = "nobody"'
        )
        assert empty.first() is None
        with pytest.raises(ValueError, match="exactly one row"):
            empty.scalar()

    def test_io_delta_as_dict(self, session):
        result = session.execute("retrieve (e.name)")
        data = result.io.as_dict()
        assert data["user"]["reads"] == result.input_pages
        assert data["user"]["writes"] == result.output_pages
        assert "emp" in data["by_relation"]
        assert set(data["by_relation"]["emp"]) == {"reads", "writes"}


class TestBufferPoolResize:
    @staticmethod
    def _loaded_file():
        from repro.storage.buffer import BufferPool

        pool = BufferPool()
        buffered = pool.create_file("r", record_size=16, buffers=2)
        buffered.allocate()
        buffered.allocate()
        buffered.flush()
        return pool, buffered

    def test_resize_to_same_capacity_is_noop(self):
        pool, buffered = self._loaded_file()
        buffered.read(0)
        buffered.read(1)
        before = pool.stats.checkpoint()
        buffered.resize_pool(2)
        buffered.read(0)
        buffered.read(1)
        delta = pool.stats.delta(before)
        assert buffered.buffers == 2
        assert delta.input_pages == 0  # residency preserved, no re-reads

    def test_resize_to_new_capacity_still_flushes(self):
        pool, buffered = self._loaded_file()
        buffered.read(0)
        buffered.read(1)
        before = pool.stats.checkpoint()
        buffered.resize_pool(3)
        buffered.read(0)
        delta = pool.stats.delta(before)
        assert buffered.buffers == 3
        assert delta.by_relation["r"].reads == 1  # pool was emptied
