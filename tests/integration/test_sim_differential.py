"""The differential harness end to end: determinism, corpus replay,
and a mutation-testing check that an injected engine bug is caught and
shrunk to a small repro."""

from __future__ import annotations

import io
from pathlib import Path

from repro.engine import mutate
from repro.sim.cli import main
from repro.sim.corpus import read_case, replay_corpus, write_case
from repro.sim.harness import Config, run_seed, run_workload
from repro.sim.shrink import shrink_workload

CORPUS = Path(__file__).resolve().parents[1] / "corpus" / "sim"


def _fingerprint(reports):
    return [
        (r.config.label, r.statements_run, r.divergence is None, r.script)
        for r in reports
    ]


def test_run_seed_is_deterministic():
    first = run_seed(3, ops=40)
    second = run_seed(3, ops=40)
    assert _fingerprint(first) == _fingerprint(second)
    assert all(r.divergence is None for r in first)


def test_cli_output_is_identical_across_jobs():
    argv = ["--seed", "1..3", "--ops", "25", "--no-shrink"]
    sequential, parallel = io.StringIO(), io.StringIO()
    assert main(argv + ["--jobs", "1"], out=sequential) == 0
    assert main(argv + ["--jobs", "2"], out=parallel) == 0
    assert sequential.getvalue() == parallel.getvalue()


def test_corpus_replays_without_divergence():
    results = replay_corpus(CORPUS)
    assert len(results) >= 10
    for path, report in results:
        assert report.divergence is None, f"{path.name}: {report.divergence}"
    types = {read_case(path)[0].db_type for path, _ in results}
    assert types == {"static", "rollback", "historical", "temporal"}
    structures = {read_case(path)[1].structure for path, _ in results}
    assert structures == {"heap", "hash", "isam", "btree", "twolevel"}


def test_case_files_round_trip(tmp_path):
    source = CORPUS / "04-rollback-hash-asof.tquel"
    workload, config, _ = read_case(source)
    report = run_workload(workload, config, inject_modifies=False)
    copy = write_case(tmp_path / "copy.tquel", report)
    reread, reconfig, _ = read_case(copy)
    assert reconfig == config
    assert len(reread.statements) == len(report.script)


def test_injected_engine_bug_is_caught_and_shrunk(monkeypatch):
    """Mutation-test the harness: an engine that quietly drops one
    delete target must produce a divergence, and the shrinker must cut
    the repro down to a handful of statements."""
    real = mutate.apply_delete

    def buggy_delete(relation, candidates, now):
        return real(relation, candidates[:-1], now)

    monkeypatch.setattr(mutate, "apply_delete", buggy_delete)

    workload, config, _ = read_case(CORPUS / "04-rollback-hash-asof.tquel")
    report = run_workload(workload, config, inject_modifies=False)
    assert report.divergence is not None

    minimized, final = shrink_workload(workload, config)
    assert final.divergence is not None
    assert len(minimized.statements) <= 12

    # The repro must be stable: re-running it diverges identically.
    again = run_workload(minimized, config)
    assert again.divergence is not None
    assert again.divergence.kind == final.divergence.kind

    # And the shrink itself is deterministic: a second pass over the
    # same workload produces a byte-identical repro script.
    minimized2, final2 = shrink_workload(workload, config)
    assert final2.script == final.script
    assert str(final2.divergence) == str(final.divergence)


def test_clean_engine_replays_the_same_corpus_case():
    workload, config, _ = read_case(CORPUS / "04-rollback-hash-asof.tquel")
    report = run_workload(workload, config, inject_modifies=False)
    assert report.divergence is None


def test_quick_matrix_covers_every_structure():
    reports = run_seed(2, ops=10)
    assert {r.config.structure for r in reports} == {
        "heap", "hash", "isam", "btree", "twolevel",
    }
    assert [r.config for r in reports] == [
        Config(r.config.structure, r.config.batch, r.config.atomic)
        for r in reports
    ]
