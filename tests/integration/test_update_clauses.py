"""Integration tests: when / as-of clauses on update statements."""

import pytest

from repro import format_chronon


@pytest.fixture
def booking(db):
    db.execute("create persistent interval bk (room = c8, seats = i4)")
    db.execute("range of b is bk")
    db.execute(
        'append to bk (room = "alpha", seats = 4) '
        'valid from "1985-06-01" to "1985-06-30"'
    )
    db.execute(
        'append to bk (room = "beta", seats = 10) '
        'valid from "1985-07-01" to "forever"'
    )
    db.execute(
        'append to bk (room = "gamma", seats = 30) '
        'valid from "1985-08-01" to "1985-08-31"'
    )
    return db


class TestWhenOnUpdates:
    def test_delete_filtered_by_when(self, booking):
        # Cancel only the booking that overlaps June 1985: alpha.
        result = booking.execute(
            'delete b when b overlap "1985-06-15"'
        )
        assert result.count == 1
        remaining = booking.execute(
            'retrieve (b.room) as of "now" when b overlap "1985-08-15"'
        )
        assert sorted(row[0] for row in remaining.rows) == ["beta", "gamma"]

    def test_replace_filtered_by_when(self, booking):
        result = booking.execute(
            'replace b (seats = 12) when b overlap "1985-07-15"'
        )
        # Only beta's validity covers mid-July.
        assert result.count == 1
        rows = booking.execute(
            'retrieve (b.room, b.seats) when b overlap "1985-08-15"'
        ).rows
        seats = {row[0]: row[1] for row in rows}
        assert seats["beta"] == 12
        assert seats["gamma"] == 30

    def test_when_combined_with_where(self, booking):
        result = booking.execute(
            'replace b (seats = 99) where b.seats > 5 '
            'when b overlap "1985-08-15"'
        )
        # beta (open-ended) and gamma both overlap August; both > 5 seats.
        assert result.count == 2

    def test_when_matching_nothing(self, booking):
        result = booking.execute('delete b when b overlap "1970-01-05"')
        assert result.count == 0


class TestAsOfOnUpdates:
    def test_update_targets_only_currently_recorded_versions(self, booking):
        booking.execute('replace b (seats = 5) where b.room = "alpha"')
        # A second replace touches the new current version, not the
        # superseded one: still one target.
        result = booking.execute(
            'replace b (seats = 6) where b.room = "alpha"'
        )
        assert result.count == 1

    def test_as_of_past_on_delete_misses_newer_tuples(self, booking):
        # Two mutating statements back: only alpha had been recorded.
        early = booking.clock.now() - 120
        stamp = format_chronon(early)
        result = booking.execute(f'delete b as of "{stamp}"')
        assert result.count == 1
        survivors = booking.execute('retrieve (b.room) as of "now"')
        assert sorted(row[0] for row in survivors.rows) == ["beta", "gamma"]
