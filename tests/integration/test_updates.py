"""Integration tests: update statements beyond the basics -- multi-variable
updates, per-tuple valid clauses, appends driven by queries."""

import pytest

from repro.errors import ExecutionError


@pytest.fixture
def org(db):
    db.execute("create emp (name = c12, dept = c8, sal = i4)")
    db.execute("create dept (dname = c8, bonus = i4)")
    db.execute("range of e is emp")
    db.execute("range of d is dept")
    for name, dept, sal in (
        ("ahn", "cs", 30000), ("snodgrass", "cs", 40000), ("wong", "ee", 35000),
    ):
        db.execute(
            f'append to emp (name = "{name}", dept = "{dept}", sal = {sal})'
        )
    db.execute('append to dept (dname = "cs", bonus = 1000)')
    db.execute('append to dept (dname = "ee", bonus = 2000)')
    return db


class TestMultiVariableUpdates:
    def test_replace_with_joined_value(self, org):
        org.execute(
            "replace e (sal = e.sal + d.bonus) where e.dept = d.dname"
        )
        result = org.execute("retrieve (e.name, e.sal)")
        assert sorted(result.rows) == [
            ("ahn", 31000), ("snodgrass", 41000), ("wong", 37000),
        ]

    def test_delete_with_join_condition(self, org):
        org.execute("delete e where e.dept = d.dname and d.bonus > 1500")
        result = org.execute("retrieve (e.name)")
        assert sorted(r[0] for r in result.rows) == ["ahn", "snodgrass"]

    def test_each_target_updated_once(self, org):
        # Even if the joined relation had duplicate matches, a target row
        # is replaced at most once.
        org.execute('append to dept (dname = "cs", bonus = 9999)')
        org.execute(
            "replace e (sal = e.sal + 1) where e.dept = d.dname"
        )
        result = org.execute('retrieve (e.sal) where e.name = "ahn"')
        assert result.rows == [(30001,)]


class TestQueryDrivenAppend:
    def test_append_from_other_relation(self, org):
        org.execute("create rich (name = c12)")
        org.execute("append to rich (name = e.name) where e.sal > 32000")
        org.execute("range of r is rich")
        result = org.execute("retrieve (r.name)")
        assert sorted(x[0] for x in result.rows) == ["snodgrass", "wong"]

    def test_append_constant_expression(self, org):
        org.execute('append to emp (name = "calc", sal = 10 * 3 + 5)')
        result = org.execute('retrieve (e.sal) where e.name = "calc"')
        assert result.rows == [(35,)]


class TestValidClauseUpdates:
    @pytest.fixture
    def hist(self, db):
        db.execute("create interval duty (name = c12, post = c12)")
        db.execute("range of u is duty")
        db.execute('append to duty (name = "kim", post = "guard")')
        return db

    def test_per_statement_valid_override(self, hist):
        hist.execute(
            'replace u (post = "captain") '
            'valid from "1/1/81" to "1/1/82" where u.name = "kim"'
        )
        result = hist.execute(
            'retrieve (u.post) when u overlap "6/1/81"'
        )
        assert ("captain",) == result.rows[0][:1]

    def test_postactive_append(self, hist):
        # A fact scheduled for the future.
        hist.execute(
            'append to duty (name = "lee", post = "scout") '
            'valid from "1/1/99" to "forever"'
        )
        now_result = hist.execute('retrieve (u.name) when u overlap "now"')
        assert ("lee",) not in [row[:1] for row in now_result.rows]
        future = hist.execute('retrieve (u.name) when u overlap "6/6/99"')
        assert ("lee",) in [row[:1] for row in future.rows]

    def test_inverted_valid_clause_rejected(self, hist):
        with pytest.raises(ExecutionError):
            hist.execute(
                'append to duty (name = "x") '
                'valid from "1/1/82" to "1/1/81"'
            )


class TestUpdateAccessPaths:
    def test_keyed_delete_cost(self, db):
        db.execute("create persistent interval t (id = i4, v = i4)")
        db.execute("modify t to hash on id")
        db.execute("range of x is t")
        for i in range(40):
            db.execute(f"append to t (id = {i}, v = 0)")
        db.pool.flush_all()
        before = db.stats.checkpoint()
        db.execute("delete x where x.id = 7")
        delta = db.stats.delta(before)
        relation_pages = db.relation("t").page_count
        # Keyed access: far fewer reads than a full scan.
        assert delta.input_pages < relation_pages

    def test_replace_leaves_clock_consistent(self, db):
        db.execute("create persistent r (a = i4)")
        db.execute("range of x is r")
        db.execute("append to r (a = 1)")
        t_append = db.clock.now()
        db.execute("replace x (a = 2)")
        assert db.clock.now() > t_append
