"""Integration tests for the vacuum statement (history pruning)."""

import pytest

from repro import format_chronon
from repro.engine.integrity import check_relation
from repro.errors import TQuelSemanticError, TQuelSyntaxError


@pytest.fixture
def churned(db):
    db.execute("create persistent interval r (id = i4, v = i4, pad = c100)")
    db.copy_in("r", [(i, 0, "p") for i in range(1, 33)])
    db.execute("modify r to hash on id where fillfactor = 100")
    db.execute("range of x is r")
    for _ in range(4):
        db.execute("replace x (v = x.v + 1)")
    return db


class TestVacuum:
    def test_discards_superseded_versions(self, churned):
        cutoff = format_chronon(churned.clock.now())
        before = churned.relation("r").row_count
        result = churned.execute(f'vacuum r before "{cutoff}"')
        assert result.count > 0
        assert churned.relation("r").row_count == before - result.count

    def test_current_state_unaffected(self, churned):
        expected = sorted(
            churned.execute('retrieve (x.id, x.v) when x overlap "now"').rows
        )
        churned.execute(f'vacuum r before "{format_chronon(churned.clock.now())}"')
        assert sorted(
            churned.execute('retrieve (x.id, x.v) when x overlap "now"').rows
        ) == expected

    def test_reclaims_pages(self, churned):
        before = churned.relation("r").page_count
        churned.execute(
            f'vacuum r before "{format_chronon(churned.clock.now())}"'
        )
        assert churned.relation("r").page_count < before

    def test_keyed_access_cost_recovers(self, churned):
        key = 28  # a full bucket at this scale
        degraded = churned.execute(
            f"retrieve (x.v) where x.id = {key}"
        ).input_pages
        churned.execute(
            f'vacuum r before "{format_chronon(churned.clock.now())}"'
        )
        recovered = churned.execute(
            f"retrieve (x.v) where x.id = {key}"
        ).input_pages
        assert recovered < degraded

    def test_as_of_after_cutoff_still_works(self, churned):
        # Keep everything after a mid-history cutoff; as-of later than the
        # cutoff reconstructs exactly as before.
        mid = churned.clock.now() - 120  # two replace-statements ago
        stamp = format_chronon(mid)
        before = sorted(
            churned.execute(f'retrieve (x.v) as of "{stamp}"').rows
        )
        churned.execute(f'vacuum r before "{stamp}"')
        assert sorted(
            churned.execute(f'retrieve (x.v) as of "{stamp}"').rows
        ) == before

    def test_as_of_before_cutoff_is_forgotten(self, churned):
        # The load-time state (before the first replace) is reconstructed
        # entirely from versions the vacuum discards.
        load_time = churned.clock.now() - 240
        stamp = format_chronon(load_time)
        assert len(churned.execute(f'retrieve (x.v) as of "{stamp}"').rows) == 32
        churned.execute(
            f'vacuum r before "{format_chronon(churned.clock.now())}"'
        )
        assert churned.execute(f'retrieve (x.v) as of "{stamp}"').rows == []

    def test_nothing_to_discard_is_noop(self, churned):
        result = churned.execute('vacuum r before "beginning"')
        assert result.count == 0

    def test_integrity_after_vacuum(self, churned):
        churned.execute(
            f'vacuum r before "{format_chronon(churned.clock.now())}"'
        )
        assert check_relation(churned.relation("r")) == []

    def test_vacuum_two_level_store(self, churned):
        churned.execute(
            'modify r to twolevel on id where history = "clustered"'
        )
        versions_before = churned.relation("r").row_count
        history_before = churned.relation("r").storage.history_pages
        churned.execute(
            f'vacuum r before "{format_chronon(churned.clock.now())}"'
        )
        assert churned.relation("r").row_count < versions_before
        # Clustered history rounds pages up per tuple, so the page count
        # can only shrink or stay; the version count always shrinks.
        assert churned.relation("r").storage.history_pages <= history_before
        assert check_relation(churned.relation("r")) == []

    def test_requires_transaction_time(self, db):
        db.execute("create interval h (id = i4)")
        with pytest.raises(TQuelSemanticError):
            db.execute('vacuum h before "now"')

    def test_cutoff_must_be_constant(self, churned):
        with pytest.raises(TQuelSemanticError):
            churned.execute("vacuum r before start of x")

    def test_syntax_requires_before(self, churned):
        with pytest.raises(TQuelSyntaxError):
            churned.execute('vacuum r "now"')

    def test_unparse_roundtrip(self):
        from repro.tquel.parser import parse_statement
        from repro.tquel.unparse import unparse

        stmt = parse_statement('vacuum r before "1981"')
        assert parse_statement(unparse(stmt)) == stmt
