"""Integration tests for transaction-time zone maps."""

import pytest

from repro import format_chronon
from repro.errors import CatalogError


@pytest.fixture
def zoned(db):
    db.execute("create persistent interval r (id = i4, v = i4, pad = c100)")
    db.copy_in("r", [(i, 0, "p") for i in range(1, 33)])
    db.execute(
        "modify r to hash on id where fillfactor = 100, zonemap = 1"
    )
    db.execute("range of x is r")
    return db


def evolve(db, steps):
    for _ in range(steps):
        db.execute("replace x (v = x.v + 1)")


class TestZoneMapQueries:
    def test_results_identical_with_and_without(self, db):
        db.execute("create persistent interval r (id = i4, v = i4, pad = c100)")
        db.copy_in("r", [(i, 0, "p") for i in range(1, 33)])
        db.execute("modify r to hash on id where fillfactor = 100")
        db.execute("range of x is r")
        mid = db.clock.now()
        for _ in range(4):
            db.execute("replace x (v = x.v + 1)")
        stamp = format_chronon(mid)
        plain = sorted(db.execute(f'retrieve (x.v) as of "{stamp}"').rows)
        db.execute(
            "modify r to hash on id where fillfactor = 100, zonemap = 1"
        )
        zoned = sorted(db.execute(f'retrieve (x.v) as of "{stamp}"').rows)
        assert zoned == plain

    def test_asof_scan_skips_late_pages(self, zoned):
        early = format_chronon(zoned.clock.now())
        evolve(zoned, 4)
        full_size = zoned.relation("r").page_count
        result = zoned.execute(f'retrieve (x.v) as of "{early}"')
        # Only the pages holding the original versions are read.
        assert len(result.rows) == 32
        assert result.input_pages < full_size // 2

    def test_asof_now_reads_everything(self, zoned):
        evolve(zoned, 3)
        result = zoned.execute('retrieve (x.v) as of "now"')
        assert result.input_pages == zoned.relation("r").page_count

    def test_maintained_across_inserts(self, zoned):
        early = format_chronon(zoned.clock.now())
        evolve(zoned, 2)
        zoned.execute("append to r (id = 999, v = 0)")
        result = zoned.execute(f'retrieve (x.id) as of "{early}"')
        assert (999,) not in [row[:1] for row in result.rows]
        assert len(result.rows) == 32

    def test_survives_checkpoint(self, zoned, tmp_path):
        from repro import TemporalDatabase

        early = format_chronon(zoned.clock.now())
        evolve(zoned, 3)
        zoned.save(tmp_path / "ck")
        restored = TemporalDatabase.load(tmp_path / "ck")
        original = zoned.execute(f'retrieve (x.v) as of "{early}"')
        replica = restored.execute(f'retrieve (x.v) as of "{early}"')
        assert sorted(replica.rows) == sorted(original.rows)
        assert replica.input_pages == original.input_pages

    def test_explain_mentions_zone_map(self, zoned):
        evolve(zoned, 2)
        plan = zoned.explain('retrieve (x.v) as of "1/1/80"')
        assert "zone map prunes post-as-of pages" in plan

    def test_vacuumless_alternative_to_pruning(self, zoned):
        # The zone map recovers early-as-of cost without destroying
        # history, unlike vacuum.
        early = format_chronon(zoned.clock.now())
        evolve(zoned, 4)
        cheap = zoned.execute(f'retrieve (x.v) as of "{early}"')
        assert len(cheap.rows) == 32  # nothing was discarded


class TestZoneMapRules:
    def test_requires_transaction_time(self, db):
        db.execute("create interval h (id = i4)")
        with pytest.raises(CatalogError):
            db.execute("modify h to hash on id where zonemap = 1")

    def test_rejected_on_two_level(self, zoned):
        with pytest.raises(CatalogError):
            zoned.execute(
                "modify r to twolevel on id where zonemap = 1"
            )

    def test_modify_without_flag_disables(self, zoned):
        zoned.execute("modify r to hash on id where fillfactor = 100")
        assert zoned.relation("r").zone_map is None

    def test_modify_with_flag_keeps_map_after_rebuild(self, zoned):
        evolve(zoned, 2)
        zoned.execute(
            "modify r to isam on id where fillfactor = 100, zonemap = 1"
        )
        assert zoned.relation("r").zone_map is not None
        # Map covers the new page layout.
        assert max(zoned.relation("r").zone_map) < (
            zoned.relation("r").page_count
        )
