"""Differential testing of the page-at-a-time batch execution kernel.

Batch execution is a pure execution-strategy change: for every query,
on every structure, it must produce the same result rows AND the same
per-relation page I/O as the retained tuple-at-a-time interpreter --
the paper's entire result set is page counts, so a single moved read is
a regression.  Hypothesis generates random relations (heap, hash, ISAM,
B-tree), version histories and temporal predicates; each scenario runs
on two identically built databases, one per execution mode.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import FOREVER, Clock, TemporalDatabase, parse_temporal

MAR1_1980 = parse_temporal("3/1/80")
JAN15_1980 = parse_temporal("1/15/80")

_CREATE_PREFIX = {
    "static": "create",
    "rollback": "create persistent",
    "historical": "create interval",
    "temporal": "create persistent interval",
}


def build(scenario, batch: bool) -> TemporalDatabase:
    """One deterministically-built database in the given execution mode."""
    db = TemporalDatabase(
        "diff",
        clock=Clock(start=MAR1_1980, tick=60),
        batch_execution=batch,
    )
    db_type = scenario["db_type"]
    n = scenario["tuples"]
    db.execute(f"{_CREATE_PREFIX[db_type]} r (id = i4, v = i4, pad = c40)")
    has_tx = db_type in ("rollback", "temporal")
    has_valid = db_type in ("historical", "temporal")
    rows = []
    for i in range(1, n + 1):
        row = [i, i * 10, "p"]
        stamp = JAN15_1980 + 3600 * i
        if has_tx:
            row += [stamp, FOREVER]
        if has_valid:
            row += [stamp, FOREVER]
        rows.append(tuple(row))
    db.copy_in("r", rows)
    structure = scenario["structure"]
    if structure == "heap":
        db.execute("modify r to heap")
    else:
        db.execute(
            f"modify r to {structure} on id "
            f"where fillfactor = {scenario['loading']}"
        )
    db.execute("range of x is r")
    db.execute("range of y is r")
    for step in range(scenario["updates"]):
        target = (step * 7) % n + 1
        db.execute(f"replace x (v = x.v + 100) where x.id = {target}")
    return db


def queries(scenario) -> "list[str]":
    """The scenario's query mix: keyed, scan, join, temporal."""
    db_type = scenario["db_type"]
    n = scenario["tuples"]
    probe = scenario["probe"]
    threshold = scenario["threshold"] * 10
    texts = [
        f"retrieve (x.id, x.v) where x.id = {probe}",
        f"retrieve (x.v) where x.v >= {threshold}",
        "retrieve (x.id, y.v) where x.id = y.id "
        f"and x.v >= {threshold} and y.v < {n * 10}",
    ]
    if db_type in ("historical", "temporal"):
        texts.append(
            f'retrieve (x.id) where x.id >= {probe} '
            'when x overlap "2/1/80"'
        )
    if db_type in ("rollback", "temporal"):
        texts.append('retrieve (x.id, x.v) as of "1/20/80"')
        texts.append('retrieve (x.id) as of "now"')
    return texts


def run_query(db: TemporalDatabase, text: str):
    """(sorted result rows, full per-relation I/O delta) for one query."""
    db.pool.flush_all()
    before = db.stats.checkpoint()
    result = db.execute(text)
    delta = db.stats.delta(before)
    return sorted(result.rows), delta.as_dict()


@st.composite
def scenarios(draw):
    return {
        "db_type": draw(
            st.sampled_from(["static", "rollback", "historical", "temporal"])
        ),
        "structure": draw(st.sampled_from(["heap", "hash", "isam", "btree"])),
        "loading": draw(st.sampled_from([100, 50])),
        "tuples": draw(st.integers(min_value=8, max_value=40)),
        "updates": draw(st.integers(min_value=0, max_value=6)),
        "probe": draw(st.integers(min_value=1, max_value=40)),
        "threshold": draw(st.integers(min_value=0, max_value=40)),
    }


@settings(max_examples=25, deadline=None)
@given(scenario=scenarios())
def test_batch_matches_tuple_at_a_time(scenario):
    batched = build(scenario, batch=True)
    reference = build(scenario, batch=False)
    assert batched.batch_execution and not reference.batch_execution
    for text in queries(scenario):
        batch_rows, batch_io = run_query(batched, text)
        ref_rows, ref_io = run_query(reference, text)
        assert batch_rows == ref_rows, text
        assert batch_io == ref_io, text


@settings(max_examples=10, deadline=None)
@given(
    scenario=scenarios(),
    buffers=st.integers(min_value=1, max_value=4),
)
def test_batch_matches_with_larger_buffer_pools(scenario, buffers):
    """Interleaved read accounting survives batching even when pages stay
    resident (buffers > 1 makes the hit/miss sequence order-sensitive)."""

    def with_buffers(batch):
        db = TemporalDatabase(
            "diff",
            clock=Clock(start=MAR1_1980, tick=60),
            buffers_per_relation=buffers,
            batch_execution=batch,
        )
        return db

    n = scenario["tuples"]
    dbs = []
    for batch in (True, False):
        db = with_buffers(batch)
        db.execute("create persistent interval r (id = i4, v = i4, pad = c40)")
        stamp = JAN15_1980
        rows = [
            (i, i * 10, "p", stamp + 3600 * i, FOREVER, stamp + 3600 * i, FOREVER)
            for i in range(1, n + 1)
        ]
        db.copy_in("r", rows)
        db.execute(
            f"modify r to hash on id where fillfactor = {scenario['loading']}"
        )
        db.execute("range of x is r")
        db.execute("range of y is r")
        dbs.append(db)
    batched, reference = dbs
    # A self-join shares one file between both loop depths: the batch
    # kernel must read its pages at the same points in the interleaved
    # sequence or the buffer hit accounting shifts.
    text = (
        "retrieve (x.id, y.v) where x.id = y.id "
        f"and x.v >= {scenario['threshold'] * 10}"
    )
    assert run_query(batched, text) == run_query(reference, text)
