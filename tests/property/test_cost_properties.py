"""Property-based tests of the Section-5.3 cost laws.

The paper's central empirical claim: input cost is *linear* in the update
count with a slope set only by the database type and loading factor.  These
tests generate (type, loading, probe key) combinations and check linearity
and slope on live measurements.
"""

import math

from hypothesis import given, settings, strategies as st

from repro import FOREVER, parse_temporal
from tests.conftest import make_db

# 64 tuples (8 per page): the smallest scale at which the modular hash
# leaves at least one bucket filled exactly to quota at both loadings,
# which the exact growth laws need.
N = 64


def build(db_type: str, loading: int):
    db = make_db()
    if db_type == "rollback":
        db.execute("create persistent r (id = i4, v = i4, pad = c104)")
        width = 2
    else:
        db.execute(
            "create persistent interval r (id = i4, v = i4, pad = c100)"
        )
        width = 4
    stamp = parse_temporal("1/15/80")
    rows = [
        (i, 0, "p") + (stamp, FOREVER) * (width // 2)
        for i in range(1, N + 1)
    ]
    db.copy_in("r", rows)
    db.execute(f"modify r to hash on id where fillfactor = {loading}")
    db.execute("range of x is r")
    return db


def full_bucket_key(loading: int) -> int:
    """A key whose bucket is filled exactly to the fillfactor quota."""
    quota = 8 * loading // 100
    buckets = math.ceil(N / quota) + 1
    counts = {}
    for i in range(1, N + 1):
        counts[i % buckets] = counts.get(i % buckets, 0) + 1
    for i in range(1, N + 1):
        if counts[i % buckets] == quota:
            return i
    return 1


@st.composite
def scenarios(draw):
    db_type = draw(st.sampled_from(["rollback", "temporal"]))
    loading = draw(st.sampled_from([100, 50]))
    steps = draw(st.integers(min_value=2, max_value=4))
    return db_type, loading, steps


class TestGrowthLaw:
    @given(scenarios())
    @settings(max_examples=12, deadline=None)
    def test_keyed_access_growth_rate(self, scenario):
        db_type, loading, steps = scenario
        db = build(db_type, loading)
        key = full_bucket_key(loading)
        text = f"retrieve (x.v) where x.id = {key}"
        cost0 = db.execute(text).input_pages
        even_steps = steps - steps % 2  # even endpoint: 50% is jagged
        if even_steps == 0:
            even_steps = 2
        for _ in range(even_steps):
            db.execute("replace x (v = x.v + 1)")
        cost_n = db.execute(text).input_pages
        multiplier = 2.0 if db_type == "temporal" else 1.0
        expected = multiplier * loading / 100.0
        measured = (cost_n - cost0) / even_steps
        assert measured == expected

    @given(scenarios())
    @settings(max_examples=10, deadline=None)
    def test_scan_cost_equals_relation_size(self, scenario):
        db_type, loading, steps = scenario
        db = build(db_type, loading)
        for _ in range(steps):
            db.execute("replace x (v = x.v + 1)")
        cost = db.execute(
            'retrieve (x.v) as of "beginning" through "forever"'
        ).input_pages
        assert cost == db.relation("r").page_count

    @given(scenarios())
    @settings(max_examples=10, deadline=None)
    def test_cost_is_monotone_in_update_count(self, scenario):
        db_type, loading, steps = scenario
        db = build(db_type, loading)
        key = full_bucket_key(loading)
        text = f"retrieve (x.v) where x.id = {key}"
        series = []
        for _ in range(steps + 1):
            series.append(db.execute(text).input_pages)
            db.execute("replace x (v = x.v + 1)")
        assert series == sorted(series)

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=8, deadline=None)
    def test_prediction_formula(self, steps):
        # cost(n) = fixed + variable * (1 + growth * n) for hashed access
        # on the temporal relation at 100 % loading: 1 + 2n exactly.
        db = build("temporal", 100)
        key = full_bucket_key(100)
        text = f"retrieve (x.v) where x.id = {key}"
        for n in range(steps):
            assert db.execute(text).input_pages == 1 + 2 * n
            db.execute("replace x (v = x.v + 1)")
