"""The crash matrix: every failpoint, every hit, exact recovery.

For each update statement of a scripted workload and each storage/engine
failpoint, the matrix arms the point at hit 1, 2, 3, ... and executes
the statement.  Whenever the fault fires, the database must be in
*exactly* the pre-statement state (statement rolled back) or the
post-statement state (fault after the commit point, e.g. during the
trailing flush) -- byte-identical page images, identical page counts,
nothing in between.  When the hit number exceeds the statement's hits,
the statement must have completed normally with the same page images as
an uninjected run.

A second matrix does the same for checkpoint saves: a fault at any
checkpoint failpoint, followed by :func:`recover_checkpoint` and
:func:`load`, must yield exactly the previous or the new checkpoint.
"""

from __future__ import annotations

import pytest

from repro import FaultInjected, fault
from repro.engine import persist
from tests.conftest import make_db

# Beyond this many hits without the statement finishing, something is
# wrong with the matrix itself (the workload's statements stay well
# under this).
MAX_HITS = 400

STATEMENT_POINTS = ("pager.write", "buffer.evict", "mutate.insert_version")

CHECKPOINT_POINTS = (
    "pager.write",
    "checkpoint.fsync",
    "checkpoint.rename",
    "checkpoint.swap",
)

# One statement of each mutation kind; the temporal relation makes
# replace insert two versions per target and delete insert one.
STATEMENTS = (
    'append to r (id = 20, v = 200, pad = "q")',
    "replace x (v = x.v + 1) where x.id < 5",
    "delete x where x.id = 7",
)


def build_db():
    """The matrix workload: a keyed temporal relation with a 2-level
    index, loaded with enough tuples to span several pages."""
    db = make_db()
    db.execute("create persistent interval r (id = i4, v = i4, pad = c96)")
    db.execute("modify r to hash on id where fillfactor = 100")
    db.execute("index on r is rv (v) where levels = 2")
    db.execute("range of x is r")
    for i in range(1, 13):
        db.execute(f'append to r (id = {i}, v = {i * 10}, pad = "p")')
    return db


def build_partitioned_db():
    """The same workload hash-partitioned three ways (heap children, no
    secondary index: partitioning refuses indexed relations)."""
    db = make_db()
    db.execute("create persistent interval r (id = i4, v = i4, pad = c96)")
    db.execute("range of x is r")
    for i in range(1, 13):
        db.execute(f'append to r (id = {i}, v = {i * 10}, pad = "p")')
    db.execute("partition r by hash on id into 3")
    return db


def fingerprint(db) -> dict:
    """Byte images of every non-temporary page file, by file name.

    Unmetered (``peek``), so fingerprinting never perturbs the state it
    measures.
    """
    state = {}
    for name, buffered in db.pool._files.items():
        if name.startswith("_temp"):
            continue
        state[name] = [
            buffered.peek(page_id).to_bytes()
            for page_id in range(buffered.page_count)
        ]
    return state


def checkpoint_fingerprint(db) -> dict:
    """Like :func:`fingerprint` but restricted to user-relation files
    (what a checkpoint round-trips)."""
    state = {}
    for name in db.relation_names():
        for file_name in persist._relation_files(db.relation(name)):
            buffered = db.pool.file(file_name)
            state[file_name] = [
                buffered.peek(page_id).to_bytes()
                for page_id in range(buffered.page_count)
            ]
    return state


def replay(statements):
    db = build_db()
    for text in statements:
        db.execute(text)
    return db


@pytest.fixture(autouse=True)
def clean_failpoints():
    fault.reset()
    yield
    fault.reset()


class TestStatementCrashMatrix:
    @pytest.mark.parametrize("prefix", range(len(STATEMENTS)))
    @pytest.mark.parametrize("point", STATEMENT_POINTS)
    def test_every_hit_recovers_exactly(self, prefix, point):
        statement = STATEMENTS[prefix]
        post = fingerprint(replay(STATEMENTS[: prefix + 1]))
        completed = False
        fired_at_least_once = False
        for hit in range(1, MAX_HITS + 1):
            db = replay(STATEMENTS[:prefix])
            pre = fingerprint(db)
            fault.arm(point, at_hit=hit)
            try:
                db.execute(statement)
            except FaultInjected:
                fired_at_least_once = True
                state = fingerprint(db)
                assert state == pre or state == post, (
                    f"{point} at hit {hit}: state is neither the "
                    f"pre- nor the post-statement image"
                )
                for name, images in state.items():
                    reference = (pre if state == pre else post)[name]
                    assert len(images) == len(reference)
            else:
                fault.reset()
                assert fingerprint(db) == post, (
                    f"{point} armed beyond hit count changed the result"
                )
                completed = True
                break
            finally:
                fault.reset()
        assert completed, f"{point}: statement never completed"
        assert fired_at_least_once, (
            f"{point}: never hit during {statement!r} -- the matrix "
            "cell is vacuous"
        )

    @pytest.mark.parametrize("point", STATEMENT_POINTS)
    def test_rolled_back_database_still_works(self, point):
        db = replay(STATEMENTS[:1])
        fault.arm(point, at_hit=1)
        with pytest.raises(FaultInjected):
            db.execute(STATEMENTS[1])
        fault.reset()
        # The rolled-back database accepts the same statement again and
        # passes a full integrity check.
        from repro import check_database

        assert check_database(db) == []
        db.execute(STATEMENTS[1])
        assert check_database(db) == []


class TestPartitionedStatementRollback:
    @pytest.mark.parametrize("point", STATEMENT_POINTS)
    def test_mid_statement_fault_rolls_back_exactly(self, point):
        """A fault inside a statement over a partitioned relation leaves
        every child partition at the pre- or post-statement image."""
        statement = STATEMENTS[1]
        post_db = build_partitioned_db()
        post_db.execute(STATEMENTS[0])
        post_db.execute(statement)
        post = fingerprint(post_db)
        fired = False
        for hit in range(1, MAX_HITS + 1):
            db = build_partitioned_db()
            db.execute(STATEMENTS[0])
            pre = fingerprint(db)
            fault.arm(point, at_hit=hit)
            try:
                db.execute(statement)
            except FaultInjected:
                fired = True
                state = fingerprint(db)
                assert state == pre or state == post, (
                    f"{point} at hit {hit}: partitioned state is neither "
                    "the pre- nor the post-statement image"
                )
            else:
                fault.reset()
                assert fingerprint(db) == post
                break
            finally:
                fault.reset()
        assert fired, f"{point}: never hit on the partitioned relation"


class TestCheckpointCrashMatrix:
    @pytest.mark.parametrize("point", CHECKPOINT_POINTS)
    def test_every_hit_recovers_a_complete_checkpoint(self, point, tmp_path):
        target = tmp_path / "ckpt"
        completed = False
        for hit in range(1, MAX_HITS + 1):
            db = build_db()
            db.save(target)
            old_state = checkpoint_fingerprint(db)
            for text in STATEMENTS:
                db.execute(text)
            new_state = checkpoint_fingerprint(db)
            fault.arm(point, at_hit=hit)
            try:
                db.save(target)
            except FaultInjected:
                persist.recover_checkpoint(target)
                restored = persist.load(target)
                state = checkpoint_fingerprint(restored)
                assert state == old_state or state == new_state, (
                    f"{point} at hit {hit}: recovered checkpoint is "
                    "neither the previous nor the new one"
                )
            else:
                fault.reset()
                assert persist.recover_checkpoint(target) == "clean"
                state = checkpoint_fingerprint(persist.load(target))
                assert state == new_state
                completed = True
                break
            finally:
                fault.reset()
                import shutil

                for leftover in (target, *persist._journal_paths(target)[1:]):
                    if leftover.exists():
                        shutil.rmtree(leftover)
        assert completed, f"{point}: save never completed"

    @pytest.mark.parametrize("point", CHECKPOINT_POINTS)
    def test_partitioned_checkpoint_recovers_exactly(self, point, tmp_path):
        """The checkpoint matrix again, over a hash-partitioned relation:
        a fault at any checkpoint failpoint must leave the previous or
        the new checkpoint -- with every child partition file intact."""
        target = tmp_path / "pckpt"
        completed = False
        for hit in range(1, MAX_HITS + 1):
            db = build_partitioned_db()
            db.save(target)
            old_state = checkpoint_fingerprint(db)
            for text in STATEMENTS:
                db.execute(text)
            new_state = checkpoint_fingerprint(db)
            fault.arm(point, at_hit=hit)
            try:
                db.save(target)
            except FaultInjected:
                persist.recover_checkpoint(target)
                restored = persist.load(target)
                assert restored.relation("r").is_partitioned
                state = checkpoint_fingerprint(restored)
                assert state == old_state or state == new_state, (
                    f"{point} at hit {hit}: recovered partitioned "
                    "checkpoint is neither the previous nor the new one"
                )
            else:
                fault.reset()
                assert persist.recover_checkpoint(target) == "clean"
                restored = persist.load(target)
                assert restored.relation("r").is_partitioned
                assert checkpoint_fingerprint(restored) == new_state
                completed = True
                break
            finally:
                fault.reset()
                import shutil

                for leftover in (target, *persist._journal_paths(target)[1:]):
                    if leftover.exists():
                        shutil.rmtree(leftover)
        assert completed, f"{point}: partitioned save never completed"

    def test_first_save_crash_leaves_recoverable_journal(self, tmp_path):
        # No previous checkpoint: a crash between the renames must still
        # leave the complete journal promotable.
        target = tmp_path / "first"
        db = build_db()
        expected = checkpoint_fingerprint(db)
        fault.arm("checkpoint.swap")
        with pytest.raises(FaultInjected):
            db.save(target)
        fault.reset()
        assert persist.recover_checkpoint(target) == "promoted-journal"
        assert checkpoint_fingerprint(persist.load(target)) == expected
