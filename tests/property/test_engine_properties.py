"""Property-based tests on engine-level invariants.

These drive the whole stack (TQuel -> planner -> storage) with generated
workloads and check the version-accounting laws of Section 4 and the
equivalence of access paths.
"""

from hypothesis import given, settings, strategies as st

from tests.conftest import make_db

small_ints = st.integers(min_value=0, max_value=50)
ops = st.lists(
    st.tuples(
        st.sampled_from(["append", "replace", "delete"]),
        st.integers(min_value=1, max_value=8),  # tuple key
        small_ints,  # value
    ),
    min_size=1,
    max_size=25,
)


def apply_ops(db, operations):
    """Replay generated operations; returns expected live keys -> value."""
    live = {}
    for op, key, value in operations:
        if op == "append":
            if key in live:
                continue
            db.execute(f"append to r (id = {key}, v = {value})")
            live[key] = value
        elif op == "replace":
            if key not in live:
                continue
            db.execute(f"replace x (v = {value}) where x.id = {key}")
            live[key] = value
        else:
            if key not in live:
                continue
            db.execute(f"delete x where x.id = {key}")
            del live[key]
    return live


def current_state(db):
    rows = db.execute('retrieve (x.id, x.v) when x overlap "now"').rows
    return {row[0]: row[1] for row in rows}


def current_state_rollback(db):
    rows = db.execute('retrieve (x.id, x.v) as of "now"').rows
    return {row[0]: row[1] for row in rows}


class TestTemporalInvariants:
    @given(ops)
    @settings(max_examples=30, deadline=None)
    def test_current_state_matches_oracle(self, operations):
        db = make_db()
        db.execute("create persistent interval r (id = i4, v = i4)")
        db.execute("range of x is r")
        live = apply_ops(db, operations)
        assert current_state(db) == live

    @given(ops)
    @settings(max_examples=30, deadline=None)
    def test_version_accounting(self, operations):
        # appends insert 1, replaces 2, deletes 1 (Section 4).
        db = make_db()
        db.execute("create persistent interval r (id = i4, v = i4)")
        db.execute("range of x is r")
        live = {}
        expected_versions = 0
        for op, key, value in operations:
            if op == "append" and key not in live:
                expected_versions += 1
                live[key] = value
            elif op == "replace" and key in live:
                expected_versions += 2
                live[key] = value
            elif op == "delete" and key in live:
                expected_versions += 1
                del live[key]
        db2 = make_db()
        db2.execute("create persistent interval r (id = i4, v = i4)")
        db2.execute("range of x is r")
        apply_ops(db2, operations)
        assert db2.relation("r").row_count == expected_versions

    @given(ops)
    @settings(max_examples=20, deadline=None)
    def test_history_is_append_only_under_updates(self, operations):
        # Every version ever created stays retrievable bitemporally.
        db = make_db()
        db.execute("create persistent interval r (id = i4, v = i4)")
        db.execute("range of x is r")
        apply_ops(db, operations)
        all_versions = db.execute(
            'retrieve (x.id, x.v) as of "beginning" through "forever"'
        ).rows
        assert len(all_versions) == db.relation("r").row_count

    @given(ops)
    @settings(max_examples=20, deadline=None)
    def test_past_states_immutable(self, operations):
        # Split the workload; the state after part 1 must be exactly
        # reconstructible after part 2 runs.
        half = len(operations) // 2
        db = make_db()
        db.execute("create persistent interval r (id = i4, v = i4)")
        db.execute("range of x is r")
        live_mid = apply_ops(db, operations[:half])
        from repro import format_chronon

        stamp = format_chronon(db.clock.now())
        apply_ops(db, operations[half:])
        reconstructed = db.execute(
            f'retrieve (x.id, x.v) as of "{stamp}" '
            f'when x overlap "{stamp}"'
        ).rows
        assert {row[0]: row[1] for row in reconstructed} == live_mid


class TestRollbackInvariants:
    @given(ops)
    @settings(max_examples=30, deadline=None)
    def test_current_state_matches_oracle(self, operations):
        db = make_db()
        db.execute("create persistent r (id = i4, v = i4)")
        db.execute("range of x is r")
        live = apply_ops(db, operations)
        assert current_state_rollback(db) == live

    @given(ops)
    @settings(max_examples=20, deadline=None)
    def test_rollback_versions_one_per_change(self, operations):
        db = make_db()
        db.execute("create persistent r (id = i4, v = i4)")
        db.execute("range of x is r")
        live = {}
        expected = 0
        for op, key, value in operations:
            if op == "append" and key not in live:
                expected += 1
                live[key] = value
            elif op == "replace" and key in live:
                expected += 1
                live[key] = value
            elif op == "delete" and key in live:
                del live[key]  # delete stamps, adds nothing
        apply_ops(
            db2 := _fresh_rollback(), operations
        )
        assert db2.relation("r").row_count == expected


def _fresh_rollback():
    db = make_db()
    db.execute("create persistent r (id = i4, v = i4)")
    db.execute("range of x is r")
    return db


class TestHistoricalInvariants:
    @given(ops)
    @settings(max_examples=25, deadline=None)
    def test_current_state_matches_oracle(self, operations):
        db = make_db()
        db.execute("create interval r (id = i4, v = i4)")
        db.execute("range of x is r")
        live = apply_ops(db, operations)
        assert current_state(db) == live

    @given(ops)
    @settings(max_examples=20, deadline=None)
    def test_valid_periods_per_key_never_overlap(self, operations):
        # Without retroactive valid clauses, one tuple's versions tile
        # time without overlapping.
        db = make_db()
        db.execute("create interval r (id = i4, v = i4)")
        db.execute("range of x is r")
        apply_ops(db, operations)
        rows = db.execute("retrieve (x.id, x.valid_from, x.valid_to)").rows
        by_key = {}
        for key, valid_from, valid_to, *_ in rows:
            by_key.setdefault(key, []).append((valid_from, valid_to))
        for periods in by_key.values():
            periods.sort()
            for (_, stop), (start, __) in zip(periods, periods[1:]):
                assert stop <= start

    @given(ops)
    @settings(max_examples=20, deadline=None)
    def test_integrity_checker_clean_after_workload(self, operations):
        from repro.engine.integrity import check_database

        db = make_db()
        db.execute("create persistent interval r (id = i4, v = i4)")
        db.execute("modify r to hash on id")
        db.execute("index on r is v_idx (v) where levels = 2")
        db.execute("range of x is r")
        apply_ops(db, operations)
        assert check_database(db) == []


class TestBTreeSoak:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=6),  # key: heavy reuse
                st.integers(min_value=0, max_value=9),
            ),
            min_size=5,
            max_size=60,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_version_pileup_stays_consistent(self, updates):
        # Interleaved replaces over few keys drive duplicate-separator
        # splits -- the pattern that breaks naive B-tree duplicate
        # handling.  Results must match a hash-file twin and the
        # integrity checker must stay clean.
        from repro.engine.integrity import check_relation

        def build(structure):
            db = make_db()
            db.execute("create persistent interval r (id = i4, v = i4)")
            db.execute(f"modify {'r'} to {structure} on id")
            db.execute("range of x is r")
            for key, _ in updates:
                if not db.execute(
                    f'retrieve (x.id) where x.id = {key} '
                    'when x overlap "now"'
                ).rows:
                    db.execute(f"append to r (id = {key}, v = 0)")
            for key, value in updates:
                db.execute(
                    f"replace x (v = {value}) where x.id = {key}"
                )
            return db

        btree = build("btree")
        hash_twin = build("hash")
        for query in (
            'retrieve (x.id, x.v) when x overlap "now"',
            'retrieve (x.id, x.v) as of "beginning" through "forever"',
        ):
            assert sorted(btree.execute(query).rows) == sorted(
                hash_twin.execute(query).rows
            )
        for key in range(1, 7):
            query = f"retrieve (x.v) where x.id = {key}"
            assert sorted(btree.execute(query).rows) == sorted(
                hash_twin.execute(query).rows
            )
        assert check_relation(btree.relation("r")) == []


class TestZoneMapEquivalence:
    @given(ops, st.integers(min_value=0, max_value=24))
    @settings(max_examples=20, deadline=None)
    def test_asof_results_identical_with_zone_map(self, operations, probe):
        from repro import format_chronon

        plain = make_db()
        plain.execute("create persistent interval r (id = i4, v = i4)")
        plain.execute("modify r to hash on id")
        plain.execute("range of x is r")
        zoned = make_db()
        zoned.execute("create persistent interval r (id = i4, v = i4)")
        zoned.execute("modify r to hash on id where zonemap = 1")
        zoned.execute("range of x is r")
        apply_ops(plain, operations)
        apply_ops(zoned, operations)
        # Probe an as-of point somewhere inside the workload's history.
        stamp = format_chronon(
            min(plain.clock.now(), zoned.clock.now()) - probe * 30
        )
        for query in (
            f'retrieve (x.id, x.v) as of "{stamp}"',
            'retrieve (x.id, x.v) as of "beginning" through "forever"',
            'retrieve (x.id, x.v) as of "now"',
        ):
            assert sorted(zoned.execute(query).rows) == sorted(
                plain.execute(query).rows
            )


class TestPersistenceRoundTrip:
    @given(ops, st.sampled_from(["hash", "isam", "btree", "twolevel"]))
    @settings(max_examples=15, deadline=None)
    def test_checkpoint_preserves_state_and_costs(
        self, operations, structure
    ):
        import pathlib
        import tempfile

        from repro import TemporalDatabase

        db = make_db()
        db.execute("create persistent interval r (id = i4, v = i4)")
        db.execute(f"modify r to {structure} on id")
        db.execute("range of x is r")
        apply_ops(db, operations)

        with tempfile.TemporaryDirectory() as tmp:
            target = pathlib.Path(tmp) / "db"
            db.save(target)
            restored = TemporalDatabase.load(target)

            for query in (
                'retrieve (x.id, x.v) when x overlap "now"',
                'retrieve (x.id, x.v) as of "beginning" through "forever"',
                "retrieve (x.id, x.v) where x.id = 3",
            ):
                original = db.execute(query)
                replica = restored.execute(query)
                assert sorted(original.rows) == sorted(replica.rows)
                assert original.input_pages == replica.input_pages


class TestAccessPathEquivalence:
    @given(
        ops,
        st.sampled_from(["heap", "hash", "isam", "btree", "twolevel"]),
        st.sampled_from([100, 50]),
    )
    @settings(max_examples=25, deadline=None)
    def test_storage_structure_never_changes_results(
        self, operations, structure, fillfactor
    ):
        baseline = make_db()
        baseline.execute("create persistent interval r (id = i4, v = i4)")
        baseline.execute("range of x is r")
        apply_ops(baseline, operations)

        variant = make_db()
        variant.execute("create persistent interval r (id = i4, v = i4)")
        if structure == "heap":
            variant.execute("modify r to heap")
        else:
            variant.execute(
                f"modify r to {structure} on id "
                f"where fillfactor = {fillfactor}"
            )
        variant.execute("range of x is r")
        apply_ops(variant, operations)

        for query in (
            'retrieve (x.id, x.v) when x overlap "now"',
            "retrieve (x.id, x.v) where x.id = 3",
            'retrieve (x.id, x.v) as of "beginning" through "forever"',
        ):
            assert sorted(baseline.execute(query).rows) == sorted(
                variant.execute(query).rows
            )

    @given(ops)
    @settings(max_examples=15, deadline=None)
    def test_secondary_index_never_changes_results(self, operations):
        baseline = make_db()
        baseline.execute("create persistent interval r (id = i4, v = i4)")
        baseline.execute("modify r to hash on id")
        baseline.execute("range of x is r")
        apply_ops(baseline, operations)

        indexed = make_db()
        indexed.execute("create persistent interval r (id = i4, v = i4)")
        indexed.execute("modify r to hash on id")
        indexed.execute("index on r is v_idx (v) where levels = 2")
        indexed.execute("range of x is r")
        apply_ops(indexed, operations)

        for probe in range(0, 51, 10):
            query = (
                f"retrieve (x.id, x.v) where x.v = {probe} "
                'when x overlap "now"'
            )
            assert sorted(baseline.execute(query).rows) == sorted(
                indexed.execute(query).rows
            )
