"""Plan-equivalence differential testing of the cost-based optimizer.

The optimizer (``repro.engine.planner``) chooses access paths from the
Fig. 9 cost model; the fixed strategy takes the keyed -> secondary-index
-> scan priority unconditionally.  Whatever the choice, the *answer*
must be identical: an access path is a physical decision, never a
semantic one.

Three layers of checking:

* Hypothesis scenarios across all five access methods, with and without
  partitioning and secondary indexes: every query returns identical
  rows under ``optimizer=True`` and ``optimizer=False``, mutations land
  identically, and the optimizer's metered pages stay within the model
  tolerance of the fixed strategy's (it may only beat it or tie, plus
  the allowed modeling slack).

* Seeded sim workloads replayed through the differential harness with
  the optimizer on and off: both runs must agree with the independent
  oracle on every statement.

* Predicted-vs-actual: for single-variable statements the Fig. 9
  prediction printed by EXPLAIN ANALYZE must match the metered pages
  within ``RATIO_TOLERANCE``.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro import FOREVER, Clock, TemporalDatabase, parse_temporal
from repro.server.telemetry_smoke import RATIO_TOLERANCE
from repro.sim.generator import generate_workload
from repro.sim.harness import QUICK_MATRIX, run_workload
from repro.tquel.explain import explain

MAR1_1980 = parse_temporal("3/1/80")
JAN15_1980 = parse_temporal("1/15/80")

STRUCTURES = ("heap", "hash", "isam", "btree", "twolevel")


def build(scenario, optimizer: bool) -> TemporalDatabase:
    db = TemporalDatabase(
        "odiff", clock=Clock(start=MAR1_1980, tick=60), optimizer=optimizer
    )
    n = scenario["tuples"]
    db.execute("create persistent interval r (id = i4, v = i4, pad = c40)")
    structure = scenario["structure"]
    if structure != "heap":
        db.execute(f"modify r to {structure} on id")
    if (
        scenario["index"]
        and structure != "btree"
        and not scenario["partitions"]
    ):
        # B-trees reject secondary indexes (splits relocate records);
        # partitioned relations reject them too (a tid cannot address
        # N stores).
        db.execute("index on r is vix (v)")
    rows = [
        (i, (i * 7) % 50, "p", JAN15_1980 + 3600 * i, FOREVER,
         JAN15_1980 + 3600 * i, FOREVER)
        for i in range(1, n + 1)
    ]
    db.copy_in("r", rows)
    db.execute("range of x is r")
    for step in range(scenario["updates"]):
        target = (step * 7) % n + 1
        db.execute(f"replace x (v = x.v + 100) where x.id = {target}")
    if scenario["partitions"] and structure in ("heap", "hash", "isam"):
        # Partitioning supports heap, hash and isam structures only.
        db.partition_relation(
            "r", "hash", "id", scenario["partitions"], parallel="serial"
        )
    return db


def queries(scenario) -> "list[str]":
    probe = scenario["probe"]
    threshold = scenario["threshold"]
    return [
        f"retrieve (x.id, x.v) where x.id = {probe}",
        f"retrieve (x.id, x.v) where x.v = {threshold}",
        f"retrieve (x.v) where x.v >= {threshold}",
        "retrieve (c = count(x.id), s = sum(x.v)) "
        f"where x.v >= {threshold}",
        'retrieve (x.id, x.v) as of "1/20/80"',
        f'retrieve (x.id) where x.id = {probe} as of "now"',
    ]


def run_query(db, text):
    """(sorted rows, input pages) for one query on a cold buffer pool."""
    db.pool.flush_all()
    result = db.execute(text)
    return sorted(result.rows), result.io.input_pages


def release(db) -> None:
    for relation in list(db._relations.values()):
        close = getattr(relation, "release", None)
        if close is not None:
            close()


@st.composite
def scenarios(draw):
    return {
        "structure": draw(st.sampled_from(STRUCTURES)),
        "index": draw(st.booleans()),
        "partitions": draw(st.sampled_from([0, 0, 2, 3])),
        "tuples": draw(st.integers(min_value=8, max_value=48)),
        "updates": draw(st.integers(min_value=0, max_value=6)),
        "probe": draw(st.integers(min_value=1, max_value=48)),
        "threshold": draw(st.integers(min_value=0, max_value=60)),
    }


@settings(max_examples=25, deadline=None)
@given(scenario=scenarios())
def test_optimizer_on_off_rows_identical(scenario):
    planned = build(scenario, optimizer=True)
    fixed = build(scenario, optimizer=False)
    try:
        for text in queries(scenario):
            planned_rows, planned_pages = run_query(planned, text)
            fixed_rows, fixed_pages = run_query(fixed, text)
            assert planned_rows == fixed_rows, text
            # The optimizer only flips when the model says the new path
            # is strictly cheaper; metered pages may exceed the fixed
            # strategy's only by the allowed modeling slack.
            assert planned_pages <= fixed_pages * (1 + RATIO_TOLERANCE) + 1, (
                f"{text}: optimizer {planned_pages} pages vs fixed "
                f"{fixed_pages}"
            )
    finally:
        release(planned)
        release(fixed)


@settings(max_examples=10, deadline=None)
@given(scenario=scenarios())
def test_optimizer_on_off_mutations_identical(scenario):
    statements = [
        'append to r (id = 100, v = 1000, pad = "q")',
        f"replace x (v = x.v + 5) where x.id = {scenario['probe']}",
        f"delete x where x.id = {(scenario['probe'] % 5) + 1}",
    ]
    planned = build(scenario, optimizer=True)
    fixed = build(scenario, optimizer=False)
    try:
        for text in statements:
            planned.execute(text)
            fixed.execute(text)
        for text in queries(scenario):
            assert run_query(planned, text)[0] == run_query(fixed, text)[0]
        # The final states agree wholesale, not just per-query.
        assert run_query(planned, "retrieve (x.id, x.v, x.pad)") == (
            run_query(fixed, "retrieve (x.id, x.v, x.pad)")
        )
    finally:
        release(planned)
        release(fixed)


def test_sim_workloads_agree_with_oracle_both_ways():
    """Seeded sim workloads: optimizer on and off both match the
    independent oracle on every structure of the quick matrix."""
    for seed in (5, 11):
        workload = generate_workload(seed, ops=60)
        for config in QUICK_MATRIX:
            for optimizer in (True, False):
                report = run_workload(
                    workload,
                    dataclasses.replace(config, optimizer=optimizer),
                )
                assert report.divergence is None, (
                    f"seed {seed} {config.label} optimizer={optimizer}: "
                    f"{report.divergence}"
                )


def test_predictions_within_model_tolerance():
    """EXPLAIN ANALYZE's Fig. 9 prediction matches the metered pages
    within RATIO_TOLERANCE on every access method."""
    for structure in STRUCTURES:
        scenario = {
            "structure": structure, "index": False, "partitions": 0,
            "tuples": 40, "updates": 4, "probe": 7, "threshold": 21,
        }
        db = build(scenario, optimizer=True)
        try:
            for text in (
                "retrieve (x.id, x.v) where x.id = 7",
                "retrieve (x.v) where x.v >= 21",
            ):
                db.pool.flush_all()
                rendered = explain(db, text, analyze=True)
                line = next(
                    (ln for ln in rendered.split("\n")
                     if "cost model:" in ln),
                    None,
                )
                assert line is not None, rendered
                ratio = float(line.rsplit("(ratio ", 1)[1].rstrip(")"))
                assert abs(ratio - 1.0) <= RATIO_TOLERANCE, (
                    f"{structure}: {line}"
                )
        finally:
            release(db)
