"""Property-based parser tests: unparse(ast) re-parses to an equal AST."""

from hypothesis import given, settings, strategies as st

from repro.tquel import ast
from repro.tquel.parser import parse_statement
from repro.tquel.unparse import unparse

idents = st.sampled_from(["h", "i", "emp", "t1", "rel_x"])
attrs = st.sampled_from(["id", "amount", "seq", "name"])


def scalar_exprs(depth=2):
    # Negative literals lex as unary minus applied to a positive literal,
    # so the generator produces them through UnaryOp instead.
    leaf = st.one_of(
        st.builds(ast.Const, st.integers(0, 1000)),
        st.builds(ast.Const, st.sampled_from(["abc", "x y", ""])),
        st.builds(ast.Attr, idents, attrs),
    )
    if depth == 0:
        return leaf
    sub = scalar_exprs(depth - 1)
    return st.one_of(
        leaf,
        st.builds(ast.BinOp, st.sampled_from("+-*/"), sub, sub),
        st.builds(ast.UnaryOp, st.just("-"), sub),
    )


def predicates(depth=2):
    comparison = st.builds(
        ast.Compare,
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        scalar_exprs(1),
        scalar_exprs(1),
    )
    if depth == 0:
        return comparison
    sub = predicates(depth - 1)
    return st.one_of(
        comparison,
        st.builds(
            ast.BoolOp,
            st.sampled_from(["and", "or"]),
            st.tuples(sub, sub),
        ),
        st.builds(ast.NotOp, sub),
    )


def temporal_exprs(depth=2):
    leaf = st.one_of(
        st.builds(ast.TempVar, idents),
        st.builds(ast.TempConst, st.sampled_from(["now", "1981", "1/1/80"])),
    )
    if depth == 0:
        return leaf
    sub = temporal_exprs(depth - 1)
    return st.one_of(
        leaf,
        st.builds(ast.TempEdge, st.sampled_from(["start", "end"]), sub),
        st.builds(
            ast.TempBin, st.sampled_from(["overlap", "extend"]), sub, sub
        ),
    )


def when_exprs(depth=2):
    predicate = st.builds(
        ast.TempBin,
        st.sampled_from(["overlap", "precede"]),
        temporal_exprs(1),
        temporal_exprs(1),
    )
    if depth == 0:
        return predicate
    sub = when_exprs(depth - 1)
    return st.one_of(
        predicate,
        st.builds(
            ast.BoolOp, st.sampled_from(["and", "or"]), st.tuples(sub, sub)
        ),
        st.builds(ast.NotOp, sub),
    )


def targets():
    return st.lists(
        st.builds(
            ast.TargetItem,
            st.one_of(st.none(), st.sampled_from(["a", "b", "res"])),
            scalar_exprs(1),
        ),
        min_size=1,
        max_size=3,
    ).map(tuple)


retrieves = st.builds(
    ast.RetrieveStmt,
    targets=targets(),
    into=st.none(),
    unique=st.booleans(),
    valid=st.one_of(
        st.none(),
        st.builds(ast.ValidClause, at=temporal_exprs(1)),
        st.builds(
            ast.ValidClause,
            at=st.none(),
            from_=temporal_exprs(1),
            to=temporal_exprs(1),
        ),
    ),
    where=st.one_of(st.none(), predicates(2)),
    when=st.one_of(st.none(), when_exprs(2)),
    as_of=st.one_of(
        st.none(),
        st.builds(
            ast.AsOfClause,
            at=st.builds(ast.TempConst, st.sampled_from(["now", "1981"])),
            through=st.one_of(
                st.none(),
                st.builds(ast.TempConst, st.just("forever")),
            ),
        ),
    ),
)


class TestRoundTrip:
    @given(retrieves)
    @settings(max_examples=120, deadline=None)
    def test_retrieve_roundtrip(self, stmt):
        assert parse_statement(unparse(stmt)) == stmt

    @given(idents, targets(), st.one_of(st.none(), predicates(1)))
    @settings(max_examples=60, deadline=None)
    def test_replace_roundtrip(self, var, target_list, where):
        named = tuple(
            ast.TargetItem(name=item.name or "seq", expr=item.expr)
            for item in target_list
        )
        stmt = ast.ReplaceStmt(var=var, targets=named, where=where)
        assert parse_statement(unparse(stmt)) == stmt

    @given(idents, st.one_of(st.none(), predicates(1)),
           st.one_of(st.none(), when_exprs(1)))
    @settings(max_examples=60, deadline=None)
    def test_delete_roundtrip(self, var, where, when):
        stmt = ast.DeleteStmt(var=var, where=where, when=when)
        assert parse_statement(unparse(stmt)) == stmt

    @given(
        st.booleans(),
        st.one_of(st.none(), st.sampled_from(["interval", "event"])),
        st.lists(
            st.tuples(
                st.sampled_from(["id", "v", "pad"]),
                st.sampled_from(["i4", "c8", "f8"]),
            ),
            min_size=1,
            max_size=3,
            unique_by=lambda c: c[0],
        ).map(tuple),
    )
    @settings(max_examples=60, deadline=None)
    def test_create_roundtrip(self, persistent, kind, columns):
        stmt = ast.CreateStmt(
            relation="r", columns=columns, persistent=persistent, kind=kind
        )
        assert parse_statement(unparse(stmt)) == stmt

    def test_figure4_queries_roundtrip_stably(self):
        # unparse . parse is idempotent on the paper's benchmark queries.
        from tests.unit.test_parser import TestPaperFigure4

        for query in TestPaperFigure4.QUERIES:
            first = parse_statement(query)
            second = parse_statement(unparse(first))
            assert first == second


class TestScientificNotation:
    """Regression: unparse renders small/large floats via ``repr``, which
    uses scientific notation -- the lexer must accept it or unparsed text
    stops being reparseable (found by the sim fuzzer's round-trip check).
    """

    def test_e_notation_reparses(self):
        for text in ("1e-05", "2.5e3", "1E+20", "7e0"):
            stmt = parse_statement(f"retrieve (x.a) where x.f = {text}")
            assert parse_statement(unparse(stmt)) == stmt

    def test_tiny_float_round_trips(self):
        stmt = parse_statement("retrieve (x.a) where x.f = 0.00001")
        rendered = unparse(stmt)
        assert "e" in rendered  # repr picked scientific notation
        assert parse_statement(rendered) == stmt

    def test_identifier_after_number_is_not_an_exponent(self):
        # "1 e5" must stay an int followed by an identifier (and so fail
        # to parse), not fuse into the float 1e5.
        import pytest

        from repro.errors import TQuelError

        with pytest.raises(TQuelError):
            parse_statement("retrieve (x.a) where x.a = 1 e5")
