"""Differential testing of partitioned scatter-gather execution.

Partitioning is a physical-layout change and scatter-gather an
execution-strategy change: neither may alter a single answer row.
Hypothesis generates temporal relations, version histories and query
mixes; each scenario runs on an unpartitioned reference database and on
a partitioned copy (hash or range, zone map on or off), and every
result must match row-for-row.

A second, deterministic test drives one partitioned database through
all three gather modes (``serial``, ``thread``, ``process``) and
asserts rows *and page accounting* are identical -- the paper's entire
result set is page counts, so a worker that meters a read differently
is a regression even when the rows agree.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import FOREVER, Clock, TemporalDatabase, parse_temporal

MAR1_1980 = parse_temporal("3/1/80")
JAN15_1980 = parse_temporal("1/15/80")


def build(scenario) -> TemporalDatabase:
    db = TemporalDatabase("pdiff", clock=Clock(start=MAR1_1980, tick=60))
    n = scenario["tuples"]
    db.execute("create persistent interval r (id = i4, v = i4, pad = c40)")
    rows = [
        (i, i * 10, "p", JAN15_1980 + 3600 * i, FOREVER,
         JAN15_1980 + 3600 * i, FOREVER)
        for i in range(1, n + 1)
    ]
    db.copy_in("r", rows)
    db.execute("range of x is r")
    for step in range(scenario["updates"]):
        target = (step * 7) % n + 1
        db.execute(f"replace x (v = x.v + 100) where x.id = {target}")
    return db


def partition(db, scenario, parallel: str = "serial") -> None:
    n = scenario["tuples"]
    count = scenario["partitions"]
    if scenario["method"] == "hash":
        db.partition_relation("r", "hash", "id", count, parallel=parallel)
    else:
        step = max(1, n // count)
        cuts = [1 + step * k for k in range(1, count)]
        db.partition_relation(
            "r", "range", "id", count, parallel=parallel, bounds=cuts
        )
    if scenario["zonemap"]:
        db.relation("r").enable_zone_map()


def queries(scenario) -> "list[str]":
    probe = scenario["probe"]
    threshold = scenario["threshold"] * 10
    return [
        f"retrieve (x.id, x.v) where x.id = {probe}",
        f"retrieve (x.v) where x.v >= {threshold}",
        "retrieve (c = count(x.id), s = sum(x.v)) "
        f"where x.v >= {threshold}",
        'retrieve (x.id, x.v) as of "1/20/80"',
        'retrieve (x.id) as of "now"',
        f'retrieve (x.id) where x.id >= {probe} when x overlap "2/1/80"',
    ]


def run_query(db, text):
    """(sorted result rows, (input pages, output pages)) for one query."""
    db.pool.flush_all()
    result = db.execute(text)
    return sorted(result.rows), (result.io.input_pages, result.io.output_pages)


def release(db) -> None:
    for relation in list(db._relations.values()):
        close = getattr(relation, "release", None)
        if close is not None:
            close()


@st.composite
def scenarios(draw):
    return {
        "tuples": draw(st.integers(min_value=8, max_value=48)),
        "updates": draw(st.integers(min_value=0, max_value=6)),
        "probe": draw(st.integers(min_value=1, max_value=48)),
        "threshold": draw(st.integers(min_value=0, max_value=48)),
        "method": draw(st.sampled_from(["hash", "range"])),
        "partitions": draw(st.integers(min_value=2, max_value=4)),
        "zonemap": draw(st.booleans()),
    }


@settings(max_examples=20, deadline=None)
@given(scenario=scenarios())
def test_partitioned_matches_unpartitioned(scenario):
    reference = build(scenario)
    partitioned = build(scenario)
    partition(partitioned, scenario)
    try:
        for text in queries(scenario):
            ref_rows, _ = run_query(reference, text)
            part_rows, _ = run_query(partitioned, text)
            assert part_rows == ref_rows, text
    finally:
        release(partitioned)


@settings(max_examples=8, deadline=None)
@given(scenario=scenarios())
def test_mutations_match_after_partitioning(scenario):
    """Appends/replaces/deletes land identically whatever the layout."""
    statements = [
        'append to r (id = 100, v = 1000, pad = "q")',
        f"replace x (v = x.v + 5) where x.id = {scenario['probe']}",
        f"delete x where x.id = {(scenario['probe'] % 5) + 1}",
    ]
    reference = build(scenario)
    partitioned = build(scenario)
    partition(partitioned, scenario)
    try:
        for text in statements:
            reference.execute(text)
            partitioned.execute(text)
        for text in queries(scenario):
            assert run_query(partitioned, text)[0] == run_query(reference, text)[0]
    finally:
        release(partitioned)


def test_gather_modes_agree_on_rows_and_pages():
    """serial / thread / process: same rows, same metered pages."""
    scenario = {
        "tuples": 48,
        "updates": 4,
        "probe": 7,
        "threshold": 12,
        "method": "hash",
        "partitions": 4,
        "zonemap": False,
    }
    reference = build(scenario)
    ref_answers = [run_query(reference, text) for text in queries(scenario)]

    db = build(scenario)
    try:
        answers = {}
        for mode in ("serial", "thread", "process"):
            partition(db, scenario, parallel=mode)
            answers[mode] = [run_query(db, text) for text in queries(scenario)]
        for mode in ("thread", "process"):
            assert answers[mode] == answers["serial"], mode
        # ...and the rows (not the page counts -- layout changed) match
        # the unpartitioned reference.
        for got, want in zip(answers["serial"], ref_answers):
            assert got[0] == want[0]
    finally:
        release(db)
