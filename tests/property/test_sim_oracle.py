"""Invariants of the sim oracle's temporal semantics.

The oracle (``repro.sim.oracle``) is the independent model the
differential fuzzer diffs the engine against, so its own semantics need
checks that do not involve the engine at all.  Generated workloads
drive it alone and these properties are asserted over every statement:

* **Append-only version counts** -- on a persistent (rollback/temporal)
  relation no statement except ``vacuum`` or ``destroy`` ever removes a
  stored version, and a successful ``append`` adds exactly the reported
  number of versions.
* **As-of monotonicity** -- the set of versions visible at a past
  transaction time never changes as later statements execute (``vacuum``
  may only shrink it).
* **Temporal replace** -- replacing an in-effect interval fact inserts
  exactly two new versions (the closing version and the replacement)
  while stamping the original in place.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.generator import generate_workload
from repro.sim.oracle import FOREVER, Oracle, OracleError
from repro.tquel import ast
from repro.tquel.parser import parse_statement


def _counts(oracle: Oracle) -> "dict[str, int]":
    return {
        name: len(rel.versions)
        for name, rel in oracle.relations.items()
        if rel.persistent
    }


def _visible_at(oracle: Oracle, when: int) -> "dict[str, Counter]":
    """Versions whose transaction period contains *when*, per relation.

    The ``transaction_stop`` column is projected out: stamping it on a
    current version is how supersession is *recorded*, and does not
    change what an as-of query at *when* returns.
    """
    visible: "dict[str, Counter]" = {}
    for name, rel in oracle.relations.items():
        if not rel.persistent:
            continue
        start = rel.positions["transaction_start"]
        stop = rel.positions["transaction_stop"]
        visible[name] = Counter(
            row[:stop] + row[stop + 1:]
            for row in rel.versions
            if row[start] <= when < row[stop]
        )
    return visible


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=1, max_value=500),
    db_type=st.sampled_from(["rollback", "temporal"]),
)
def test_persistent_versions_are_append_only(seed, db_type):
    workload = generate_workload(seed, db_type=db_type, ops=50)
    oracle = Oracle(workload.clock_start, workload.clock_tick)
    for stmt in workload.statements:
        before = _counts(oracle)
        try:
            result = oracle.execute(stmt)
        except OracleError:
            continue
        after = _counts(oracle)
        prunes = isinstance(stmt, (ast.VacuumStmt, ast.DestroyStmt))
        for name, count in before.items():
            if name not in after:
                assert prunes, f"{name} vanished under {type(stmt).__name__}"
                continue
            if prunes:
                continue
            assert after[name] >= count, (
                f"{type(stmt).__name__} removed versions from {name}"
            )
        if isinstance(stmt, ast.AppendStmt) and stmt.relation in before:
            added = after[stmt.relation] - before[stmt.relation]
            assert added == result.count


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=1, max_value=500))
def test_rollback_asof_is_immutable(seed):
    workload = generate_workload(seed, db_type="rollback", ops=50)
    oracle = Oracle(workload.clock_start, workload.clock_tick)
    half = len(workload.statements) // 2
    for stmt in workload.statements[:half]:
        try:
            oracle.execute(stmt)
        except OracleError:
            pass
    checkpoint = oracle.now
    frozen = _visible_at(oracle, checkpoint)
    for stmt in workload.statements[half:]:
        vacuumed = isinstance(stmt, (ast.VacuumStmt, ast.DestroyStmt))
        try:
            oracle.execute(stmt)
        except OracleError:
            continue
        current = _visible_at(oracle, checkpoint)
        for name, rows in list(frozen.items()):
            if name not in current:
                assert vacuumed or name not in oracle.relations
                frozen.pop(name, None)
                continue
            if vacuumed:
                assert all(
                    current[name][key] <= count
                    for key, count in rows.items()
                ) and not (current[name] - rows), (
                    f"vacuum grew the past of {name}"
                )
                frozen[name] = current[name]
            else:
                assert current[name] == rows, (
                    f"{type(stmt).__name__} rewrote the past of {name}"
                )


@pytest.fixture
def oracle():
    return Oracle(start=320716800, tick=3600)


def _run_all(oracle, texts):
    for text in texts:
        oracle.execute(parse_statement(text))


def test_temporal_replace_inserts_exactly_two_versions(oracle):
    _run_all(
        oracle,
        [
            'create persistent interval r (id = i4, a = i4)',
            'range of x is r',
            # In effect: the validity period straddles the clock.
            'append to r (id = 1, a = 10) '
            'valid from "1980-03-01 00:30:00" to "1980-04-01"',
        ],
    )
    rel = oracle.relations["r"]
    assert len(rel.versions) == 1
    (original,) = rel.versions
    now_before = oracle.now
    result = oracle.execute(parse_statement("replace x (a = 11)"))
    assert result.count == 1
    assert len(rel.versions) == 3

    now = now_before + oracle.tick
    stop = rel.positions["transaction_stop"]
    start = rel.positions["transaction_start"]
    vfrom = rel.positions["valid_from"]
    vto = rel.positions["valid_to"]
    a = rel.positions["a"]

    stamped = [r for r in rel.versions if r[stop] == now]
    inserted = [r for r in rel.versions if r[start] == now]
    assert len(stamped) == 1 and len(inserted) == 2
    # The stamped original keeps its values and validity.
    assert stamped[0][:2] == original[:2]
    assert (stamped[0][vfrom], stamped[0][vto]) == (
        original[vfrom], original[vto],
    )
    # One insert closes the old fact's validity at now...
    closing = [r for r in inserted if r[a] == 10]
    assert len(closing) == 1 and closing[0][vto] == now
    # ...the other carries the new values onward.
    replacement = [r for r in inserted if r[a] == 11]
    assert len(replacement) == 1
    assert replacement[0][vfrom] == now
    assert replacement[0][vto] == original[vto]
    assert replacement[0][stop] == FOREVER


def test_temporal_replace_of_postactive_fact_inserts_one_version(oracle):
    _run_all(
        oracle,
        [
            'create persistent interval r (id = i4, a = i4)',
            'range of x is r',
            # Postactive: validity entirely in the future.
            'append to r (id = 1, a = 10) '
            'valid from "1980-06-01" to "1980-07-01"',
        ],
    )
    rel = oracle.relations["r"]
    oracle.execute(parse_statement("replace x (a = 11)"))
    # No closing version: the fact never held.
    assert len(rel.versions) == 2
    values = sorted(row[rel.positions["a"]] for row in rel.versions)
    assert values == [10, 11]
