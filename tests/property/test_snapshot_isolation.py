"""Snapshot isolation: a pinned reader never sees a concurrent write.

The engine's claim (repro.engine.concurrency): because committed
versions are append-only in transaction time -- updates only stamp
``transaction_stop`` and insert new versions -- a session that pins a
watermark sees exactly the committed state at that moment, whatever
writers do afterwards.  Hypothesis interleaves a pinned reader with
writer statements over every access method and checks the reader's view
never moves, and lands on the live state after unpinning.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import Clock, TemporalDatabase, parse_temporal

STRUCTURES = ["heap", "hash", "isam", "btree", "twolevel"]

_MODIFY = {
    "heap": "modify rel to heap",
    "hash": "modify rel to hash on id where fillfactor = 100",
    "isam": "modify rel to isam on id where fillfactor = 100",
    "btree": "modify rel to btree on id",
    "twolevel": (
        'modify rel to twolevel on id where primary = "hash", '
        'history = "clustered"'
    ),
}

# Writer operations: (kind, id). Replace/delete target one id; append
# introduces a fresh one.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["append", "replace", "delete"]),
        st.integers(min_value=1, max_value=6),
    ),
    min_size=1,
    max_size=8,
)


def _canon(rows):
    return sorted(tuple(row) for row in rows)


@settings(max_examples=25, deadline=None)
@given(
    structure=st.sampled_from(STRUCTURES),
    initial=st.integers(min_value=1, max_value=6),
    ops=_ops,
)
def test_pinned_reader_sees_exactly_prepin_state(structure, initial, ops):
    db = TemporalDatabase(
        "iso", clock=Clock(start=parse_temporal("1/1/80"), tick=3600)
    )
    writer = db.session()
    writer.execute("create persistent interval rel (id = i4, amount = i4)")
    writer.execute(_MODIFY[structure])
    writer.execute("range of w is rel")
    next_id = 1
    for _ in range(initial):
        writer.execute(
            f"append to rel (id = {next_id}, amount = {next_id * 10})"
        )
        next_id += 1

    reader = db.session()
    reader.execute("range of r is rel")
    reader.pin()
    baseline = _canon(reader.execute("retrieve (r.id, r.amount)").rows)
    assert len(baseline) == initial

    for kind, target in ops:
        if kind == "append":
            writer.execute(
                f"append to rel (id = {next_id}, amount = {next_id * 10})"
            )
            next_id += 1
        elif kind == "replace":
            writer.execute(
                f"replace w (amount = {target * 1000}) where w.id = {target}"
            )
        else:
            writer.execute(f"delete w where w.id = {target}")
        # The pinned view is immune to every committed write.
        view = _canon(reader.execute("retrieve (r.id, r.amount)").rows)
        assert view == baseline, (
            f"pinned reader moved after {kind} {target} on {structure}: "
            f"{view} != {baseline}"
        )

    # After unpinning, the reader converges on the writer's live state.
    reader.unpin()
    live_reader = _canon(
        reader.execute('retrieve (r.id, r.amount) when r overlap "now"').rows
    )
    live_writer = _canon(
        writer.execute('retrieve (w.id, w.amount) when w overlap "now"').rows
    )
    assert live_reader == live_writer
    reader.close()
    writer.close()


@settings(max_examples=10, deadline=None)
@given(structure=st.sampled_from(STRUCTURES))
def test_pin_also_freezes_asof_on_rollback_relations(structure):
    """A pinned reader's default as-of is the watermark, so rollback
    relations answer with the pre-pin catalog of versions too."""
    db = TemporalDatabase(
        "iso2", clock=Clock(start=parse_temporal("1/1/80"), tick=3600)
    )
    writer = db.session()
    writer.execute("create persistent rel (id = i4, amount = i4)")
    writer.execute(_MODIFY[structure])
    writer.execute("range of w is rel")
    writer.execute("append to rel (id = 1, amount = 10)")
    writer.execute("append to rel (id = 2, amount = 20)")

    reader = db.session()
    reader.execute("range of r is rel")
    with reader.snapshot():
        before = _canon(reader.execute("retrieve (r.id, r.amount)").rows)
        writer.execute("replace w (amount = 99) where w.id = 1")
        writer.execute("delete w where w.id = 2")
        assert _canon(
            reader.execute("retrieve (r.id, r.amount)").rows
        ) == before
    after = _canon(reader.execute("retrieve (r.id, r.amount)").rows)
    assert after == _canon([(1, 99)])
    reader.close()
    writer.close()
