"""Unit tests for the access-method base machinery (DecodeCache, rids,
capacity rules)."""

import pytest

from repro.access.base import DecodeCache, effective_capacity
from repro.access.heap import HeapFile
from repro.errors import AccessMethodError
from repro.storage.buffer import BufferPool
from repro.storage.page import Page
from repro.storage.record import FieldSpec, RecordCodec


def make_heap():
    codec = RecordCodec([FieldSpec.parse("id", "i4"),
                         FieldSpec.parse("s", "c96")])
    pool = BufferPool()
    heap = HeapFile(pool.create_file("h", codec.record_size), codec)
    heap.build([(i, "x") for i in range(20)])
    return heap, codec


class TestEffectiveCapacity:
    def test_full_loading(self):
        assert effective_capacity(8, 100) == 8

    def test_half_loading(self):
        assert effective_capacity(8, 50) == 4

    def test_paper_static_pages(self):
        assert effective_capacity(9, 50) == 4  # floor, as observed

    def test_never_below_one(self):
        assert effective_capacity(8, 1) == 1

    def test_bounds(self):
        with pytest.raises(AccessMethodError):
            effective_capacity(8, 0)
        with pytest.raises(AccessMethodError):
            effective_capacity(8, 101)


class TestDecodeCache:
    def test_caches_by_version(self):
        codec = RecordCodec([FieldSpec.parse("id", "i4")])
        cache = DecodeCache(codec)
        page = Page(4)
        page.append(codec.encode((1,)))
        first = cache.rows(0, page)
        assert cache.rows(0, page) is first  # same object: cache hit

    def test_invalidated_on_mutation(self):
        codec = RecordCodec([FieldSpec.parse("id", "i4")])
        cache = DecodeCache(codec)
        page = Page(4)
        page.append(codec.encode((1,)))
        cache.rows(0, page)
        page.append(codec.encode((2,)))
        assert cache.rows(0, page) == [(1,), (2,)]

    def test_clear(self):
        codec = RecordCodec([FieldSpec.parse("id", "i4")])
        cache = DecodeCache(codec)
        page = Page(4)
        page.append(codec.encode((7,)))
        first = cache.rows(0, page)
        cache.clear()
        assert cache.rows(0, page) is not first


class TestRids:
    def test_read_rid(self):
        heap, _ = make_heap()
        assert heap.read_rid((0, 3)) == (3, "x")

    def test_read_rid_bad_slot(self):
        heap, _ = make_heap()
        with pytest.raises(AccessMethodError):
            heap.read_rid((0, 999))

    def test_update_wrong_width_rejected(self):
        from repro.errors import RecordCodecError

        heap, _ = make_heap()
        with pytest.raises(RecordCodecError):
            heap.update((0, 0), (1,))

    def test_keyed_on_without_key(self):
        heap, _ = make_heap()
        assert not heap.keyed_on(0)

    def test_snapshot_restore_base_meta(self):
        heap, _ = make_heap()
        meta = heap.snapshot_meta()
        heap._row_count = 0
        heap.restore_meta(meta)
        assert heap.row_count == 20
