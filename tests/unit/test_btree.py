"""Unit and property tests for the B+-tree access method."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.access.btree import BTreeFile
from repro.errors import AccessMethodError
from repro.storage.buffer import BufferPool
from repro.storage.record import FieldSpec, RecordCodec

FIELDS = [("id", "i4"), ("payload", "c112")]  # 116 bytes -> 8 per leaf


def make_tree(rows, fillfactor=100, fields=FIELDS):
    codec = RecordCodec([FieldSpec.parse(n, t) for n, t in fields])
    pool = BufferPool()
    tree = BTreeFile(pool.create_file("b", codec.record_size), codec, 0)
    tree.build(rows, fillfactor)
    pool.flush_all()
    pool.stats.reset()
    return tree, pool


def rows(n):
    return [(i, "x") for i in range(1, n + 1)]


class TestBuild:
    def test_single_leaf(self):
        tree, _ = make_tree(rows(5))
        assert tree.height == 0
        assert tree.page_count == 1

    def test_two_levels(self):
        tree, _ = make_tree(rows(64))
        assert tree.height == 1
        assert tree.leaf_pages == 8

    def test_scan_is_sorted(self):
        shuffled = [(i, "x") for i in (9, 2, 7, 1, 8, 3)]
        tree, _ = make_tree(shuffled)
        assert [row[0] for _, row in tree.scan()] == [1, 2, 3, 7, 8, 9]

    def test_empty_build(self):
        tree, _ = make_tree([])
        assert list(tree.scan()) == []
        assert list(tree.lookup(5)) == []

    def test_fillfactor_leaves_space(self):
        tree, _ = make_tree(rows(32), fillfactor=50)
        assert tree.leaf_pages == 8

    def test_requires_key(self):
        codec = RecordCodec([FieldSpec.parse("id", "i4")])
        with pytest.raises(AccessMethodError):
            BTreeFile(BufferPool().create_file("b", 4), codec, None)


class TestLookup:
    def test_every_key_found(self):
        tree, _ = make_tree(rows(100))
        for key in range(1, 101):
            assert [row for _, row in tree.lookup(key)] == [(key, "x")]

    def test_missing_keys(self):
        tree, _ = make_tree(rows(100))
        assert list(tree.lookup(0)) == []
        assert list(tree.lookup(101)) == []

    def test_lookup_cost_is_height_plus_leaves(self):
        tree, pool = make_tree(rows(64))
        list(tree.lookup(30))
        assert pool.stats.totals().user.reads == 2  # root + leaf

    def test_duplicates_across_leaves(self):
        data = rows(6) + [(7, f"d{i}") for i in range(20)] + [(8, "y")]
        tree, _ = make_tree(data)
        assert len(list(tree.lookup(7))) == 20
        assert len(list(tree.lookup(8))) == 1


class TestInsert:
    def test_insert_into_space(self):
        tree, _ = make_tree(rows(4))
        tree.insert((99, "new"))
        assert [row for _, row in tree.lookup(99)] == [(99, "new")]
        assert tree.page_count == 1

    def test_leaf_split(self):
        tree, _ = make_tree(rows(8))  # one full leaf
        tree.insert((9, "y"))
        assert tree.height == 1
        assert [row[0] for _, row in tree.scan()] == list(range(1, 10))

    def test_many_inserts_keep_order(self):
        tree, _ = make_tree([])
        for key in (5, 3, 8, 1, 9, 7, 2, 6, 4, 0, 15, 12, 11, 13, 14, 10):
            tree.insert((key, f"v{key}"))
        assert [row[0] for _, row in tree.scan()] == list(range(16))

    def test_root_splits_grow_height(self):
        tree, _ = make_tree([])
        for key in range(500):
            tree.insert((key, "x"))
        assert tree.height >= 1
        assert len(list(tree.scan())) == 500
        for probe in (0, 250, 499):
            assert [row for _, row in tree.lookup(probe)] == [(probe, "x")]

    def test_version_pileup_clusters_per_key(self):
        tree, pool = make_tree(rows(64))
        for version in range(40):
            tree.insert((30, f"v{version}"))
        pool.flush_all()
        pool.stats.reset()
        found = list(tree.lookup(30))
        assert len(found) == 41
        # 41 versions over half-full split leaves (~8) plus the descent:
        # far fewer pages than one per version.
        assert pool.stats.totals().user.reads <= 12

    def test_row_count_tracks_inserts(self):
        tree, _ = make_tree(rows(10))
        for _ in range(5):
            tree.insert((3, "v"))
        assert tree.row_count == 15


class TestPersistence:
    def test_snapshot_restore_meta(self):
        tree, _ = make_tree(rows(64))
        tree.insert((30, "v"))
        meta = tree.snapshot_meta()
        tree._root = -1
        tree._internal = set()
        tree.restore_meta(meta)
        assert [row for _, row in tree.lookup(30)] == [
            (30, "x"), (30, "v"),
        ]


class TestProperties:
    @given(
        st.lists(
            st.integers(min_value=-50, max_value=50),
            min_size=0,
            max_size=60,
        ),
        st.lists(
            st.integers(min_value=-50, max_value=50),
            min_size=0,
            max_size=40,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_sorted_oracle(self, initial, inserts):
        tree, _ = make_tree([(k, "b") for k in initial])
        for key in inserts:
            tree.insert((key, "i"))
        oracle = sorted(initial + inserts)
        assert [row[0] for _, row in tree.scan()] == oracle
        for probe in set(oracle) | {-51, 51}:
            expected = oracle.count(probe)
            assert len(list(tree.lookup(probe))) == expected

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_heavy_duplicates(self, keys):
        tree, _ = make_tree([])
        for key in keys:
            tree.insert((key, "v"))
        for probe in set(keys):
            assert len(list(tree.lookup(probe))) == keys.count(probe)
