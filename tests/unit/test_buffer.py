"""Unit tests for paged files, buffer pools and I/O accounting -- the
"1 buffer for each user relation" rule of Section 5.1."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferedFile, BufferPool
from repro.storage.iostats import IOCounters, IOStats
from repro.storage.pager import PagedFile


@pytest.fixture
def stats():
    return IOStats()


@pytest.fixture
def file(stats):
    buffered = BufferedFile("rel", 100, stats, buffers=1)
    for _ in range(4):
        buffered.allocate()
    buffered.flush()
    stats.reset()
    return buffered


class TestPagedFile:
    def test_allocate_sequential_ids(self):
        file = PagedFile(10)
        assert [file.allocate() for _ in range(3)] == [0, 1, 2]
        assert file.page_count == 3

    def test_out_of_range(self):
        file = PagedFile(10)
        with pytest.raises(StorageError):
            file.page(0)

    def test_per_page_record_size_override(self):
        file = PagedFile(100)
        data = file.allocate()
        directory = file.allocate(record_size=4)
        assert file.page(data).record_size == 100
        assert file.page(directory).record_size == 4


class TestBufferAccounting:
    def test_first_read_costs_one(self, file, stats):
        file.read(0)
        assert stats.totals().user.reads == 1

    def test_rereading_buffered_page_is_free(self, file, stats):
        file.read(0)
        file.read(0)
        file.read(0)
        assert stats.totals().user.reads == 1

    def test_single_buffer_evicts_on_next_page(self, file, stats):
        file.read(0)
        file.read(1)
        file.read(0)  # 0 was evicted: counts again
        assert stats.totals().user.reads == 3

    def test_paper_scan_cost_equals_page_count(self, file, stats):
        for page_id in range(4):
            file.read(page_id)
        assert stats.totals().user.reads == 4

    def test_two_buffers_keep_two_pages(self, stats):
        buffered = BufferedFile("rel", 100, stats, buffers=2)
        for _ in range(3):
            buffered.allocate()
        buffered.flush()
        stats.reset()
        buffered.read(0)
        buffered.read(1)
        buffered.read(0)  # still resident
        buffered.read(1)
        assert stats.totals().user.reads == 2

    def test_lru_eviction_order(self, stats):
        buffered = BufferedFile("rel", 100, stats, buffers=2)
        for _ in range(3):
            buffered.allocate()
        buffered.flush()
        stats.reset()
        buffered.read(0)
        buffered.read(1)
        buffered.read(0)  # refresh 0; 1 is now LRU
        buffered.read(2)  # evicts 1
        buffered.read(0)  # free
        assert stats.totals().user.reads == 3

    def test_zero_buffers_rejected(self, stats):
        with pytest.raises(StorageError):
            BufferedFile("rel", 100, stats, buffers=0)


class TestWriteAccounting:
    def test_dirty_page_costs_one_write_on_flush(self, file, stats):
        page = file.read(0)
        page.append(b"x" * 100)
        file.mark_dirty(0)
        file.flush()
        assert stats.totals().user.writes == 1

    def test_dirty_page_costs_one_write_on_eviction(self, file, stats):
        page = file.read(0)
        page.append(b"x" * 100)
        file.mark_dirty(0)
        file.read(1)  # evicts dirty page 0
        assert stats.totals().user.writes == 1

    def test_clean_eviction_costs_nothing(self, file, stats):
        file.read(0)
        file.read(1)
        assert stats.totals().user.writes == 0

    def test_repeated_dirtying_while_resident_is_one_write(self, file, stats):
        page = file.read(0)
        page.append(b"x" * 100)
        file.mark_dirty(0)
        page.append(b"y" * 100)
        file.mark_dirty(0)
        file.flush()
        assert stats.totals().user.writes == 1

    def test_mark_dirty_requires_residency(self, file):
        file.read(0)
        file.read(1)  # 0 evicted
        with pytest.raises(StorageError):
            file.mark_dirty(0)

    def test_allocate_enters_dirty_without_read(self, stats):
        buffered = BufferedFile("rel", 100, stats, buffers=1)
        buffered.allocate()
        buffered.flush()
        totals = stats.totals()
        assert totals.user.reads == 0
        assert totals.user.writes == 1


class TestIOStats:
    def test_checkpoint_delta(self, stats):
        stats.register("a")
        stats.record_read("a")
        before = stats.checkpoint()
        stats.record_read("a")
        stats.record_write("a")
        delta = stats.delta(before)
        assert delta.user == IOCounters(reads=1, writes=1)

    def test_system_relations_separated(self, stats):
        stats.register("relations", system=True)
        stats.register("emp")
        stats.record_read("relations")
        stats.record_read("emp")
        totals = stats.totals()
        assert totals.user.reads == 1
        assert totals.system.reads == 1
        assert totals.input_pages == 1

    def test_by_relation_breakdown(self, stats):
        stats.register("a")
        stats.register("b")
        stats.record_read("a")
        stats.record_read("a")
        stats.record_write("b")
        by_relation = stats.totals().by_relation
        assert by_relation["a"].reads == 2
        assert by_relation["b"].writes == 1

    def test_reset(self, stats):
        stats.register("a")
        stats.record_read("a")
        stats.reset()
        assert stats.totals().user.reads == 0


class TestBufferPool:
    def test_pool_creates_and_replaces_files(self):
        pool = BufferPool()
        first = pool.create_file("rel", 100)
        second = pool.create_file("rel", 116)
        assert pool.file("rel") is second
        assert first is not second

    def test_unknown_file(self):
        pool = BufferPool()
        with pytest.raises(StorageError):
            pool.file("ghost")

    def test_flush_all(self):
        pool = BufferPool()
        file = pool.create_file("rel", 100)
        file.allocate()
        pool.flush_all()
        assert pool.stats.totals().user.writes == 1
