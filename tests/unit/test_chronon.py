"""Unit tests for chronons and the logical clock."""

import pytest

from repro.errors import ChrononRangeError, DateParseError
from repro.temporal.chronon import (
    BEGINNING,
    CHRONON_MAX,
    CHRONON_MIN,
    FOREVER,
    Clock,
    as_chronon,
    check_chronon,
)


class TestCheckChronon:
    def test_accepts_zero(self):
        assert check_chronon(0) == 0

    def test_accepts_max(self):
        assert check_chronon(CHRONON_MAX) == CHRONON_MAX

    def test_rejects_negative(self):
        with pytest.raises(ChrononRangeError):
            check_chronon(-1)

    def test_rejects_beyond_32_bits(self):
        with pytest.raises(ChrononRangeError):
            check_chronon(2**31)

    def test_rejects_bool(self):
        with pytest.raises(ChrononRangeError):
            check_chronon(True)

    def test_rejects_float(self):
        with pytest.raises(ChrononRangeError):
            check_chronon(1.5)

    def test_beginning_and_forever_are_extremes(self):
        assert BEGINNING == CHRONON_MIN
        assert FOREVER == CHRONON_MAX


class TestAsChronon:
    def test_passes_ints_through(self):
        assert as_chronon(12345) == 12345

    def test_parses_strings(self):
        assert as_chronon("forever") == FOREVER

    def test_now_needs_clock(self):
        with pytest.raises(DateParseError):
            as_chronon("now")

    def test_now_with_clock(self):
        clock = Clock(start=1000)
        assert as_chronon("now", clock=clock) == 1000

    def test_rejects_other_types(self):
        with pytest.raises(ChrononRangeError):
            as_chronon(3.14)


class TestClock:
    def test_default_start_is_1980(self):
        assert Clock().now() == 315532800

    def test_now_does_not_advance(self):
        clock = Clock(start=100)
        assert clock.now() == clock.now() == 100

    def test_advance_by_tick(self):
        clock = Clock(start=100, tick=7)
        assert clock.advance() == 107
        assert clock.now() == 107

    def test_advance_explicit(self):
        clock = Clock(start=100)
        assert clock.advance(50) == 150

    def test_advance_zero_allowed(self):
        clock = Clock(start=100, tick=0)
        assert clock.advance() == 100

    def test_advance_negative_rejected(self):
        clock = Clock(start=100)
        with pytest.raises(ChrononRangeError):
            clock.advance(-1)

    def test_negative_tick_rejected(self):
        with pytest.raises(ChrononRangeError):
            Clock(start=0, tick=-5)

    def test_set_forward(self):
        clock = Clock(start=100)
        assert clock.set(500) == 500

    def test_set_accepts_date_string(self):
        clock = Clock(start=0)
        assert clock.set("1980-01-01") == 315532800

    def test_set_backwards_rejected(self):
        clock = Clock(start=100)
        with pytest.raises(ChrononRangeError):
            clock.set(99)

    def test_overflow_rejected(self):
        clock = Clock(start=CHRONON_MAX)
        with pytest.raises(ChrononRangeError):
            clock.advance(1)

    def test_repr_is_readable(self):
        assert "Clock(" in repr(Clock(start=315532800))


class TestStatementStamps:
    def test_begin_statement_advances_and_claims(self):
        clock = Clock(start=100, tick=10)
        stamp = clock.begin_statement()
        assert stamp == 110
        assert clock.now() == 110
        clock.end_statement(stamp)

    def test_stable_equals_now_with_no_writers_in_flight(self):
        clock = Clock(start=100)
        assert clock.stable() == 100
        stamp = clock.begin_statement()
        clock.end_statement(stamp)
        assert clock.stable() == clock.now() == 101

    def test_stable_excludes_in_flight_stamps(self):
        clock = Clock(start=100, tick=1)
        first = clock.begin_statement()   # 101, in flight
        second = clock.begin_statement()  # 102, in flight
        assert clock.stable() == first - 1 == 100
        # Out-of-order completion: the oldest in-flight stamp governs.
        clock.end_statement(second)
        assert clock.stable() == first - 1 == 100
        clock.end_statement(first)
        assert clock.stable() == 102

    def test_concurrent_allocations_are_distinct(self):
        import threading

        clock = Clock(start=0, tick=1)
        stamps = []
        guard = threading.Lock()

        def worker():
            for _ in range(200):
                stamp = clock.begin_statement()
                with guard:
                    stamps.append(stamp)
                clock.end_statement(stamp)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(stamps) == 8 * 200
        assert len(set(stamps)) == len(stamps), "duplicate statement stamps"
        assert clock.now() == 8 * 200
