"""Unit tests for expression compilation (closures over rows/bindings)."""

import pytest

from repro.errors import ExecutionError
from repro.temporal.chronon import Clock, FOREVER
from repro.temporal.interval import Period
from repro.tquel import ast
from repro.tquel.compile import (
    VarLayout,
    compile_scalar,
    compile_temporal,
    compile_when,
    conjunction,
    make_asof_filter,
)


class _FakeClock:
    """Duck-typed 'clock' with the .parse() the compiler expects."""

    def __init__(self, now=1000):
        self._clock = Clock(start=now)

    def parse(self, text):
        from repro.temporal.parse import parse_temporal

        return parse_temporal(text, clock=self._clock)


LAYOUT = VarLayout(
    positions={"id": 0, "valid_from": 1, "valid_to": 2},
    valid=(1, 2),
)


class TestScalar:
    def test_attr_of_loop_var_reads_row(self):
        fn = compile_scalar(ast.Attr("h", "id"), "h", {"h": LAYOUT}, {})
        assert fn((7, 0, 1)) == 7

    def test_attr_of_bound_var_reads_bindings(self):
        bindings = {}
        fn = compile_scalar(ast.Attr("h", "id"), None, {"h": LAYOUT}, bindings)
        bindings["h"] = (9, 0, 1)
        assert fn(None) == 9

    def test_bindings_read_live(self):
        bindings = {}
        fn = compile_scalar(ast.Attr("h", "id"), None, {"h": LAYOUT}, bindings)
        bindings["h"] = (1, 0, 1)
        first = fn(None)
        bindings["h"] = (2, 0, 1)
        assert (first, fn(None)) == (1, 2)

    def test_unqualified_attr_uses_loop_var(self):
        fn = compile_scalar(ast.Attr(None, "id"), "h", {"h": LAYOUT}, {})
        assert fn((5, 0, 1)) == 5

    def test_arith_tree(self):
        expr = ast.BinOp(
            "+", ast.Attr("h", "id"), ast.BinOp("*", ast.Const(2), ast.Const(3))
        )
        fn = compile_scalar(expr, "h", {"h": LAYOUT}, {})
        assert fn((10, 0, 1)) == 16

    def test_truncating_division_like_c(self):
        fn = compile_scalar(
            ast.BinOp("/", ast.Const(-7), ast.Const(2)), None, {}, {}
        )
        assert fn(None) == -3  # trunc toward zero, not floor

    def test_division_by_zero(self):
        fn = compile_scalar(
            ast.BinOp("/", ast.Const(1), ast.Const(0)), None, {}, {}
        )
        with pytest.raises(ExecutionError):
            fn(None)

    def test_boolean_ops(self):
        expr = ast.BoolOp(
            "and",
            (
                ast.Compare(">", ast.Attr("h", "id"), ast.Const(5)),
                ast.NotOp(ast.Compare("=", ast.Attr("h", "id"), ast.Const(9))),
            ),
        )
        fn = compile_scalar(expr, "h", {"h": LAYOUT}, {})
        assert fn((7, 0, 1)) is True
        assert fn((9, 0, 1)) is False
        assert fn((3, 0, 1)) is False


class TestTemporal:
    def test_const_resolves_once(self):
        fn = compile_temporal(ast.TempConst("now"), None, {}, {}, _FakeClock(500))
        assert fn(None) == Period.event(500)

    def test_var_period_from_row(self):
        fn = compile_temporal(
            ast.TempVar("h"), "h", {"h": LAYOUT}, {}, _FakeClock()
        )
        assert fn((1, 100, 200)) == Period(100, 200)

    def test_overlap_is_intersection_as_operand(self):
        expr = ast.TempBin("overlap", ast.TempVar("h"), ast.TempConst("forever"))
        fn = compile_temporal(expr, "h", {"h": LAYOUT}, {}, _FakeClock())
        result = fn((1, 100, FOREVER))
        assert result is not None and result.start == FOREVER - 1

    def test_empty_intersection_is_none_and_propagates(self):
        inner = ast.TempBin(
            "overlap", ast.TempVar("h"), ast.TempConst("beginning")
        )
        outer = ast.TempEdge("start", inner)
        fn = compile_temporal(outer, "h", {"h": LAYOUT}, {}, _FakeClock())
        assert fn((1, 100, 200)) is None

    def test_extend_ignores_empty_side(self):
        empty = ast.TempBin(
            "overlap", ast.TempVar("h"), ast.TempConst("beginning")
        )
        expr = ast.TempBin("extend", ast.TempVar("h"), empty)
        fn = compile_temporal(expr, "h", {"h": LAYOUT}, {}, _FakeClock())
        assert fn((1, 100, 200)) == Period(100, 200)

    def test_when_predicates(self):
        overlap = ast.TempBin("overlap", ast.TempVar("h"), ast.TempConst("now"))
        fn = compile_when(overlap, "h", {"h": LAYOUT}, {}, _FakeClock(150))
        assert fn((1, 100, 200)) is True
        assert fn((1, 300, 400)) is False

    def test_when_precede(self):
        precede = ast.TempBin(
            "precede", ast.TempVar("h"), ast.TempConst("now")
        )
        fn = compile_when(precede, "h", {"h": LAYOUT}, {}, _FakeClock(500))
        assert fn((1, 100, 200)) is True
        assert fn((1, 100, 900)) is False


class TestLayouts:
    def test_for_fields_detects_time_attributes(self):
        from repro.storage.record import FieldSpec

        fields = [
            FieldSpec.parse("id", "i4"),
            FieldSpec.parse("valid_from", "time"),
            FieldSpec.parse("valid_to", "time"),
        ]
        layout = VarLayout.for_fields(fields)
        assert layout.valid == (1, 2)
        assert layout.tx is None

    def test_degenerate_period_becomes_event(self):
        assert LAYOUT.valid_period((1, 100, 100)).is_event

    def test_tx_period_missing_raises(self):
        with pytest.raises(ExecutionError):
            LAYOUT.tx_period((1, 100, 200))


class TestFilters:
    def test_asof_filter_visibility(self):
        layout = VarLayout(
            positions={"transaction_start": 0, "transaction_stop": 1},
            tx=(0, 1),
        )
        visible = make_asof_filter(layout, Period.event(150))
        assert visible((100, 200))
        assert visible((150, FOREVER))
        assert not visible((200, 300))
        assert not visible((100, 150))  # stamped out exactly at 150

    def test_asof_filter_degenerate_version(self):
        layout = VarLayout(
            positions={"transaction_start": 0, "transaction_stop": 1},
            tx=(0, 1),
        )
        visible = make_asof_filter(layout, Period.event(100))
        assert visible((100, 100))  # created and stamped at the same chronon

    def test_conjunction_empty_accepts(self):
        assert conjunction([])(None) is True

    def test_conjunction_combines(self):
        fn = conjunction([lambda r: r > 0, lambda r: r < 10])
        assert fn(5) and not fn(-1) and not fn(11)
