"""Unit tests for the exception hierarchy and the TQuel unparser."""

import pytest

from repro import errors
from repro.tquel.parser import parse_statement
from repro.tquel.unparse import unparse


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError)

    def test_storage_family(self):
        for cls in (
            errors.PageOverflowError,
            errors.RecordCodecError,
            errors.AccessMethodError,
        ):
            assert issubclass(cls, errors.StorageError)

    def test_language_family(self):
        assert issubclass(errors.TQuelSyntaxError, errors.TQuelError)
        assert issubclass(errors.TQuelSemanticError, errors.TQuelError)

    def test_syntax_error_carries_position(self):
        error = errors.TQuelSyntaxError("oops", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_catalog_family(self):
        assert issubclass(errors.DuplicateRelationError, errors.CatalogError)
        assert issubclass(errors.UnknownRelationError, errors.CatalogError)

    def test_temporal_family(self):
        for cls in (
            errors.ChrononRangeError,
            errors.DateParseError,
            errors.IntervalError,
        ):
            assert issubclass(cls, errors.TemporalError)


class TestUnparse:
    def roundtrip(self, text):
        stmt = parse_statement(text)
        again = parse_statement(unparse(stmt))
        assert stmt == again
        return unparse(stmt)

    def test_range(self):
        assert self.roundtrip("range of h is temporal_h") == (
            "range of h is temporal_h"
        )

    def test_retrieve_with_all_clauses(self):
        text = self.roundtrip(
            "retrieve (h.id, h.seq) valid from start of h to end of h "
            'where h.id = 500 when h overlap "now" as of "1981"'
        )
        assert text.startswith("retrieve (h.id, h.seq) valid from")

    def test_q12_roundtrips(self):
        self.roundtrip(
            "retrieve (h.id, h.seq, i.id, i.seq, i.amount) "
            "valid from start of (h overlap i) to end of (h extend i) "
            "where h.id = 500 and i.amount = 73700 "
            'when h overlap i as of "now"'
        )

    def test_modify_with_options(self):
        text = self.roundtrip(
            'modify t to twolevel on id where history = "clustered", '
            "fillfactor = 50"
        )
        assert 'history = "clustered"' in text

    def test_index_statement(self):
        self.roundtrip(
            "index on t is t_idx (amount) where structure = hash, levels = 2"
        )

    def test_create_event(self):
        assert self.roundtrip("create persistent event e (id = i4)") == (
            "create persistent event e (id = i4)"
        )

    def test_copy(self):
        self.roundtrip('copy t from "/tmp/x.dat"')

    def test_destroy(self):
        assert self.roundtrip("destroy a, b") == "destroy a, b"

    def test_aggregate_target(self):
        self.roundtrip("retrieve (n = count(e.id), s = sum(e.sal))")

    def test_boolean_nesting_preserved(self):
        stmt = parse_statement(
            "retrieve (e.a) where e.a = 1 and (e.b = 2 or e.c = 3)"
        )
        assert parse_statement(unparse(stmt)) == stmt

    def test_when_nesting_preserved(self):
        stmt = parse_statement(
            "retrieve (e.a) when (a overlap b or c overlap d) "
            "and not e precede f"
        )
        assert parse_statement(unparse(stmt)) == stmt

    def test_unparse_unknown_node_raises(self):
        from repro.errors import TQuelError

        with pytest.raises(TQuelError):
            unparse(object())
