"""The executor service: ordered gather, error capture, retry hook."""

from __future__ import annotations

import os
import threading

import pytest

from repro.exec import ExecutorService, TaskError, call_guarded
from repro.exec.service import _process_entry


def _square(n):
    return n * n


def _crash_on_three(n):
    if n == 3:
        raise ValueError("three is right out")
    return n


def test_call_guarded_ok_and_error():
    assert call_guarded(_square, 4) == ("ok", 16)
    status, detail = call_guarded(_crash_on_three, 3)
    assert status == "error"
    assert "three is right out" in detail


def test_process_entry_is_picklable():
    import pickle

    payload = pickle.loads(pickle.dumps((_square, 5)))
    assert _process_entry(payload) == ("ok", 25)


@pytest.mark.parametrize("mode", ["serial", "thread", "process"])
def test_modes_agree_and_preserve_order(mode):
    with ExecutorService(jobs=4, mode=mode) as service:
        assert service.map(_square, range(10)) == [
            n * n for n in range(10)
        ]


def test_jobs_one_collapses_to_serial():
    service = ExecutorService(jobs=1, mode="process")
    assert service.mode == "serial"
    assert service._pool is None
    assert service.map(_square, [3]) == [9]


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown executor mode"):
        ExecutorService(jobs=2, mode="fibers")


def test_error_without_hook_raises_task_error():
    with ExecutorService(jobs=2, mode="thread") as service:
        with pytest.raises(TaskError) as excinfo:
            service.map(_crash_on_three, [1, 2, 3], labels=["a", "b", "c"])
    assert excinfo.value.label == "c"
    assert "three is right out" in excinfo.value.detail


def test_on_error_hook_recovers_inline():
    recovered = []

    def on_error(item, label, detail):
        recovered.append((item, label))
        return -item

    with ExecutorService(jobs=2, mode="thread") as service:
        results = service.map(
            _crash_on_three, [1, 3, 5], labels=["a", "b", "c"],
            on_error=on_error,
        )
    assert results == [1, -3, 5]
    assert recovered == [(3, "b")]


def test_thread_mode_runs_tasks_on_worker_threads():
    seen = set()

    def record(_):
        seen.add(threading.current_thread().name)
        return True

    with ExecutorService(jobs=4, mode="thread") as service:
        service.map(record, range(8))
    assert threading.current_thread().name not in seen


def test_process_mode_crosses_process_boundary():
    with ExecutorService(jobs=2, mode="process") as service:
        pids = service.map(_pid, range(4))
    assert os.getpid() not in pids


def _pid(_):
    return os.getpid()


def test_process_pool_persists_across_maps():
    with ExecutorService(jobs=2, mode="process") as service:
        first = set(service.map(_pid, range(4)))
        second = set(service.map(_pid, range(4)))
        assert first & second  # same workers served both rounds
    assert service._pool is None  # close() reaped them
