"""The executor service: ordered gather, error capture, retry hook,
worker-death recovery and the degraded serial fallback."""

from __future__ import annotations

import os
import tempfile
import threading

import pytest

from repro import fault
from repro.exec import ExecutorService, TaskError, call_guarded
from repro.exec.service import _process_entry
from repro.observe.metrics import MetricsRegistry


def _square(n):
    return n * n


def _crash_on_three(n):
    if n == 3:
        raise ValueError("three is right out")
    return n


def test_call_guarded_ok_and_error():
    assert call_guarded(_square, 4) == ("ok", 16)
    status, detail = call_guarded(_crash_on_three, 3)
    assert status == "error"
    assert "three is right out" in detail


def test_process_entry_is_picklable():
    import pickle

    payload = pickle.loads(pickle.dumps((_square, 5)))
    assert _process_entry(payload) == ("ok", 25)


@pytest.mark.parametrize("mode", ["serial", "thread", "process"])
def test_modes_agree_and_preserve_order(mode):
    with ExecutorService(jobs=4, mode=mode) as service:
        assert service.map(_square, range(10)) == [
            n * n for n in range(10)
        ]


def test_jobs_one_collapses_to_serial():
    service = ExecutorService(jobs=1, mode="process")
    assert service.mode == "serial"
    assert service._pool is None
    assert service.map(_square, [3]) == [9]


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown executor mode"):
        ExecutorService(jobs=2, mode="fibers")


def test_error_without_hook_raises_task_error():
    with ExecutorService(jobs=2, mode="thread") as service:
        with pytest.raises(TaskError) as excinfo:
            service.map(_crash_on_three, [1, 2, 3], labels=["a", "b", "c"])
    assert excinfo.value.label == "c"
    assert "three is right out" in excinfo.value.detail
    # The error names where and how the task ran, not just that it died.
    assert excinfo.value.mode == "thread"
    assert excinfo.value.attempts == 1
    assert "mode thread" in str(excinfo.value)


def test_on_error_hook_recovers_inline():
    recovered = []

    def on_error(item, label, detail):
        recovered.append((item, label))
        return -item

    with ExecutorService(jobs=2, mode="thread") as service:
        results = service.map(
            _crash_on_three, [1, 3, 5], labels=["a", "b", "c"],
            on_error=on_error,
        )
    assert results == [1, -3, 5]
    assert recovered == [(3, "b")]


def test_thread_mode_runs_tasks_on_worker_threads():
    seen = set()

    def record(_):
        seen.add(threading.current_thread().name)
        return True

    with ExecutorService(jobs=4, mode="thread") as service:
        service.map(record, range(8))
    assert threading.current_thread().name not in seen


def test_process_mode_crosses_process_boundary():
    with ExecutorService(jobs=2, mode="process") as service:
        pids = service.map(_pid, range(4))
    assert os.getpid() not in pids


def _pid(_):
    return os.getpid()


# -- worker death, stalls, and the degraded fallback -------------------------


def _die_once_then_succeed(marker):
    """Kill the worker on first sight of *marker*; succeed afterwards.

    The marker file records that the first attempt happened, so the
    retried slice -- on a fresh worker -- completes.  os._exit mimics an
    abrupt worker death (no exception, no result).
    """
    if not os.path.exists(marker):
        with open(marker, "w", encoding="ascii") as handle:
            handle.write("died here\n")
        os._exit(86)
    return "recovered"


def test_worker_death_retries_slice_on_fresh_worker():
    registry = MetricsRegistry()
    marker = os.path.join(tempfile.mkdtemp(), "died")
    with ExecutorService(jobs=2, mode="process", metrics=registry) as service:
        results = service.map(
            _die_once_then_succeed, [marker, marker], labels=["p0", "p1"]
        )
    assert results == ["recovered", "recovered"]
    assert not service.last_map_degraded  # the retry succeeded, no fallback
    assert service.last_attempts == 2
    assert "worker died" in service.last_failure or "deadline" in (
        service.last_failure or ""
    )
    assert registry.counter_value("exec.worker_failures") >= 1
    assert registry.counter_value("exec.retries") >= 1


def _always_die(_):
    os._exit(86)


def test_repeated_worker_death_degrades_to_serial():
    # The task kills every pool worker on every attempt; the map must
    # still complete -- via the coordinator's serial fallback -- and
    # flag the degradation.  Serially, _always_die would kill the test
    # process itself, so degrade with a task that only dies in workers.
    registry = MetricsRegistry()
    with ExecutorService(jobs=2, mode="process", metrics=registry) as service:
        fault.arm("exec.worker_kill", times=8)
        try:
            results = service.map(_square, [2, 3], labels=["p0", "p1"])
        finally:
            fault.reset()
    assert results == [4, 9]
    assert service.last_map_degraded and service.degraded
    assert service.last_attempts == service.max_attempts + 1
    assert registry.counter_value("exec.degraded") == 1


def _stall_forever(n):
    import time

    time.sleep(3600)
    return n


def test_stalled_worker_hits_the_deadline_and_degrades():
    with ExecutorService(
        jobs=2, mode="process", task_timeout=0.5, max_attempts=1
    ) as service:
        # Tasks stall only in pool workers (guarded by pid), so the
        # serial fallback completes.
        marker = os.getpid()
        results = service.map(_stall_unless_pid, [marker, marker])
    assert results == ["ran", "ran"]
    assert service.last_map_degraded
    assert "deadline" in service.last_failure


def _stall_unless_pid(coordinator_pid):
    if os.getpid() != coordinator_pid:
        import time

        time.sleep(3600)
    return "ran"


def test_close_is_idempotent_after_pool_breakage():
    service = ExecutorService(jobs=2, mode="process")
    fault.arm("exec.worker_kill", times=8)
    try:
        service.map(_square, [1, 2])
    finally:
        fault.reset()
    service.close()
    service.close()  # idempotent, including after breakage
    assert service._pool is None


def test_worker_kill_failpoint_never_fires_serially():
    # The failpoint site lives in the pool entry, not call_guarded: a
    # serial service with the point armed must complete untouched.
    fault.arm("exec.worker_kill", times=8)
    try:
        service = ExecutorService(jobs=1)
        assert service.map(_square, [4]) == [16]
    finally:
        fault.reset()


def test_process_pool_persists_across_maps():
    with ExecutorService(jobs=2, mode="process") as service:
        first = set(service.map(_pid, range(4)))
        pool = service._pool
        second = set(service.map(_pid, range(4)))
        # Same executor both rounds (workers kept, not respawned per map),
        # and work really left the coordinator.
        assert service._pool is pool and pool is not None
        assert os.getpid() not in first | second
    assert service._pool is None  # close() reaped them
