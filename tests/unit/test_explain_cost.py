"""EXPLAIN's ``cost:`` section: golden snapshots of the optimizer's
priced decisions -- chosen path, rejected alternatives with their
Fig. 9 predicted page reads, the partitioned-scan annotation, and the
ANALYZE predicted-vs-actual line.  Every snapshot must be stable across
repeated calls: planning is a pure function of the catalog statistics.
"""

from __future__ import annotations

import pytest

from repro import FOREVER, Clock, TemporalDatabase, parse_temporal
from repro.tquel.explain import explain

MAR1_1980 = parse_temporal("3/1/80")
JAN15_1980 = parse_temporal("1/15/80")


@pytest.fixture
def db():
    db = TemporalDatabase(
        "explaincost", clock=Clock(start=MAR1_1980, tick=60), optimizer=True
    )
    db.execute(
        "create persistent interval emp (id = i4, dept = i4, pad = c40)"
    )
    db.execute("modify emp to hash on id")
    db.execute("index on emp is dix (dept)")
    rows = [
        (i, i % 8, "x", JAN15_1980 + 3600 * i, FOREVER,
         JAN15_1980 + 3600 * i, FOREVER)
        for i in range(1, 65)
    ]
    db.copy_in("emp", rows)
    db.execute("range of e is emp")
    return db


def test_cost_section_prices_chosen_and_rejected(db):
    plan = explain(db, "retrieve (e.pad) where e.id = 7")
    assert "via keyed hash access on id" in plan
    assert "cost:" in plan
    assert "e: chosen keyed hash access on id, predicted" in plan
    assert "e: rejected sequential scan, predicted" in plan
    # The probe is priced below the scan (that is why it won).
    chosen = next(
        line for line in plan.split("\n") if "chosen keyed" in line
    )
    rejected = next(
        line for line in plan.split("\n") if "rejected sequential" in line
    )

    def predicted(line):
        return float(line.rsplit("predicted ", 1)[1].split(" ")[0])

    assert predicted(chosen) < predicted(rejected)


def test_cost_section_prices_secondary_index(db):
    plan = explain(db, "retrieve (e.pad) where e.dept = 3")
    assert "e: chosen secondary index dix (hash, 1-level)" in plan
    assert "e: rejected sequential scan, predicted" in plan


def test_snapshot_is_stable_across_runs(db):
    text = "retrieve (e.pad) where e.id = 7"
    assert explain(db, text) == explain(db, text)
    probe = "retrieve (e.pad) where e.dept = 3"
    assert explain(db, probe) == explain(db, probe)


def test_optimizer_off_prints_fixed_strategy_note(db):
    db.optimizer_enabled = False
    try:
        plan = explain(db, "retrieve (e.pad) where e.id = 7")
    finally:
        db.optimizer_enabled = True
    assert "cost: optimizer off (fixed access-path strategy)" in plan
    assert "chosen" not in plan
    # The fixed strategy still probes; only the pricing is gone.
    assert "via keyed hash access on id" in plan


def test_partitioned_scan_line_shows_mode_and_pruning(db):
    db.execute("create persistent interval evt (id = i4, v = i4)")
    db.execute("range of ev is evt")
    rows = [
        (i, i * 10, JAN15_1980 + 86400 * i, FOREVER,
         JAN15_1980 + 86400 * i, FOREVER)
        for i in range(1, 33)
    ]
    db.copy_in("evt", rows)
    db.partition_relation("evt", "range", "id", 4, bounds=[9, 17, 25])
    plan = explain(db, "retrieve (ev.v) where ev.v >= 0")
    assert "[4 range partitions, serial gather]" in plan

    pruned = explain(db, 'retrieve (ev.v) as of "1/20/80"')
    assert "pruned by as-of bounds" in pruned
    assert pruned == explain(db, 'retrieve (ev.v) as of "1/20/80"')


def test_analyze_reports_predicted_versus_actual(db):
    db.pool.flush_all()
    plan = explain(db, "retrieve (e.pad) where e.dept < 0", analyze=True)
    assert "measured:" in plan
    line = next(
        (ln for ln in plan.split("\n") if "cost model:" in ln), None
    )
    assert line is not None, plan
    # A sequential scan's prediction is exact: ratio 1.00.
    assert "(ratio 1.00)" in line
