"""Unit tests for telemetry exports (repro.observe.export)."""

from __future__ import annotations

import json

from repro.observe import (
    FlightRecorder,
    MetricsRegistry,
    Span,
    chrome_trace,
    events_jsonl,
    export_telemetry,
    prometheus_text,
)
from repro.storage.iostats import IOStats


def finished_span(text="retrieve (e.name)"):
    stats = IOStats()
    stats.register("emp")
    span = Span("statement", stats, {"text": text})
    span.start()
    with span.stage("lex"):
        pass
    with span.stage("execute"):
        stats.record_read("emp")
    span.finish()
    return span


class TestChromeTrace:
    def test_complete_events_with_nesting(self):
        trace = chrome_trace([finished_span()])
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert [m["args"]["name"] for m in metadata] == ["repro:engine"]
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [event["name"] for event in events] == [
            "statement",
            "lex",
            "execute",
        ]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["pid"] == 1 and event["tid"] == 1
        root = events[0]
        # the statement span contains its stages
        for child in events[1:]:
            assert child["ts"] >= root["ts"]
            assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1
        assert root["args"]["text"] == "retrieve (e.name)"
        assert root["args"]["io"]["user"]["reads"] == 1

    def test_roots_get_their_own_thread_rows(self):
        trace = chrome_trace([finished_span("a"), finished_span("b")])
        tids = {
            event["args"].get("text"): event["tid"]
            for event in trace["traceEvents"]
            if event["name"] == "statement"
        }
        assert tids == {"a": 1, "b": 2}

    def test_timestamps_relative_to_earliest_root(self):
        spans = [finished_span("a"), finished_span("b")]
        trace = chrome_trace(spans)
        first = min(
            event["ts"]
            for event in trace["traceEvents"]
            if event["ph"] == "X"
        )
        assert first == 0.0

    def test_unstarted_and_empty_spans_are_skipped(self):
        stats = IOStats()
        unstarted = Span("statement", stats, {})
        trace = chrome_trace([unstarted])
        assert trace["traceEvents"] == []
        assert json.dumps(trace)  # always JSON-serializable


class TestPrometheusText:
    def test_counters_histograms_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("statements.retrieve", 3)
        registry.observe("statement.input_pages", 1)
        registry.observe("statement.input_pages", 5)
        registry.gauge("storage.h.pages", 12)
        registry.gauge("storage.h.structure", "hash")  # non-numeric: skipped
        text = prometheus_text(registry)
        assert "# TYPE repro_statements_retrieve_total counter" in text
        assert "repro_statements_retrieve_total 3" in text
        assert "# TYPE repro_statement_input_pages histogram" in text
        assert 'repro_statement_input_pages_bucket{le="+Inf"} 2' in text
        assert "repro_statement_input_pages_sum 6" in text
        assert "repro_statement_input_pages_count 2" in text
        assert "repro_storage_h_pages 12" in text
        assert "structure" not in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        for value in (1, 1, 8):
            registry.observe("pages", value)
        lines = prometheus_text(registry).splitlines()
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("repro_pages_bucket")
        ]
        assert buckets == sorted(buckets)
        assert buckets[-1] == 3

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestEventsJsonl:
    def test_one_json_object_per_event(self):
        recorder = FlightRecorder()
        recorder.record("statement.end", statement="retrieve", input_pages=2)
        recorder.record("checkpoint.save", path="/tmp/x", files=3)
        lines = events_jsonl(recorder).splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "statement.end"
        assert first["level"] == "info"
        assert first["data"]["input_pages"] == 2
        assert json.loads(lines[1])["data"]["files"] == 3

    def test_empty_recorder_yields_empty_string(self):
        assert events_jsonl(FlightRecorder()) == ""


class TestExportTelemetry:
    def test_writes_all_artifacts(self, db, tmp_path):
        db.tracer.enable()
        db.heatmap.enable()
        db.execute("create r (id = i4)")
        db.execute("append to r (id = 1)")
        db.execute("range of x is r")
        db.execute("retrieve (x.id)")
        written = export_telemetry(db, tmp_path / "telemetry")
        assert set(written) == {
            "trace",
            "metrics_prom",
            "metrics_json",
            "events",
            "heatmap",
            "stats",
            "stats_prom",
        }
        trace = json.loads((tmp_path / "telemetry" / "trace.json").read_text())
        statements = [
            event
            for event in trace["traceEvents"]
            if event["name"] == "statement"
        ]
        assert len(statements) == 4
        stages = {event["name"] for event in trace["traceEvents"]}
        assert {"lex", "parse", "semantics", "plan", "execute"} <= stages
        prom = (tmp_path / "telemetry" / "metrics.prom").read_text()
        assert "repro_statements_retrieve_total 1" in prom
        events = [
            json.loads(line)
            for line in (tmp_path / "telemetry" / "events.jsonl")
            .read_text()
            .splitlines()
        ]
        assert sum(e["kind"] == "statement.end" for e in events) == 4
        heatmap = json.loads(
            (tmp_path / "telemetry" / "heatmap.json").read_text()
        )
        assert "r" in heatmap

    def test_heatmap_artifact_only_when_populated(self, db, tmp_path):
        db.execute("create r (id = i4)")
        written = export_telemetry(db, tmp_path / "telemetry")
        assert "heatmap" not in written
        assert not (tmp_path / "telemetry" / "heatmap.json").exists()
