"""The failpoint framework itself: deterministic, catalogued, metered."""

from __future__ import annotations

import pytest

from repro import FaultInjected, fault
from repro.observe.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def clean():
    fault.reset()
    fault.detach_metrics()
    yield
    fault.reset()
    fault.detach_metrics()


class TestArming:
    def test_inactive_by_default(self):
        assert not fault.is_active()
        fault.point("pager.write")  # the disabled fast path is a no-op

    def test_unknown_point_refuses_to_arm(self):
        with pytest.raises(ValueError) as excinfo:
            fault.arm("pager.wrtie")
        assert "catalogue" in str(excinfo.value)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            fault.arm("pager.write", at_hit=0)
        with pytest.raises(ValueError):
            fault.arm("pager.write", times=0)

    def test_every_site_is_catalogued(self):
        import pathlib
        import re

        root = pathlib.Path(fault.__file__).resolve().parents[0]
        used = set()
        for path in root.rglob("*.py"):
            for name in re.findall(
                r"fault\.(?:point|should_fire)\(\"([a-z._]+)\"\)",
                path.read_text(),
            ):
                used.add(name)
        assert used == set(fault.POINTS)

    def test_should_fire_reports_instead_of_raising(self):
        fault.arm("net.frame_drop", at_hit=2)
        assert fault.should_fire("net.frame_drop") is False
        assert fault.should_fire("net.frame_drop") is True
        # One-shot arming: consumed after the fire (and with nothing
        # armed the disabled fast path stops counting hits, as at
        # fault.point sites).
        assert fault.should_fire("net.frame_drop") is False
        hits, fires = fault.counts()["net.frame_drop"]
        assert (hits, fires) == (2, 1)


class TestFiring:
    def test_fires_on_exact_hit(self):
        fault.arm("pager.write", at_hit=3)
        fault.point("pager.write")
        fault.point("pager.write")
        with pytest.raises(FaultInjected) as excinfo:
            fault.point("pager.write")
        assert excinfo.value.name == "pager.write"
        assert excinfo.value.hit == 3

    def test_one_shot_by_default(self):
        fault.arm("buffer.evict")
        with pytest.raises(FaultInjected):
            fault.point("buffer.evict")
        fault.point("buffer.evict")  # disarmed after firing

    def test_times_fires_consecutively(self):
        fault.arm("buffer.evict", times=2)
        with pytest.raises(FaultInjected):
            fault.point("buffer.evict")
        with pytest.raises(FaultInjected):
            fault.point("buffer.evict")
        fault.point("buffer.evict")

    def test_points_are_independent(self):
        fault.arm("pager.write")
        fault.point("buffer.evict")
        with pytest.raises(FaultInjected):
            fault.point("pager.write")

    def test_rearming_restarts_hit_count(self):
        fault.arm("pager.write", at_hit=2)
        fault.point("pager.write")
        fault.arm("pager.write", at_hit=2)
        fault.point("pager.write")  # hit 1 of the new arming
        with pytest.raises(FaultInjected):
            fault.point("pager.write")


class TestCountingAndMetrics:
    def test_counting_without_arming(self):
        fault.set_counting(True)
        fault.point("pager.write")
        fault.point("pager.write")
        hits, fires = fault.counts()["pager.write"]
        assert (hits, fires) == (2, 0)

    def test_metrics_mirror(self):
        registry = MetricsRegistry()
        fault.attach_metrics(registry)
        fault.arm("buffer.evict")
        with pytest.raises(FaultInjected):
            fault.point("buffer.evict")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["fault.hits.buffer.evict"] == 1
        assert snapshot["counters"]["fault.fires.buffer.evict"] == 1

    def test_render_shows_armed_state(self):
        fault.arm("checkpoint.swap", at_hit=4)
        text = fault.render()
        assert "checkpoint.swap" in text
        assert "ARMED at hit 4" in text

    def test_reset_clears_everything(self):
        fault.set_counting(True)
        fault.arm("pager.write", at_hit=99)
        fault.point("pager.write")
        fault.reset()
        assert not fault.is_active()
        assert fault.armed() == {}
        assert fault.counts()["pager.write"] == (0, 0)


class TestEnvironmentActivation:
    def test_env_spec_arms_points(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTPOINTS", "pager.write:3,checkpoint.rename"
        )
        fault._arm_from_env()
        assert fault.armed() == {
            "pager.write": (3, 1),
            "checkpoint.rename": (1, 1),
        }

    def test_malformed_env_spec_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTPOINTS", "no.such.point:1")
        with pytest.raises(ValueError):
            fault._arm_from_env()

    def test_empty_spec_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTPOINTS", "  ")
        fault._arm_from_env()
        assert fault.armed() == {}
