"""Unit tests for figure rendering and the `python -m repro.bench` CLI."""

import pytest

from repro.bench import figures
from repro.bench.enhancements import run_enhancements
from repro.bench.nonuniform import run_nonuniform
from repro.bench.runner import run_suite


@pytest.fixture(scope="module")
def tiny_suite():
    return run_suite(tuples=64, max_update_count=2, seed=11)


class TestFigureRenderers:
    def test_figure5_mentions_every_database(self, tiny_suite):
        text = figures.figure5(tiny_suite)
        for label in ("static/100%", "temporal/50%", "rollback/100%"):
            assert label in text

    def test_figure5_no_paper_values_off_scale(self, tiny_suite):
        # Reduced-scale tables must not show the 1024-tuple paper numbers.
        assert "(166)" not in figures.figure5(tiny_suite)

    def test_figure6_grid_shape(self, tiny_suite):
        text = figures.figure6(tiny_suite)
        assert "Q01" in text and "Q12" in text
        header = [l for l in text.splitlines() if l.startswith("query")][0]
        assert header.split()[-1] == "2"  # update counts 0..2

    def test_figure7_has_all_type_columns(self, tiny_suite):
        text = figures.figure7(tiny_suite)
        assert "historical/50% uc0" in text

    def test_figure8_contains_ascii_plot(self, tiny_suite):
        text = figures.figure8(tiny_suite)
        assert "update count" in text
        assert "o=Q01" in text

    def test_figure9_sections_per_database(self, tiny_suite):
        text = figures.figure9(tiny_suite)
        assert text.count("Figure 9 (") == 6

    def test_figure10_renders(self):
        enh = run_enhancements(tuples=64, update_count=2, seed=11)
        text = figures.figure10(enh)
        assert "2lvl clustered" in text
        assert "Index sizes" in text

    def test_nonuniform_table(self):
        result = run_nonuniform(
            tuples=64, max_average_update_count=1, seed=11
        )
        text = figures.nonuniform_table(result)
        assert "weighted avg cost" in text


class TestComparisonCells:
    def test_cmp_hides_matching_values(self):
        assert figures._cmp(129, 129) == "129"

    def test_cmp_shows_divergence(self):
        assert figures._cmp(115, 166) == "115 (166)"

    def test_cmp_handles_floats(self):
        assert figures._cmp(1.99, 1.99) == "1.99"
        assert figures._cmp(0.47, 0.5) == "0.47 (0.5)"

    def test_cmp_none_measured(self):
        assert figures._cmp(None, 5) == "-"

    def test_cmp_no_paper_value(self):
        assert figures._cmp(42, None) == "42"


class TestBenchCli:
    def test_single_figure(self, capsys):
        from repro.bench.__main__ import main

        # 'tiny' scale keeps this test fast; figure 5 needs the sweep.
        assert main(["--scale", "tiny", "--figure", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "Figure 6" not in out

    def test_nonuniform_only(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--scale", "tiny", "--figure", "nonuniform"]) == 0
        assert "Section 5.4" in capsys.readouterr().out

    def test_bad_scale_rejected(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["--scale", "galactic"])

    def test_json_dump(self, capsys, tmp_path):
        import json

        from repro.bench.__main__ import main

        target = tmp_path / "sweep.json"
        assert main(
            ["--scale", "tiny", "--figure", "5", "--json", str(target)]
        ) == 0
        data = json.loads(target.read_text())
        assert "temporal/100%" in data
        assert data["temporal/100%"]["costs"]["Q01"]["0"][0] == 1

    def test_validate_skipped_gracefully_off_scale(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--scale", "tiny", "--figure", "5", "--validate"]) == 0
        captured = capsys.readouterr()
        assert "validation skipped" in captured.err
