"""Unit tests for chronon output formatting (resolutions second..year)."""

import pytest

from repro.errors import ChrononRangeError
from repro.temporal.chronon import BEGINNING, FOREVER
from repro.temporal.format import Resolution, format_chronon
from repro.temporal.parse import parse_temporal

STAMP = parse_temporal("08:30:45 2/15/80")


class TestResolutions:
    def test_second(self):
        assert format_chronon(STAMP) == "1980-02-15 08:30:45"

    def test_minute(self):
        assert format_chronon(STAMP, Resolution.MINUTE) == "1980-02-15 08:30"

    def test_hour(self):
        assert format_chronon(STAMP, Resolution.HOUR) == "1980-02-15 08:00"

    def test_day(self):
        assert format_chronon(STAMP, Resolution.DAY) == "1980-02-15"

    def test_month(self):
        assert format_chronon(STAMP, Resolution.MONTH) == "1980-02"

    def test_year(self):
        assert format_chronon(STAMP, Resolution.YEAR) == "1980"


class TestSymbolic:
    def test_forever(self):
        assert format_chronon(FOREVER) == "forever"

    def test_beginning(self):
        assert format_chronon(BEGINNING) == "beginning"

    def test_forever_at_every_resolution(self):
        for resolution in Resolution:
            assert format_chronon(FOREVER, resolution) == "forever"


class TestRoundTrip:
    def test_second_resolution_roundtrips(self):
        assert parse_temporal(format_chronon(STAMP)) == STAMP

    def test_rejects_out_of_range(self):
        with pytest.raises(ChrononRangeError):
            format_chronon(-5)
