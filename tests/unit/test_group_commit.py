"""GroupCommitter: leadership, coalescing, per-group outcomes.

A commit() caller's fate is decided by the save that *covers* its
request, not by whichever save finished most recently: every member of
a failed group sees that group's error, and a later group's success or
failure never leaks across group boundaries.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.concurrency import GroupCommitter


def test_serial_commits_increment_the_generation():
    calls = []
    committer = GroupCommitter()
    assert committer.commit(lambda: calls.append(1)) == 1
    assert committer.commit(lambda: calls.append(2)) == 2
    assert calls == [1, 2]


def test_leader_save_error_propagates_to_the_leader():
    committer = GroupCommitter()

    def fail():
        raise RuntimeError("disk full")

    with pytest.raises(RuntimeError, match="disk full"):
        committer.commit(fail)
    # The failed group still completed; the next one is independent.
    assert committer.commit(lambda: None) == 2


def test_every_member_of_a_failed_group_sees_its_error():
    committer = GroupCommitter()
    started = threading.Event()
    release = threading.Event()

    def slow_ok():
        started.set()
        release.wait(timeout=30)

    first_result = []
    leader = threading.Thread(
        target=lambda: first_result.append(committer.commit(slow_ok))
    )
    leader.start()
    assert started.wait(timeout=30)

    # Sessions asking while a save is in flight form the next group;
    # that group's save fails, and every one of them must see it --
    # even if further groups complete before they check.
    outcomes = []

    def fail():
        raise RuntimeError("disk full")

    def member():
        try:
            outcomes.append(("ok", committer.commit(fail)))
        except RuntimeError as exc:
            outcomes.append(("error", str(exc)))

    members = [threading.Thread(target=member) for _ in range(2)]
    for thread in members:
        thread.start()
    time.sleep(0.2)  # let the members reach their wait
    release.set()
    leader.join(timeout=30)
    for thread in members:
        thread.join(timeout=30)

    assert first_result == [1]
    assert [kind for kind, _ in outcomes] == ["error", "error"], outcomes
    assert all(message == "disk full" for _, message in outcomes)
    # A later group succeeds regardless of the failed one before it.
    assert committer.commit(lambda: None) > 2
