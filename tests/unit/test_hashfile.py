"""Unit and property tests for static hashing with overflow chains."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.access.hashfile import HashFile, hash_key
from repro.errors import AccessMethodError
from repro.storage.buffer import BufferPool
from repro.storage.record import FieldSpec, RecordCodec

FIELDS = [("id", "i4"), ("payload", "c112")]  # 116 bytes -> 8 per page


def make_hash(rows, fillfactor=100, fields=FIELDS):
    codec = RecordCodec([FieldSpec.parse(n, t) for n, t in fields])
    pool = BufferPool()
    hashed = HashFile(pool.create_file("h", codec.record_size), codec, 0)
    hashed.build(rows, fillfactor)
    pool.flush_all()
    pool.stats.reset()
    return hashed, pool


def rows(n):
    return [(i, "x") for i in range(1, n + 1)]


class TestHashKey:
    def test_int_is_mod(self):
        assert hash_key(500, 129) == 500 % 129

    def test_negative_int_in_range(self):
        assert 0 <= hash_key(-7, 13) < 13

    def test_string_deterministic(self):
        assert hash_key("ahn", 100) == hash_key("ahn", 100)

    def test_string_in_range(self):
        assert 0 <= hash_key("snodgrass", 7) < 7

    def test_float_rejected(self):
        with pytest.raises(AccessMethodError):
            hash_key(1.5, 10)

    def test_bool_rejected(self):
        with pytest.raises(AccessMethodError):
            hash_key(True, 10)


class TestBuild:
    def test_paper_bucket_count_100pct(self):
        # 1024 tuples at 8 per page -> 128 + 1 spare = 129 primary pages.
        hashed, _ = make_hash(rows(1024))
        assert hashed.buckets == 129
        assert hashed.page_count == 129

    def test_paper_bucket_count_50pct(self):
        hashed, _ = make_hash(rows(1024), fillfactor=50)
        assert hashed.buckets == 257
        assert hashed.page_count == 257

    def test_fillfactor_leaves_free_space(self):
        hashed, _ = make_hash(rows(64), fillfactor=50)
        # Quota 4 per primary page: inserts fill the gap before overflow.
        start_pages = hashed.page_count
        for i in range(1, 65):
            hashed.insert((i, "v2"))
        assert hashed.page_count == start_pages

    def test_build_requires_key(self):
        codec = RecordCodec([FieldSpec.parse("id", "i4")])
        pool = BufferPool()
        with pytest.raises(AccessMethodError):
            HashFile(pool.create_file("h", 4), codec, None)

    def test_insert_before_build_rejected(self):
        codec = RecordCodec([FieldSpec.parse("id", "i4")])
        pool = BufferPool()
        hashed = HashFile(pool.create_file("h", 4), codec, 0)
        with pytest.raises(AccessMethodError):
            hashed.insert((1,))


class TestLookup:
    def test_finds_single_record(self):
        hashed, _ = make_hash(rows(64))
        assert [row for _, row in hashed.lookup(10)] == [(10, "x")]

    def test_missing_key_is_empty(self):
        hashed, _ = make_hash(rows(64))
        assert list(hashed.lookup(9999)) == []

    def test_finds_all_versions(self):
        hashed, _ = make_hash(rows(64))
        for seq in range(3):
            hashed.insert((10, f"v{seq}"))
        assert len(list(hashed.lookup(10))) == 4

    def test_lookup_cost_is_chain_length(self):
        hashed, pool = make_hash(rows(64))
        # Fill key 10's bucket until it has exactly one overflow page.
        for _ in range(8):
            hashed.insert((10, "more"))
        pool.flush_all()
        pool.stats.reset()
        list(hashed.lookup(10))
        assert pool.stats.totals().user.reads == 2

    def test_lookup_base_cost_is_one_page(self):
        hashed, pool = make_hash(rows(64))
        list(hashed.lookup(10))
        assert pool.stats.totals().user.reads == 1


class TestGrowth:
    def test_overflow_chain_grows(self):
        hashed, _ = make_hash(rows(64))
        base = hashed.page_count
        for _ in range(16):
            hashed.insert((10, "v"))
        assert hashed.page_count == base + 2

    def test_insert_fills_chain_before_extending(self):
        hashed, _ = make_hash(rows(8, ))
        # Single bucket relation? rows(8) -> buckets = 2; use one key's bucket.
        base = hashed.page_count
        for _ in range(4):
            hashed.insert((2, "v"))
        grown_once = hashed.page_count
        assert grown_once <= base + 1

    def test_scan_sees_primary_and_overflow(self):
        hashed, _ = make_hash(rows(64))
        for _ in range(20):
            hashed.insert((10, "v"))
        assert len(list(hashed.scan())) == 84

    def test_scan_cost_is_total_pages(self):
        hashed, pool = make_hash(rows(64))
        for _ in range(20):
            hashed.insert((10, "v"))
        pool.flush_all()
        pool.stats.reset()
        list(hashed.scan())
        assert pool.stats.totals().user.reads == hashed.page_count


class TestProperties:
    @given(
        st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=1,
            max_size=60,
        ),
        st.sampled_from([100, 50, 25]),
    )
    @settings(max_examples=40, deadline=None)
    def test_lookup_equals_filtered_scan(self, keys, fillfactor):
        hashed, _ = make_hash(
            [(k, "p") for k in keys], fillfactor=fillfactor
        )
        probe = keys[0]
        via_lookup = sorted(row for _, row in hashed.lookup(probe))
        via_scan = sorted(
            row for _, row in hashed.scan() if row[0] == probe
        )
        assert via_lookup == via_scan

    @given(
        st.lists(
            st.integers(min_value=0, max_value=100), min_size=1, max_size=50
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_scan_preserves_multiset(self, keys):
        hashed, _ = make_hash([(k, "p") for k in keys])
        scanned = sorted(row[0] for _, row in hashed.scan())
        assert scanned == sorted(keys)

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_every_record_reachable_by_its_key(self, n):
        hashed, _ = make_hash(rows(n))
        for key in (1, n // 2 + 1, n):
            assert (key, "x") in [row for _, row in hashed.lookup(key)]
