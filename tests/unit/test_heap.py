"""Unit tests for heap files."""

import pytest

from repro.access.heap import HeapFile
from repro.errors import AccessMethodError
from repro.storage.buffer import BufferPool
from repro.storage.record import FieldSpec, RecordCodec


def make_heap(record_fields=(("id", "i4"), ("name", "c96"))):
    codec = RecordCodec([FieldSpec.parse(n, t) for n, t in record_fields])
    pool = BufferPool()
    heap = HeapFile(pool.create_file("h", codec.record_size), codec)
    return heap, pool


class TestBuild:
    def test_build_fills_pages_completely(self):
        heap, _ = make_heap()
        heap.build([(i, "x") for i in range(100)])
        # 100-byte records, 10 per page -> 10 pages.
        assert heap.page_count == 10
        assert heap.row_count == 100

    def test_build_respects_fillfactor(self):
        heap, _ = make_heap()
        heap.build([(i, "x") for i in range(100)], fillfactor=50)
        assert heap.page_count == 20

    def test_build_requires_empty(self):
        heap, _ = make_heap()
        heap.build([(1, "a")])
        with pytest.raises(AccessMethodError):
            heap.build([(2, "b")])

    def test_empty_build(self):
        heap, _ = make_heap()
        heap.build([])
        assert heap.page_count == 0
        assert list(heap.scan()) == []


class TestInsertScan:
    def test_insert_appends_to_tail(self):
        heap, _ = make_heap()
        heap.build([])
        rid1 = heap.insert((1, "a"))
        rid2 = heap.insert((2, "b"))
        assert rid1 == (0, 0)
        assert rid2 == (0, 1)

    def test_insert_allocates_new_page_when_full(self):
        heap, _ = make_heap()
        heap.build([(i, "x") for i in range(10)])  # exactly one page
        rid = heap.insert((10, "y"))
        assert rid[0] == 1

    def test_scan_returns_everything_in_order(self):
        heap, _ = make_heap()
        rows = [(i, f"r{i}") for i in range(25)]
        heap.build(rows)
        assert [row for _, row in heap.scan()] == rows

    def test_scan_cost_is_page_count(self):
        heap, pool = make_heap()
        heap.build([(i, "x") for i in range(25)])
        pool.flush_all()
        pool.stats.reset()
        list(heap.scan())
        assert pool.stats.totals().user.reads == heap.page_count

    def test_lookup_refused(self):
        heap, _ = make_heap()
        heap.build([])
        with pytest.raises(AccessMethodError):
            list(heap.lookup(1))

    def test_keyed_on_always_false(self):
        heap, _ = make_heap()
        assert not heap.keyed_on(0)


class TestUpdateDelete:
    def test_update_in_place(self):
        heap, _ = make_heap()
        heap.build([(1, "a"), (2, "b")])
        heap.update((0, 0), (1, "changed"))
        assert heap.read_rid((0, 0)) == (1, "changed")

    def test_delete_shrinks_row_count(self):
        heap, _ = make_heap()
        heap.build([(1, "a"), (2, "b"), (3, "c")])
        heap.delete((0, 1))
        assert heap.row_count == 2
        remaining = sorted(row for _, row in heap.scan())
        assert remaining == [(1, "a"), (3, "c")]
