"""Unit and property tests for the period algebra behind TQuel operators."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IntervalError
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import Period, extend, overlaps, precedes

chronons = st.integers(min_value=0, max_value=FOREVER - 1)


def periods():
    return st.builds(
        lambda a, b: Period(min(a, b), max(a, b) + 1), chronons, chronons
    )


class TestConstruction:
    def test_basic(self):
        period = Period(10, 20)
        assert period.start == 10
        assert period.stop == 20
        assert period.duration() == 10

    def test_rejects_empty(self):
        with pytest.raises(IntervalError):
            Period(10, 10)

    def test_rejects_inverted(self):
        with pytest.raises(IntervalError):
            Period(20, 10)

    def test_event_is_single_chronon(self):
        event = Period.event(5)
        assert event.is_event
        assert event.duration() == 1

    def test_event_of_period_is_identity(self):
        period = Period(1, 9)
        assert Period.event(period) is period

    def test_event_at_forever_pins_to_last_chronon(self):
        event = Period.event(FOREVER)
        assert event.stop == FOREVER
        assert event.is_event

    def test_current_flag(self):
        assert Period(0, FOREVER).is_current
        assert not Period(0, 10).is_current


class TestContainsAndOverlap:
    def test_contains_start(self):
        assert Period(10, 20).contains(10)

    def test_excludes_stop(self):
        assert not Period(10, 20).contains(20)

    def test_overlap_shared_chronon(self):
        assert Period(0, 10).overlaps(Period(9, 20))

    def test_no_overlap_when_adjacent(self):
        # Half-open: [0,10) and [10,20) share nothing.
        assert not Period(0, 10).overlaps(Period(10, 20))

    def test_overlap_with_bare_chronon(self):
        assert Period(0, 10).overlaps(5)
        assert not Period(0, 10).overlaps(10)

    def test_current_tuple_overlaps_now(self):
        # The Q05-Q10 idiom: stop == FOREVER means current.
        assert Period(100, FOREVER).overlaps(10**9)


class TestExtendIntersect:
    def test_extend_spans(self):
        assert Period(0, 5).extend(Period(10, 20)) == Period(0, 20)

    def test_extend_contained(self):
        assert Period(0, 20).extend(Period(5, 6)) == Period(0, 20)

    def test_intersect_overlapping(self):
        assert Period(0, 10).intersect(Period(5, 20)) == Period(5, 10)

    def test_intersect_disjoint_is_none(self):
        assert Period(0, 10).intersect(Period(10, 20)) is None


class TestPrecede:
    def test_strictly_before(self):
        assert Period(0, 5).precedes(Period(10, 20))

    def test_meets_at_endpoint(self):
        # TQuel: an interval precedes the event at its own last chronon.
        assert Period(0, 5).precedes(Period.event(4))

    def test_overlapping_does_not_precede(self):
        assert not Period(0, 10).precedes(Period(5, 20))

    def test_q11_semantics(self):
        # 'start of h precede i': h's first chronon is not after i starts.
        h = Period(100, 200)
        i = Period(150, 300)
        assert h.start_event().precedes(i)


class TestEdges:
    def test_start_event(self):
        assert Period(10, 20).start_event() == Period(10, 11)

    def test_end_event(self):
        assert Period(10, 20).end_event() == Period(19, 20)

    def test_end_of_current_is_forever(self):
        assert Period(10, FOREVER).end_event().stop == FOREVER


class TestFunctionForms:
    def test_overlaps_function(self):
        assert overlaps(5, Period(0, 10))

    def test_extend_function(self):
        assert extend(5, 10) == Period(5, 11)

    def test_precedes_function(self):
        assert precedes(5, 10)
        assert not precedes(10, 5)


class TestProperties:
    @given(periods(), periods())
    def test_overlap_is_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(periods(), periods())
    def test_extend_is_commutative(self, a, b):
        assert a.extend(b) == b.extend(a)

    @given(periods(), periods())
    def test_extend_covers_both(self, a, b):
        span = a.extend(b)
        assert span.start <= a.start and span.stop >= a.stop
        assert span.start <= b.start and span.stop >= b.stop

    @given(periods(), periods())
    def test_intersect_symmetric(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(periods(), periods())
    def test_overlap_iff_intersection(self, a, b):
        assert a.overlaps(b) == (a.intersect(b) is not None)

    @given(periods(), periods())
    def test_intersection_within_extend(self, a, b):
        shared = a.intersect(b)
        if shared is not None:
            span = a.extend(b)
            assert span.start <= shared.start <= shared.stop <= span.stop

    @given(periods(), periods())
    def test_disjoint_periods_ordered_by_precede(self, a, b):
        if not a.overlaps(b) and a.stop <= b.start:
            assert a.precedes(b)

    @given(periods())
    def test_period_overlaps_itself(self, a):
        assert a.overlaps(a)

    @given(periods())
    def test_edges_inside_period(self, a):
        assert a.overlaps(a.start_event())
        if not a.is_current:
            assert a.overlaps(a.end_event())

    @given(chronons, chronons)
    def test_event_overlap_is_equality(self, t1, t2):
        assert overlaps(t1, t2) == (t1 == t2)
