"""Per-scope I/O attribution in the shared meter.

Two concurrent sessions share one IOStats, but each must see exactly its
own page reads and writes (the paper's metric is per-statement, and a
session's statement must not absorb a neighbour's I/O).
"""

from __future__ import annotations

import threading

from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOCounters, IODelta, IOStats


def test_scoped_counters_are_disjoint():
    stats = IOStats()
    stats.register("a")
    stats.register("b")
    with stats.scoped("s1"):
        stats.record_read("a")
        stats.record_read("a")
        stats.record_write("a")
    with stats.scoped("s2"):
        stats.record_read("b")
    assert stats.totals("s1").by_relation == {"a": IOCounters(2, 1)}
    assert stats.totals("s2").by_relation == {"b": IOCounters(1, 0)}
    # The global (scope-less) view still aggregates everything.
    assert stats.totals().by_relation == {
        "a": IOCounters(2, 1),
        "b": IOCounters(1, 0),
    }


def test_checkpoint_delta_with_scope():
    stats = IOStats()
    stats.register("rel")
    with stats.scoped("s1"):
        stats.record_read("rel")
        before = stats.checkpoint("s1")
        stats.record_read("rel")
        stats.record_write("rel")
    delta = stats.delta(before, "s1")
    assert delta.user == IOCounters(1, 1)


def test_unscoped_recording_stays_global_only():
    stats = IOStats()
    stats.register("rel")
    stats.record_read("rel")
    assert stats.totals().user.reads == 1
    assert stats.totals("ghost").user.reads == 0


def test_scopes_nest_by_replacement():
    stats = IOStats()
    stats.register("rel")
    with stats.scoped("outer"):
        with stats.scoped("inner"):
            stats.record_read("rel")
        stats.record_write("rel")
    assert stats.totals("inner").user == IOCounters(1, 0)
    assert stats.totals("outer").user == IOCounters(0, 1)


def test_scoped_none_is_a_noop():
    stats = IOStats()
    stats.register("rel")
    with stats.scoped("s1"):
        with stats.scoped(None):
            stats.record_read("rel")
    assert stats.totals("s1").user.reads == 1


def test_scope_is_thread_local():
    stats = IOStats()
    stats.register("rel")
    seen = {}

    def worker(scope):
        with stats.scoped(scope):
            for _ in range(5):
                stats.record_read("rel")
            seen[scope] = stats.totals(scope).user.reads

    threads = [
        threading.Thread(target=worker, args=(f"s{n}",)) for n in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert seen == {f"s{n}": 5 for n in range(4)}
    assert stats.totals().user.reads == 20


def test_drop_scope_forgets_attribution():
    stats = IOStats()
    stats.register("rel")
    with stats.scoped("s1"):
        stats.record_read("rel")
    stats.drop_scope("s1")
    assert stats.totals("s1").user.reads == 0
    assert stats.totals().user.reads == 1


def test_export_scope_is_json_safe_and_drops_zero_counts():
    stats = IOStats()
    stats.register("emp")
    stats.register("relations", system=True)
    stats.register("untouched")
    with stats.scoped("w"):
        stats.record_read("emp")
        stats.record_read("emp")
        stats.record_write("emp")
        stats.record_read("relations")
    exported = stats.export_scope("w")
    assert exported == {
        "reads": {"emp": 2, "relations": 1},
        "writes": {"emp": 1},
        "system": ["relations"],
    }
    # Registered-but-untouched relations never appear in the export.
    assert "untouched" not in exported["reads"]


def test_export_scope_none_exports_process_wide_counters():
    stats = IOStats()
    stats.register("emp")
    stats.record_read("emp")
    assert stats.export_scope() == {
        "reads": {"emp": 1},
        "writes": {},
        "system": [],
    }


def test_merge_scope_adds_into_global_and_scoped_totals():
    worker = IOStats()
    worker.register("emp")
    worker.register("relations", system=True)
    worker.record_read("emp")
    worker.record_read("emp")
    worker.record_write("emp")
    worker.record_read("relations")

    coordinator = IOStats()
    coordinator.register("emp")
    with coordinator.scoped("s1"):
        coordinator.record_read("emp")
    coordinator.merge_scope("s1", worker.export_scope())

    totals = coordinator.totals("s1")
    assert totals.user == IOCounters(3, 1)
    assert totals.system == IOCounters(1, 0)
    assert coordinator.totals().user == IOCounters(3, 1)
    # The worker's system classification travelled with the export.
    assert coordinator.is_system("relations")


def test_merge_scope_is_order_independent():
    exports = []
    for reads in (3, 5, 7):
        worker = IOStats()
        worker.register("emp")
        for _ in range(reads):
            worker.record_read("emp")
        exports.append(worker.export_scope())

    forward = IOStats()
    backward = IOStats()
    for exported in exports:
        forward.merge_scope("s", exported)
    for exported in reversed(exports):
        backward.merge_scope("s", exported)
    assert forward.totals("s") == backward.totals("s")
    assert forward.totals("s").user.reads == 15


def test_merge_scope_survives_pickling_the_export():
    import pickle

    worker = IOStats()
    worker.register("emp")
    worker.record_read("emp")
    exported = pickle.loads(pickle.dumps(worker.export_scope()))
    coordinator = IOStats()
    coordinator.merge_scope("s1", exported)
    assert coordinator.totals("s1").user.reads == 1


def test_iodelta_wire_roundtrip():
    delta = IODelta(
        user=IOCounters(3, 2),
        system=IOCounters(1, 0),
        by_relation={"emp": IOCounters(3, 2), "relations": IOCounters(1, 0)},
    )
    assert IODelta.from_dict(delta.as_dict()) == delta


def test_flush_statement_only_touches_own_scope():
    stats = IOStats()
    pool = BufferPool(stats=stats)
    file_a = pool.create_file("a", 16)
    file_b = pool.create_file("b", 16)
    with stats.scoped("s1"):
        page_id, _ = file_a.allocate()
        file_a.mark_dirty(page_id)
    with stats.scoped("s2"):
        page_id, _ = file_b.allocate()
        file_b.mark_dirty(page_id)
    with stats.scoped("s1"):
        pool.flush_statement()
    # s1's dirty page was written out; s2's page is still resident.
    assert stats.totals("s1").user.writes == 1
    assert stats.totals("s2").user.writes == 0
    assert file_b.is_resident(0)
    with stats.scoped("s2"):
        pool.flush_statement()
    assert stats.totals("s2").user.writes == 1
