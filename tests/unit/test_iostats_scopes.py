"""Per-scope I/O attribution in the shared meter.

Two concurrent sessions share one IOStats, but each must see exactly its
own page reads and writes (the paper's metric is per-statement, and a
session's statement must not absorb a neighbour's I/O).
"""

from __future__ import annotations

import threading

from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOCounters, IODelta, IOStats


def test_scoped_counters_are_disjoint():
    stats = IOStats()
    stats.register("a")
    stats.register("b")
    with stats.scoped("s1"):
        stats.record_read("a")
        stats.record_read("a")
        stats.record_write("a")
    with stats.scoped("s2"):
        stats.record_read("b")
    assert stats.totals("s1").by_relation == {"a": IOCounters(2, 1)}
    assert stats.totals("s2").by_relation == {"b": IOCounters(1, 0)}
    # The global (scope-less) view still aggregates everything.
    assert stats.totals().by_relation == {
        "a": IOCounters(2, 1),
        "b": IOCounters(1, 0),
    }


def test_checkpoint_delta_with_scope():
    stats = IOStats()
    stats.register("rel")
    with stats.scoped("s1"):
        stats.record_read("rel")
        before = stats.checkpoint("s1")
        stats.record_read("rel")
        stats.record_write("rel")
    delta = stats.delta(before, "s1")
    assert delta.user == IOCounters(1, 1)


def test_unscoped_recording_stays_global_only():
    stats = IOStats()
    stats.register("rel")
    stats.record_read("rel")
    assert stats.totals().user.reads == 1
    assert stats.totals("ghost").user.reads == 0


def test_scopes_nest_by_replacement():
    stats = IOStats()
    stats.register("rel")
    with stats.scoped("outer"):
        with stats.scoped("inner"):
            stats.record_read("rel")
        stats.record_write("rel")
    assert stats.totals("inner").user == IOCounters(1, 0)
    assert stats.totals("outer").user == IOCounters(0, 1)


def test_scoped_none_is_a_noop():
    stats = IOStats()
    stats.register("rel")
    with stats.scoped("s1"):
        with stats.scoped(None):
            stats.record_read("rel")
    assert stats.totals("s1").user.reads == 1


def test_scope_is_thread_local():
    stats = IOStats()
    stats.register("rel")
    seen = {}

    def worker(scope):
        with stats.scoped(scope):
            for _ in range(5):
                stats.record_read("rel")
            seen[scope] = stats.totals(scope).user.reads

    threads = [
        threading.Thread(target=worker, args=(f"s{n}",)) for n in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert seen == {f"s{n}": 5 for n in range(4)}
    assert stats.totals().user.reads == 20


def test_drop_scope_forgets_attribution():
    stats = IOStats()
    stats.register("rel")
    with stats.scoped("s1"):
        stats.record_read("rel")
    stats.drop_scope("s1")
    assert stats.totals("s1").user.reads == 0
    assert stats.totals().user.reads == 1


def test_iodelta_wire_roundtrip():
    delta = IODelta(
        user=IOCounters(3, 2),
        system=IOCounters(1, 0),
        by_relation={"emp": IOCounters(3, 2), "relations": IOCounters(1, 0)},
    )
    assert IODelta.from_dict(delta.as_dict()) == delta


def test_flush_statement_only_touches_own_scope():
    stats = IOStats()
    pool = BufferPool(stats=stats)
    file_a = pool.create_file("a", 16)
    file_b = pool.create_file("b", 16)
    with stats.scoped("s1"):
        page_id, _ = file_a.allocate()
        file_a.mark_dirty(page_id)
    with stats.scoped("s2"):
        page_id, _ = file_b.allocate()
        file_b.mark_dirty(page_id)
    with stats.scoped("s1"):
        pool.flush_statement()
    # s1's dirty page was written out; s2's page is still resident.
    assert stats.totals("s1").user.writes == 1
    assert stats.totals("s2").user.writes == 0
    assert file_b.is_resident(0)
    with stats.scoped("s2"):
        pool.flush_statement()
    assert stats.totals("s2").user.writes == 1
