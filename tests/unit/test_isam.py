"""Unit and property tests for ISAM files."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.access.isam import IsamFile
from repro.errors import AccessMethodError
from repro.storage.buffer import BufferPool
from repro.storage.record import FieldSpec, RecordCodec

FIELDS = [("id", "i4"), ("payload", "c112")]  # 116 bytes -> 8 per page


def make_isam(rows, fillfactor=100, fields=FIELDS):
    codec = RecordCodec([FieldSpec.parse(n, t) for n, t in fields])
    pool = BufferPool()
    isam = IsamFile(pool.create_file("i", codec.record_size), codec, 0)
    isam.build(rows, fillfactor)
    pool.flush_all()
    pool.stats.reset()
    return isam, pool


def rows(n):
    return [(i, "x") for i in range(1, n + 1)]


class TestBuild:
    def test_paper_layout_100pct(self):
        isam, _ = make_isam(rows(1024))
        assert isam.data_pages == 128
        assert isam.directory_pages == 1
        assert isam.directory_height == 1
        assert isam.page_count == 129

    def test_paper_layout_50pct(self):
        # 256 data pages need two directory levels: 2 leaves + 1 root.
        isam, _ = make_isam(rows(1024), fillfactor=50)
        assert isam.data_pages == 256
        assert isam.directory_pages == 3
        assert isam.directory_height == 2
        assert isam.page_count == 259

    def test_records_sorted_into_pages(self):
        shuffled = [(i, "x") for i in (5, 1, 4, 2, 3)]
        isam, _ = make_isam(shuffled)
        assert [row[0] for _, row in isam.scan()] == [1, 2, 3, 4, 5]

    def test_empty_relation_still_has_structure(self):
        isam, _ = make_isam([])
        assert isam.data_pages == 1
        assert isam.directory_height == 1
        assert list(isam.lookup(5)) == []

    def test_requires_key(self):
        codec = RecordCodec([FieldSpec.parse("id", "i4")])
        pool = BufferPool()
        with pytest.raises(AccessMethodError):
            IsamFile(pool.create_file("i", 4), codec, None)


class TestLookup:
    def test_single_record(self):
        isam, _ = make_isam(rows(64))
        assert [row for _, row in isam.lookup(33)] == [(33, "x")]

    def test_every_key_found(self):
        isam, _ = make_isam(rows(64))
        for key in range(1, 65):
            assert [row for _, row in isam.lookup(key)] == [(key, "x")]

    def test_missing_keys(self):
        isam, _ = make_isam(rows(64))
        assert list(isam.lookup(0)) == []
        assert list(isam.lookup(65)) == []

    def test_cost_is_height_plus_data(self):
        isam, pool = make_isam(rows(64))
        list(isam.lookup(34))  # 34 is not a page-boundary first key
        assert pool.stats.totals().user.reads == 2

    def test_cost_grows_with_chain(self):
        isam, pool = make_isam(rows(64))
        for _ in range(8):
            isam.insert((34, "v"))
        pool.flush_all()
        pool.stats.reset()
        list(isam.lookup(34))
        assert pool.stats.totals().user.reads == 3  # dir + data + overflow

    def test_duplicates_spanning_page_boundary(self):
        # 12 copies of key 7 span two data pages (8 per page).
        data = rows(6) + [(7, f"d{j}") for j in range(12)]
        isam, _ = make_isam(data)
        assert len(list(isam.lookup(7))) == 12

    def test_dir_reads_counter(self):
        isam, _ = make_isam(rows(64))
        before = isam.dir_reads
        list(isam.lookup(10))
        assert isam.dir_reads == before + 1


class TestInsert:
    def test_goes_to_owner_page_chain(self):
        isam, _ = make_isam(rows(64))
        base = isam.page_count
        for _ in range(8):
            isam.insert((34, "v"))
        assert isam.page_count == base + 1
        assert len(list(isam.lookup(34))) == 9

    def test_key_below_all_goes_to_first_page(self):
        isam, _ = make_isam(rows(16))
        isam.insert((-5, "low"))
        assert [row for _, row in isam.lookup(-5)] == [(-5, "low")]

    def test_key_above_all_goes_to_last_page(self):
        isam, _ = make_isam(rows(16))
        isam.insert((999, "high"))
        assert [row for _, row in isam.lookup(999)] == [(999, "high")]

    def test_fillfactor_gap_absorbs_inserts(self):
        isam, _ = make_isam(rows(16), fillfactor=50)
        base = isam.page_count
        for i in range(1, 17):
            isam.insert((i, "v2"))
        assert isam.page_count == base


class TestScan:
    def test_scan_skips_directory(self):
        isam, pool = make_isam(rows(64))
        list(isam.scan())
        # 8 data pages read; the 1 directory page is skipped for free.
        assert pool.stats.totals().user.reads == 8

    def test_scan_includes_overflow(self):
        isam, _ = make_isam(rows(64))
        for _ in range(10):
            isam.insert((34, "v"))
        assert len(list(isam.scan())) == 74

    def test_string_keys(self):
        data = [(f"k{i:03d}", i) for i in range(20)]
        codec_fields = [("name", "c8"), ("value", "i4")]
        isam, _ = make_isam(data, fields=codec_fields)
        assert [row for _, row in isam.lookup("k007")] == [("k007", 7)]


class TestProperties:
    @given(
        st.lists(
            st.integers(min_value=-100, max_value=100),
            min_size=1,
            max_size=80,
        ),
        st.sampled_from([100, 50]),
    )
    @settings(max_examples=40, deadline=None)
    def test_lookup_equals_filtered_scan(self, keys, fillfactor):
        isam, _ = make_isam([(k, "p") for k in keys], fillfactor=fillfactor)
        for probe in set(keys) | {0, 101, -101}:
            via_lookup = sorted(row for _, row in isam.lookup(probe))
            via_scan = sorted(
                row for _, row in isam.scan() if row[0] == probe
            )
            assert via_lookup == via_scan

    @given(
        st.lists(
            st.integers(min_value=0, max_value=50), min_size=1, max_size=60
        ),
        st.lists(
            st.integers(min_value=0, max_value=50), min_size=0, max_size=20
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_inserts_remain_reachable(self, initial, extra):
        isam, _ = make_isam([(k, "built") for k in initial])
        for k in extra:
            isam.insert((k, "inserted"))
        for probe in set(initial) | set(extra):
            expected = initial.count(probe) + extra.count(probe)
            assert len(list(isam.lookup(probe))) == expected

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_scan_is_sorted_after_build(self, keys):
        isam, _ = make_isam([(k, "p") for k in keys])
        scanned = [row[0] for _, row in isam.scan()]
        assert scanned == sorted(keys)
