"""Unit tests for the TQuel lexer."""

import pytest

from repro.errors import TQuelSyntaxError
from repro.tquel.lexer import tokenize


def kinds(text):
    return [token.type for token in tokenize(text)]


def values(text):
    return [token.value for token in tokenize(text)][:-1]


class TestBasics:
    def test_empty_input(self):
        assert kinds("") == ["eof"]

    def test_keywords_are_typed(self):
        assert kinds("retrieve where when")[:-1] == [
            "retrieve", "where", "when",
        ]

    def test_keywords_case_insensitive(self):
        assert kinds("RETRIEVE Where")[:-1] == ["retrieve", "where"]

    def test_identifiers(self):
        tokens = tokenize("temporal_h id2")
        assert tokens[0].type == "ident"
        assert tokens[0].value == "temporal_h"
        assert tokens[1].value == "id2"

    def test_identifiers_lowered(self):
        assert tokenize("Temporal_H")[0].value == "temporal_h"

    def test_integers(self):
        token = tokenize("73700")[0]
        assert token.type == "int"
        assert token.value == 73700

    def test_floats(self):
        token = tokenize("3.25")[0]
        assert token.type == "float"
        assert token.value == 3.25

    def test_dot_after_int_is_attribute_access(self):
        # h.id must not lex "h." weirdly; and "1." is int then dot.
        assert kinds("h.id")[:-1] == ["ident", ".", "ident"]

    def test_strings(self):
        token = tokenize('"08:00 1/1/80"')[0]
        assert token.type == "string"
        assert token.value == "08:00 1/1/80"

    def test_unterminated_string(self):
        with pytest.raises(TQuelSyntaxError):
            tokenize('"oops')

    def test_unexpected_character(self):
        with pytest.raises(TQuelSyntaxError):
            tokenize("a @ b")


class TestOperators:
    def test_two_char_operators(self):
        assert kinds("<= >= !=")[:-1] == ["<=", ">=", "!="]

    def test_single_char_operators(self):
        assert kinds("( ) , = < > + - * / . ;")[:-1] == list(
            ("(", ")", ",", "=", "<", ">", "+", "-", "*", "/", ".", ";")
        )

    def test_le_not_confused_with_l_eq(self):
        assert kinds("a<=b")[:-1] == ["ident", "<=", "ident"]


class TestCommentsAndPositions:
    def test_comments_skipped(self):
        # The paper's Figure 4 uses /* ... */ comments.
        assert values("range /* 1024 tuples */ of h") == [
            "range", "of", "h",
        ]

    def test_unterminated_comment(self):
        with pytest.raises(TQuelSyntaxError):
            tokenize("a /* b")

    def test_line_numbers(self):
        tokens = tokenize("retrieve\n  (h.id)")
        assert tokens[0].line == 1
        assert tokens[1].line == 2

    def test_column_numbers(self):
        tokens = tokenize("ab cd")
        assert tokens[0].column == 0
        assert tokens[1].column == 3

    def test_comment_tracks_newlines(self):
        tokens = tokenize("/* one\ntwo */ x")
        assert tokens[0].line == 2


class TestPaperQueries:
    def test_q12_tokenizes(self):
        text = (
            "retrieve (h.id, h.seq, i.id, i.seq, i.amount) "
            "valid from start of (h overlap i) to end of (h extend i) "
            "where h.id = 500 and i.amount = 73700 "
            'when h overlap i as of "now"'
        )
        tokens = tokenize(text)
        assert tokens[-1].type == "eof"
        assert "overlap" in [t.type for t in tokens]
        assert "extend" in [t.type for t in tokens]

    def test_figure3_ddl_tokenizes(self):
        text = (
            "create persistent interval temporal_h "
            "(id = i4, amount = i4, seq = i4, string = c96) "
            "modify temporal_h to hash on id where fillfactor = 100"
        )
        tokens = tokenize(text)
        assert [t.type for t in tokens[:3]] == [
            "create", "persistent", "interval",
        ]
