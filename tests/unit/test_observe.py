"""Unit tests for the observability primitives (repro.observe)."""

from __future__ import annotations

import pytest

from repro.observe import (
    DEBUG,
    ERROR,
    INFO,
    NULL_SPAN,
    WARNING,
    Counter,
    FlightRecorder,
    Histogram,
    MetricsRegistry,
    PageHeatmap,
    Span,
    overflow_chain_lengths,
    record_structure_metrics,
    render_strip,
)
from repro.observe.events import level_number
from repro.observe.trace import Tracer
from repro.storage.iostats import IOStats


def make_span(name="statement", **attributes) -> Span:
    stats = IOStats()
    stats.register("emp")
    span = Span(name, stats, attributes)
    span.start()
    return span


class TestSpan:
    def test_stage_children_nest(self):
        span = make_span()
        with span.stage("lex"):
            pass
        with span.stage("execute") as execute:
            with execute.stage("inner"):
                pass
        span.finish()
        assert [child.name for child in span.children] == ["lex", "execute"]
        assert [c.name for c in span.children[1].children] == ["inner"]

    def test_durations_measured(self):
        span = make_span()
        with span.stage("lex"):
            pass
        span.finish()
        assert span.duration >= 0
        assert span.children[0].duration >= 0
        assert span.duration >= span.children[0].duration

    def test_io_delta_attached(self):
        stats = IOStats()
        stats.register("emp")
        span = Span("statement", stats, {})
        span.start()
        stats.record_read("emp")
        span.finish()
        assert span.io.input_pages == 1
        assert span.io.by_relation["emp"].reads == 1

    def test_find_locates_stage(self):
        span = make_span()
        with span.stage("execute") as execute:
            with execute.stage("inner"):
                pass
        span.finish()
        assert span.find("inner").name == "inner"
        assert span.find("absent") is None

    def test_annotate_and_as_dict(self):
        span = make_span(text="retrieve (e.name)")
        span.annotate(prepared=True)
        with span.stage("lex"):
            pass
        span.finish()
        data = span.as_dict()
        assert data["name"] == "statement"
        assert data["attributes"]["prepared"] is True
        assert data["children"][0]["name"] == "lex"
        assert "duration_ms" in data

    def test_render_tree_shape(self):
        span = make_span()
        with span.stage("lex"):
            pass
        with span.stage("execute"):
            pass
        span.finish()
        lines = span.render().split("\n")
        assert lines[0].startswith("statement")
        assert lines[1].startswith("├─ lex")
        assert lines[2].startswith("└─ execute")

    def test_null_span_is_inert(self):
        with NULL_SPAN.stage("anything") as child:
            assert child is NULL_SPAN
        NULL_SPAN.annotate(whatever=1)
        assert NULL_SPAN.find("x") is None
        assert NULL_SPAN.render() == ""


class TestMetrics:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_histogram_stats(self):
        hist = Histogram()
        for value in (0, 1, 3, 17):
            hist.observe(value)
        assert hist.count == 4
        assert hist.min == 0
        assert hist.max == 17
        assert hist.mean == pytest.approx(21 / 4)

    def test_histogram_power_of_two_buckets(self):
        hist = Histogram()
        for value in (0, 1, 2, 3, 4, 1000):
            hist.observe(value)
        total = sum(hist.buckets.values())
        assert total == 6

    def test_registry_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("statements.retrieve")
        registry.inc("statements.retrieve", 2)
        registry.gauge("storage.h.pages", 40)
        assert registry.counter_value("statements.retrieve") == 3
        assert registry.gauge_value("storage.h.pages") == 40
        assert registry.counter_value("never.touched") == 0

    def test_registry_disabled_records_nothing(self):
        registry = MetricsRegistry()
        registry.enabled = False
        registry.inc("a")
        registry.observe("b", 9)
        registry.gauge("c", 1)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["gauges"] == {}

    def test_registry_reset(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.observe("b", 2)
        registry.reset()
        assert registry.counter_value("a") == 0
        assert "b" not in registry.snapshot()["histograms"]

    def test_render_mentions_all_metrics(self):
        registry = MetricsRegistry()
        registry.inc("statements.retrieve")
        registry.observe("statement.input_pages", 3)
        registry.gauge("storage.h.pages", 12)
        rendered = registry.render()
        assert "statements.retrieve" in rendered
        assert "statement.input_pages" in rendered
        assert "storage.h.pages" in rendered


class TestFlightRecorder:
    def test_ring_buffer_wraps_and_counts_drops(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record("tick", n=i)
        assert len(recorder) == 4
        assert recorder.dropped == 6
        events = recorder.dump()
        assert [event.data["n"] for event in events] == [6, 7, 8, 9]
        # sequence numbers keep counting through the wrap
        assert [event.seq for event in events] == [7, 8, 9, 10]

    def test_min_level_drops_at_the_call_site(self):
        recorder = FlightRecorder(min_level=INFO)
        recorder.record("quiet", level=DEBUG)
        recorder.record("loud", level=WARNING)
        assert [event.kind for event in recorder.dump()] == ["loud"]
        recorder.min_level = DEBUG
        recorder.record("quiet", level=DEBUG)
        assert [event.kind for event in recorder.dump()] == ["loud", "quiet"]
        # dump order is oldest first by sequence
        assert recorder.dump()[0].seq < recorder.dump()[1].seq

    def test_dump_filters_compose(self):
        recorder = FlightRecorder(min_level=DEBUG)
        recorder.record("a", level=DEBUG)
        recorder.record("b", level=WARNING)
        recorder.record("a", level=ERROR)
        assert len(recorder.dump(min_level="warning")) == 2
        assert len(recorder.dump(kind="a")) == 2
        assert [e.level for e in recorder.dump(min_level=WARNING, kind="a")] == [
            ERROR
        ]
        assert len(recorder.dump(1)) == 1

    def test_disabled_recorder_buffers_nothing(self):
        recorder = FlightRecorder(enabled=False)
        recorder.record("anything")
        assert len(recorder) == 0

    def test_clear_empties_but_keeps_sequence(self):
        recorder = FlightRecorder()
        recorder.record("one")
        recorder.clear()
        assert len(recorder) == 0 and recorder.dropped == 0
        recorder.record("two")
        assert recorder.dump()[0].seq == 2

    def test_render_and_level_names(self):
        recorder = FlightRecorder()
        assert recorder.render() == "(no events recorded)"
        recorder.record("statement.end", statement="retrieve", input_pages=3)
        rendered = recorder.render()
        assert "statement.end" in rendered
        assert "input_pages=3" in rendered
        assert level_number("warning") == WARNING
        with pytest.raises(ValueError):
            level_number("loud")
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestPageHeatmap:
    def test_counts_and_totals(self):
        heatmap = PageHeatmap(enabled=True)
        heatmap.record_read("h", 0)
        heatmap.record_read("h", 0)
        heatmap.record_read("h", 3)
        heatmap.record_write("h", 3)
        heatmap.record_read("i", 1)
        assert heatmap.files() == ["h", "i"]
        assert heatmap.counts("h") == {0: (2, 0), 3: (1, 1)}
        assert heatmap.totals("h") == (3, 1)
        assert heatmap.as_dict()["h"]["3"] == [1, 1]
        heatmap.clear()
        assert heatmap.files() == []

    def test_render_strip_scales_to_peak(self):
        strip = render_strip({0: 10, 7: 1}, pages=8, width=8)
        assert strip.startswith("[") and strip.endswith("]")
        assert len(strip) == 10
        assert strip[1] == "@"  # hottest page saturates the ramp
        assert strip[2] == " "  # untouched page stays blank
        assert render_strip({}, pages=4) == "[    ]"
        assert render_strip({}, pages=0) == "[]"

    def test_render_names_pages_and_totals(self):
        heatmap = PageHeatmap(enabled=True)
        heatmap.record_read("h", 2)
        heatmap.record_write("h", 2)
        rendered = heatmap.render("h", pages=4)
        assert rendered.startswith("h  4 page(s), 1 read(s) / 1 write(s)")
        assert "reads" in rendered and "writes" in rendered


class TestTracerHistory:
    def test_history_is_bounded(self):
        stats = IOStats()
        tracer = Tracer(stats, enabled=True, history=2)
        assert tracer.history_limit == 2
        for i in range(3):
            with tracer.statement(f"s{i}"):
                pass
        assert [span.attributes["text"] for span in tracer.history] == [
            "s1",
            "s2",
        ]
        assert tracer.last.attributes["text"] == "s2"

    def test_reset_clears_state_not_configuration(self):
        stats = IOStats()
        sink_calls = []
        tracer = Tracer(stats, enabled=True)
        tracer.sink = sink_calls.append
        with tracer.statement("s"):
            pass
        tracer.reset()
        assert tracer.last is None
        assert len(tracer.history) == 0
        assert tracer.enabled
        with tracer.statement("after-reset"):
            pass
        assert len(sink_calls) == 2  # the sink survived the reset

    def test_history_must_hold_at_least_one(self):
        with pytest.raises(ValueError):
            Tracer(IOStats(), history=0)


class TestStructureMetrics:
    def test_overflow_chains_and_gauges(self, db):
        db.execute("create persistent interval h (id = i4, amount = i4)")
        db.execute("range of e is h")
        for i in range(100):
            db.execute(f"append to h (id = {i}, amount = {i})")
        db.execute("modify h to hash on id where fillfactor = 100")
        for i in range(100, 200):
            db.execute(f"append to h (id = {i}, amount = {i})")
        relation = db.relation("h")
        lengths = overflow_chain_lengths(relation.storage)
        assert lengths, "200 rows at fillfactor 100 must overflow"
        assert max(lengths) >= 1

        record_structure_metrics(db)
        assert db.metrics.gauge_value("storage.h.pages") == (
            relation.page_count
        )
        assert db.metrics.gauge_value("storage.h.longest_chain") == max(
            lengths
        )
        hist = db.metrics.snapshot()["histograms"][
            "storage.overflow_chain_length"
        ]
        assert hist["count"] == len(lengths)
