"""Unit tests for the observability primitives (repro.observe)."""

from __future__ import annotations

import pytest

from repro.observe import (
    NULL_SPAN,
    Counter,
    Histogram,
    MetricsRegistry,
    Span,
    overflow_chain_lengths,
    record_structure_metrics,
)
from repro.storage.iostats import IOStats


def make_span(name="statement", **attributes) -> Span:
    stats = IOStats()
    stats.register("emp")
    span = Span(name, stats, attributes)
    span.start()
    return span


class TestSpan:
    def test_stage_children_nest(self):
        span = make_span()
        with span.stage("lex"):
            pass
        with span.stage("execute") as execute:
            with execute.stage("inner"):
                pass
        span.finish()
        assert [child.name for child in span.children] == ["lex", "execute"]
        assert [c.name for c in span.children[1].children] == ["inner"]

    def test_durations_measured(self):
        span = make_span()
        with span.stage("lex"):
            pass
        span.finish()
        assert span.duration >= 0
        assert span.children[0].duration >= 0
        assert span.duration >= span.children[0].duration

    def test_io_delta_attached(self):
        stats = IOStats()
        stats.register("emp")
        span = Span("statement", stats, {})
        span.start()
        stats.record_read("emp")
        span.finish()
        assert span.io.input_pages == 1
        assert span.io.by_relation["emp"].reads == 1

    def test_find_locates_stage(self):
        span = make_span()
        with span.stage("execute") as execute:
            with execute.stage("inner"):
                pass
        span.finish()
        assert span.find("inner").name == "inner"
        assert span.find("absent") is None

    def test_annotate_and_as_dict(self):
        span = make_span(text="retrieve (e.name)")
        span.annotate(prepared=True)
        with span.stage("lex"):
            pass
        span.finish()
        data = span.as_dict()
        assert data["name"] == "statement"
        assert data["attributes"]["prepared"] is True
        assert data["children"][0]["name"] == "lex"
        assert "duration_ms" in data

    def test_render_tree_shape(self):
        span = make_span()
        with span.stage("lex"):
            pass
        with span.stage("execute"):
            pass
        span.finish()
        lines = span.render().split("\n")
        assert lines[0].startswith("statement")
        assert lines[1].startswith("├─ lex")
        assert lines[2].startswith("└─ execute")

    def test_null_span_is_inert(self):
        with NULL_SPAN.stage("anything") as child:
            assert child is NULL_SPAN
        NULL_SPAN.annotate(whatever=1)
        assert NULL_SPAN.find("x") is None
        assert NULL_SPAN.render() == ""


class TestMetrics:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_histogram_stats(self):
        hist = Histogram()
        for value in (0, 1, 3, 17):
            hist.observe(value)
        assert hist.count == 4
        assert hist.min == 0
        assert hist.max == 17
        assert hist.mean == pytest.approx(21 / 4)

    def test_histogram_power_of_two_buckets(self):
        hist = Histogram()
        for value in (0, 1, 2, 3, 4, 1000):
            hist.observe(value)
        total = sum(hist.buckets.values())
        assert total == 6

    def test_registry_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("statements.retrieve")
        registry.inc("statements.retrieve", 2)
        registry.gauge("storage.h.pages", 40)
        assert registry.counter_value("statements.retrieve") == 3
        assert registry.gauge_value("storage.h.pages") == 40
        assert registry.counter_value("never.touched") == 0

    def test_registry_disabled_records_nothing(self):
        registry = MetricsRegistry()
        registry.enabled = False
        registry.inc("a")
        registry.observe("b", 9)
        registry.gauge("c", 1)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["gauges"] == {}

    def test_registry_reset(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.observe("b", 2)
        registry.reset()
        assert registry.counter_value("a") == 0
        assert "b" not in registry.snapshot()["histograms"]

    def test_render_mentions_all_metrics(self):
        registry = MetricsRegistry()
        registry.inc("statements.retrieve")
        registry.observe("statement.input_pages", 3)
        registry.gauge("storage.h.pages", 12)
        rendered = registry.render()
        assert "statements.retrieve" in rendered
        assert "statement.input_pages" in rendered
        assert "storage.h.pages" in rendered


class TestStructureMetrics:
    def test_overflow_chains_and_gauges(self, db):
        db.execute("create persistent interval h (id = i4, amount = i4)")
        db.execute("range of e is h")
        for i in range(100):
            db.execute(f"append to h (id = {i}, amount = {i})")
        db.execute("modify h to hash on id where fillfactor = 100")
        for i in range(100, 200):
            db.execute(f"append to h (id = {i}, amount = {i})")
        relation = db.relation("h")
        lengths = overflow_chain_lengths(relation.storage)
        assert lengths, "200 rows at fillfactor 100 must overflow"
        assert max(lengths) >= 1

        record_structure_metrics(db)
        assert db.metrics.gauge_value("storage.h.pages") == (
            relation.page_count
        )
        assert db.metrics.gauge_value("storage.h.longest_chain") == max(
            lengths
        )
        hist = db.metrics.snapshot()["histograms"][
            "storage.overflow_chain_length"
        ]
        assert hist["count"] == len(lengths)
