"""Unit tests for 1024-byte pages."""

import pytest

from repro.errors import PageOverflowError, StorageError
from repro.storage.page import (
    NO_PAGE,
    PAGE_HEADER_SIZE,
    PAGE_SIZE,
    Page,
    records_per_page,
)


class TestCapacity:
    def test_paper_static_tuples(self):
        # "9 tuples per page in static relations"
        assert records_per_page(108) == 9

    def test_paper_versioned_tuples(self):
        # "8 tuples per page in rollback, historical, or temporal relations"
        assert records_per_page(116) == 8
        assert records_per_page(124) == 8

    def test_one_byte_records(self):
        assert records_per_page(1) == PAGE_SIZE - PAGE_HEADER_SIZE

    def test_record_too_big(self):
        with pytest.raises(PageOverflowError):
            records_per_page(PAGE_SIZE)

    def test_zero_size_rejected(self):
        with pytest.raises(StorageError):
            records_per_page(0)


class TestAppendRead:
    def test_empty_page(self):
        page = Page(100)
        assert page.count == 0
        assert page.free_slots == page.capacity
        assert page.overflow == NO_PAGE

    def test_append_returns_slots_in_order(self):
        page = Page(10)
        assert page.append(b"a" * 10) == 0
        assert page.append(b"b" * 10) == 1
        assert page.count == 2

    def test_read_back(self):
        page = Page(4)
        page.append(b"abcd")
        page.append(b"wxyz")
        assert page.read(0) == b"abcd"
        assert page.read(1) == b"wxyz"

    def test_wrong_record_size_rejected(self):
        page = Page(10)
        with pytest.raises(PageOverflowError):
            page.append(b"short")

    def test_full_page_rejects_append(self):
        page = Page(500)  # capacity 2
        page.append(b"x" * 500)
        page.append(b"y" * 500)
        with pytest.raises(PageOverflowError):
            page.append(b"z" * 500)

    def test_read_out_of_range(self):
        page = Page(10)
        with pytest.raises(StorageError):
            page.read(0)


class TestWriteDelete:
    def test_write_in_place(self):
        page = Page(4)
        page.append(b"aaaa")
        page.write(0, b"bbbb")
        assert page.read(0) == b"bbbb"
        assert page.count == 1

    def test_delete_moves_last_into_hole(self):
        page = Page(4)
        for record in (b"aaaa", b"bbbb", b"cccc"):
            page.append(record)
        page.delete(0)
        assert page.count == 2
        assert sorted(page.records()) == [b"bbbb", b"cccc"]

    def test_delete_last_slot(self):
        page = Page(4)
        page.append(b"aaaa")
        page.delete(0)
        assert page.count == 0

    def test_version_bumps_on_mutation(self):
        page = Page(4)
        v0 = page.version
        page.append(b"aaaa")
        v1 = page.version
        page.write(0, b"bbbb")
        v2 = page.version
        page.set_overflow(7)
        v3 = page.version
        assert v0 < v1 < v2 < v3


class TestOverflowPointer:
    def test_set_overflow(self):
        page = Page(4)
        page.set_overflow(42)
        assert page.overflow == 42

    def test_overflow_survives_serialization(self):
        page = Page(4)
        page.append(b"aaaa")
        page.set_overflow(9)
        clone = Page.from_bytes(page.to_bytes(), 4)
        assert clone.overflow == 9
        assert clone.count == 1
        assert clone.read(0) == b"aaaa"


class TestSerialization:
    def test_image_is_page_size(self):
        assert len(Page(4).to_bytes()) == PAGE_SIZE

    def test_roundtrip_full_page(self):
        page = Page(100)
        for index in range(page.capacity):
            page.append(bytes([index]) * 100)
        clone = Page.from_bytes(page.to_bytes(), 100)
        assert clone.records() == page.records()

    def test_bad_image_size(self):
        with pytest.raises(StorageError):
            Page.from_bytes(b"tiny", 4)

    def test_corrupt_count_detected(self):
        image = bytearray(PAGE_SIZE)
        image[0:2] = (9999).to_bytes(2, "little")
        with pytest.raises(StorageError):
            Page.from_bytes(bytes(image), 4)
