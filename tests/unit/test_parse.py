"""Unit tests for temporal string parsing ("various formats of date and
time are accepted for input", Section 4)."""

import pytest

from repro.errors import DateParseError
from repro.temporal.chronon import BEGINNING, FOREVER, Clock
from repro.temporal.parse import parse_temporal

JAN1_1980 = 315532800  # 1980-01-01 00:00:00 UTC


class TestSymbolic:
    def test_forever(self):
        assert parse_temporal("forever") == FOREVER

    def test_beginning(self):
        assert parse_temporal("beginning") == BEGINNING

    def test_case_insensitive(self):
        assert parse_temporal("FOREVER") == FOREVER

    def test_now_uses_clock(self):
        assert parse_temporal("now", clock=Clock(start=42)) == 42

    def test_now_without_clock_fails(self):
        with pytest.raises(DateParseError):
            parse_temporal("now")

    def test_whitespace_stripped(self):
        assert parse_temporal("  forever  ") == FOREVER


class TestSlashDates:
    def test_paper_format(self):
        assert parse_temporal("1/1/80") == JAN1_1980

    def test_two_digit_year_is_1900s(self):
        assert parse_temporal("1/1/80") == parse_temporal("1/1/1980")

    def test_feb_15_1980(self):
        assert parse_temporal("2/15/80") == JAN1_1980 + 45 * 86400

    def test_four_digit_year(self):
        assert parse_temporal("12/31/1980") == JAN1_1980 + 365 * 86400

    def test_invalid_month(self):
        with pytest.raises(DateParseError):
            parse_temporal("13/1/80")

    def test_invalid_day(self):
        with pytest.raises(DateParseError):
            parse_temporal("2/30/80")

    def test_leap_day_1980(self):
        assert parse_temporal("2/29/80") == JAN1_1980 + 59 * 86400

    def test_leap_day_1981_invalid(self):
        with pytest.raises(DateParseError):
            parse_temporal("2/29/81")


class TestTimeOfDay:
    def test_paper_query_q03(self):
        assert parse_temporal("08:00 1/1/80") == JAN1_1980 + 8 * 3600

    def test_paper_query_q11(self):
        assert parse_temporal("4:00 1/1/80") == JAN1_1980 + 4 * 3600

    def test_with_seconds(self):
        assert parse_temporal("01:02:03 1/1/80") == JAN1_1980 + 3723

    def test_hour_out_of_range(self):
        with pytest.raises(DateParseError):
            parse_temporal("24:00 1/1/80")

    def test_minute_out_of_range(self):
        with pytest.raises(DateParseError):
            parse_temporal("10:60 1/1/80")

    def test_bare_time_rejected(self):
        with pytest.raises(DateParseError):
            parse_temporal("08:00")


class TestIsoDates:
    def test_date_only(self):
        assert parse_temporal("1980-01-01") == JAN1_1980

    def test_date_time(self):
        assert parse_temporal("1980-01-01 08:00") == JAN1_1980 + 8 * 3600

    def test_t_separator(self):
        assert parse_temporal("1980-01-01T08:00") == JAN1_1980 + 8 * 3600

    def test_with_seconds(self):
        assert parse_temporal("1980-01-01 00:00:59") == JAN1_1980 + 59


class TestYearAndWordy:
    def test_bare_year(self):
        assert parse_temporal("1981") == JAN1_1980 + 366 * 86400

    def test_figure2_query_year(self):
        # 'as of "1981"' from the Figure 2 example query.
        assert parse_temporal("1981") == parse_temporal("1/1/81")

    def test_wordy_date(self):
        assert parse_temporal("January 1, 1980") == JAN1_1980

    def test_abbreviated_month(self):
        assert parse_temporal("Feb 15, 1980") == parse_temporal("2/15/80")

    def test_unknown_month_name(self):
        with pytest.raises(DateParseError):
            parse_temporal("Grune 1, 1980")


class TestRejects:
    @pytest.mark.parametrize(
        "text",
        ["", "hello", "1/2", "99:99", "1980-13-01", "12", "#now"],
    )
    def test_garbage(self, text):
        with pytest.raises(DateParseError):
            parse_temporal(text)
