"""Unit tests for the TQuel parser."""

import pytest

from repro.errors import TQuelSyntaxError
from repro.tquel import ast
from repro.tquel.parser import parse, parse_statement


class TestRange:
    def test_basic(self):
        stmt = parse_statement("range of h is temporal_h")
        assert stmt == ast.RangeStmt("h", "temporal_h")

    def test_missing_is(self):
        with pytest.raises(TQuelSyntaxError):
            parse_statement("range of h temporal_h")


class TestRetrieve:
    def test_simple_targets(self):
        stmt = parse_statement("retrieve (h.id, h.seq)")
        assert [t.expr for t in stmt.targets] == [
            ast.Attr("h", "id"),
            ast.Attr("h", "seq"),
        ]

    def test_named_target(self):
        stmt = parse_statement("retrieve (total = h.a + h.b)")
        assert stmt.targets[0].name == "total"
        assert isinstance(stmt.targets[0].expr, ast.BinOp)

    def test_into(self):
        stmt = parse_statement("retrieve into snap (h.id)")
        assert stmt.into == "snap"

    def test_unique(self):
        stmt = parse_statement("retrieve unique (h.id)")
        assert stmt.unique

    def test_where_clause(self):
        stmt = parse_statement("retrieve (h.id) where h.id = 500")
        assert stmt.where == ast.Compare(
            "=", ast.Attr("h", "id"), ast.Const(500)
        )

    def test_when_clause(self):
        stmt = parse_statement('retrieve (h.id) when h overlap "now"')
        assert stmt.when == ast.TempBin(
            "overlap", ast.TempVar("h"), ast.TempConst("now")
        )

    def test_as_of_clause(self):
        stmt = parse_statement('retrieve (h.id) as of "08:00 1/1/80"')
        assert stmt.as_of == ast.AsOfClause(ast.TempConst("08:00 1/1/80"))

    def test_as_of_through(self):
        stmt = parse_statement(
            'retrieve (h.id) as of "1980" through "1981"'
        )
        assert stmt.as_of.through == ast.TempConst("1981")

    def test_clauses_any_order(self):
        a = parse_statement(
            'retrieve (h.id) where h.id = 1 when h overlap "now"'
        )
        b = parse_statement(
            'retrieve (h.id) when h overlap "now" where h.id = 1'
        )
        assert a.where == b.where and a.when == b.when

    def test_duplicate_clause_rejected(self):
        with pytest.raises(TQuelSyntaxError):
            parse_statement("retrieve (h.id) where h.a = 1 where h.b = 2")

    def test_empty_target_list_rejected(self):
        with pytest.raises(TQuelSyntaxError):
            parse_statement("retrieve ()")


class TestValidClause:
    def test_valid_from_to(self):
        stmt = parse_statement(
            "retrieve (h.id) valid from start of h to end of i"
        )
        assert stmt.valid.from_ == ast.TempEdge("start", ast.TempVar("h"))
        assert stmt.valid.to == ast.TempEdge("end", ast.TempVar("i"))

    def test_valid_at(self):
        stmt = parse_statement('retrieve (h.id) valid at "1981"')
        assert stmt.valid.at == ast.TempConst("1981")

    def test_q12_nested_temporal_expressions(self):
        stmt = parse_statement(
            "retrieve (h.id) "
            "valid from start of (h overlap i) to end of (h extend i)"
        )
        assert stmt.valid.from_ == ast.TempEdge(
            "start",
            ast.TempBin("overlap", ast.TempVar("h"), ast.TempVar("i")),
        )
        assert stmt.valid.to == ast.TempEdge(
            "end", ast.TempBin("extend", ast.TempVar("h"), ast.TempVar("i"))
        )

    def test_valid_requires_from_or_at(self):
        with pytest.raises(TQuelSyntaxError):
            parse_statement("retrieve (h.id) valid to h")


class TestWhenGrammar:
    def test_conjunction(self):
        stmt = parse_statement(
            'retrieve (h.id) when h overlap i and i overlap "now"'
        )
        assert isinstance(stmt.when, ast.BoolOp)
        assert stmt.when.op == "and"
        assert len(stmt.when.operands) == 2

    def test_q11_precede_with_edge(self):
        stmt = parse_statement(
            "retrieve (h.id) when start of h precede i"
        )
        assert stmt.when == ast.TempBin(
            "precede",
            ast.TempEdge("start", ast.TempVar("h")),
            ast.TempVar("i"),
        )

    def test_parenthesized_temporal_operand(self):
        stmt = parse_statement(
            "retrieve (h.id) when (h overlap i) precede j"
        )
        assert stmt.when.op == "precede"
        assert stmt.when.left.op == "overlap"

    def test_parenthesized_boolean(self):
        stmt = parse_statement(
            'retrieve (h.id) when (h overlap i and i overlap "now") '
            "or h precede i"
        )
        assert stmt.when.op == "or"

    def test_not(self):
        stmt = parse_statement("retrieve (h.id) when not h overlap i")
        assert isinstance(stmt.when, ast.NotOp)

    def test_or_of_ands_precedence(self):
        stmt = parse_statement(
            "retrieve (h.id) when a overlap b and b overlap c "
            "or c overlap d"
        )
        assert stmt.when.op == "or"
        assert stmt.when.operands[0].op == "and"


class TestExpressionGrammar:
    def q(self, expr):
        return parse_statement(f"retrieve (x = {expr})").targets[0].expr

    def test_precedence_mul_over_add(self):
        node = self.q("h.a + h.b * 2")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_parens_override(self):
        node = self.q("(h.a + h.b) * 2")
        assert node.op == "*"

    def test_unary_minus(self):
        node = self.q("-h.a")
        assert isinstance(node, ast.UnaryOp)

    def test_string_const(self):
        node = self.q('"hello"')
        assert node == ast.Const("hello")

    def test_comparison_chain_not_allowed(self):
        # a = b = c is not a valid Quel expression; second '=' terminates.
        with pytest.raises(TQuelSyntaxError):
            parse_statement("retrieve (h.a) where h.a = 1 = 2 junk")


class TestUpdateStatements:
    def test_append(self):
        stmt = parse_statement('append to emp (name = "ahn", sal = 100)')
        assert stmt.relation == "emp"
        assert stmt.targets[0].name == "name"

    def test_append_without_to(self):
        stmt = parse_statement("append emp (sal = 1)")
        assert stmt.relation == "emp"

    def test_delete(self):
        stmt = parse_statement("delete h where h.id = 5")
        assert stmt.var == "h"
        assert stmt.where is not None

    def test_replace(self):
        stmt = parse_statement("replace h (seq = h.seq + 1)")
        assert stmt.var == "h"
        assert stmt.targets[0].name == "seq"

    def test_replace_with_valid(self):
        stmt = parse_statement(
            'replace s (m = 1) valid from "5/1/82" to "forever" '
            'where s.name = "jane"'
        )
        assert stmt.valid is not None
        assert stmt.where is not None


class TestDdlStatements:
    def test_create_static(self):
        stmt = parse_statement("create parts (pnum = i4, pname = c20)")
        assert not stmt.persistent and stmt.kind is None
        assert stmt.columns == (("pnum", "i4"), ("pname", "c20"))

    def test_create_rollback(self):
        assert parse_statement("create persistent p (a = i4)").persistent

    def test_create_historical_event(self):
        stmt = parse_statement("create event e (a = i4)")
        assert stmt.kind == "event"

    def test_create_temporal(self):
        stmt = parse_statement("create persistent interval t (a = i4)")
        assert stmt.persistent and stmt.kind == "interval"

    def test_modify_figure3(self):
        stmt = parse_statement(
            "modify temporal_h to hash on id where fillfactor = 100"
        )
        assert stmt.structure == "hash"
        assert stmt.key == "id"
        assert stmt.options == (("fillfactor", 100),)

    def test_modify_extension_options(self):
        stmt = parse_statement(
            'modify t to twolevel on id where history = "clustered", '
            'primary = "hash"'
        )
        assert dict(stmt.options) == {
            "history": "clustered", "primary": "hash",
        }

    def test_index(self):
        stmt = parse_statement(
            "index on temporal_h is amt_idx (amount) "
            "where structure = hash, levels = 2"
        )
        assert stmt.relation == "temporal_h"
        assert stmt.attribute == "amount"
        assert dict(stmt.options)["levels"] == 2

    def test_destroy_many(self):
        stmt = parse_statement("destroy a, b, c")
        assert stmt.relations == ("a", "b", "c")

    def test_copy(self):
        stmt = parse_statement('copy emp from "/tmp/emp.dat"')
        assert stmt.direction == "from"
        assert stmt.path == "/tmp/emp.dat"


class TestMultiStatement:
    def test_statements_split_on_keywords(self):
        statements = parse(
            "range of h is t retrieve (h.id) where h.id = 1"
        )
        assert len(statements) == 2

    def test_semicolons_accepted(self):
        statements = parse("range of h is t; retrieve (h.id);")
        assert len(statements) == 2

    def test_parse_statement_rejects_many(self):
        with pytest.raises(TQuelSyntaxError):
            parse_statement("range of a is t range of b is t")

    def test_parse_statement_rejects_none(self):
        with pytest.raises(TQuelSyntaxError):
            parse_statement("   ")

    def test_garbage_statement(self):
        with pytest.raises(TQuelSyntaxError):
            parse("frobnicate the database")


class TestPaperFigure4:
    """Every benchmark query in Figure 4 must parse."""

    QUERIES = [
        "retrieve (h.id, h.seq) where h.id = 500",
        "retrieve (i.id, i.seq) where i.id = 500",
        'retrieve (h.id, h.seq) as of "08:00 1/1/80"',
        'retrieve (i.id, i.seq) as of "08:00 1/1/80"',
        'retrieve (h.id, h.seq) where h.id = 500 when h overlap "now"',
        'retrieve (i.id, i.seq) where i.id = 500 when i overlap "now"',
        'retrieve (h.id, h.seq) where h.amount = 69400 when h overlap "now"',
        'retrieve (i.id, i.seq) where i.amount = 73700 when i overlap "now"',
        "retrieve (h.id, i.id, i.amount) where h.id = i.amount "
        'when h overlap i and i overlap "now"',
        "retrieve (i.id, h.id, h.amount) where i.id = h.amount "
        'when h overlap i and h overlap "now"',
        "retrieve (h.id, h.seq, i.id, i.seq, i.amount) "
        "valid from start of h to end of i "
        'when start of h precede i as of "4:00 1/1/80"',
        "retrieve (h.id, h.seq, i.id, i.seq, i.amount) "
        "valid from start of (h overlap i) to end of (h extend i) "
        "where h.id = 500 and i.amount = 73700 "
        'when h overlap i as of "now"',
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_parses(self, query):
        stmt = parse_statement(query)
        assert isinstance(stmt, ast.RetrieveStmt)

    def test_figure2_example(self):
        stmt = parse_statement(
            "retrieve (h.id, h.seq, i.id, i.seq, i.amount) "
            "valid from start of (h overlap i) to end of (h extend i) "
            "where h.id = 500 and i.amount = 73700 "
            'when h overlap i as of "1981"'
        )
        assert stmt.as_of.at == ast.TempConst("1981")
