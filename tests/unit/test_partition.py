"""Unit tests for the partitioning layer and the page-fold kernel."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError
from repro.engine.partition import route_hash, route_range
from repro.exec.scan import compile_page_fold, merge_partials
from repro.tquel.parser import parse_statement
from repro.tquel.unparse import unparse
from tests.conftest import make_db


class TestRouting:
    def test_hash_is_stable_and_in_range(self):
        for value in (0, 1, 7, -3, 10**9, "abc", "g0", 3.5):
            pid = route_hash(value, 4)
            assert 0 <= pid < 4
            assert pid == route_hash(value, 4)

    def test_hash_spreads_keys(self):
        counts = [0] * 4
        for key in range(1000):
            counts[route_hash(key, 4)] += 1
        # No partition should be empty or hold everything.
        assert min(counts) > 100
        assert max(counts) < 500

    def test_range_respects_cuts(self):
        cuts = [10, 20, 30]
        assert route_range(5, cuts) == 0
        assert route_range(10, cuts) == 1  # cuts[k-1] <= v < cuts[k]
        assert route_range(19, cuts) == 1
        assert route_range(20, cuts) == 2
        assert route_range(30, cuts) == 3
        assert route_range(999, cuts) == 3


class TestPartitionStatement:
    def test_parser_roundtrip(self):
        texts = (
            "partition r by hash on id into 4",
            'partition r by range on id into 3 where bounds = "10, 20"',
            'partition r by hash on id into 8 where parallel = "process"',
        )
        for text in texts:
            stmt = parse_statement(text)
            assert parse_statement(unparse(stmt)) == stmt

    def test_into_one_collapses(self):
        db = make_db()
        db.execute("create r (id = i4, v = i4)")
        db.execute("range of x is r")
        for i in range(8):
            db.execute(f"append to r (id = {i}, v = {i * 10})")
        db.execute("partition r by hash on id into 4")
        assert db.relation("r").is_partitioned
        db.execute("partition r by hash on id into 1")
        assert not getattr(db.relation("r"), "is_partitioned", False)
        rows = db.execute("retrieve (x.id, x.v)").rows
        assert sorted(r[0] for r in rows) == list(range(8))

    def test_refuses_secondary_indexes(self):
        db = make_db()
        db.execute("create r (id = i4, v = i4)")
        db.execute("index on r is rv (v)")
        with pytest.raises(CatalogError):
            db.execute("partition r by hash on id into 4")

    def test_catalog_queryable_and_persistent(self):
        db = make_db()
        db.execute("create r (id = i4, v = i4)")
        db.execute('partition r by hash on id into 4 where parallel = "thread"')
        db.execute("range of p is partitions")
        rows = db.execute(
            'retrieve (p.relname, p.method, p.parts, p.parallel) '
            'where p.relname = "r"'
        ).rows
        assert rows == [("r", "hash", 4, "thread")]
        meta = db.catalog.partition_for("r")
        assert meta is not None
        db.execute("partition r by hash on id into 1")
        assert db.catalog.partition_for("r") is None

    def test_destroy_drops_child_files(self):
        db = make_db()
        db.execute("create r (id = i4)")
        db.execute("partition r by hash on id into 4")
        children = db.relation("r").file_names()
        assert len(children) == 4
        db.execute("destroy r")
        for name in children:
            assert name not in db.pool._files


class TestZoneMapMaintenance:
    def test_incremental_on_append(self):
        db = make_db()
        db.execute("create persistent interval r (id = i4, v = i4)")
        db.execute("range of x is r")
        db.execute("partition r by hash on id into 2")
        relation = db.relation("r")
        relation.enable_zone_map()
        before = dict(relation.zone_map)
        db.execute("append to r (id = 1, v = 10)")
        after = dict(relation.zone_map)
        # The map grew (or tightened) without a rebuild; every page the
        # relation holds has an entry.
        assert len(after) >= len(before)
        total_pages = sum(
            child.storage.page_count for child in relation.children
        )
        assert len(after) == total_pages


class TestPageFoldKernel:
    ROWS = [
        (1, b"g0      ", 10, 100, 2**62, 100, 2**62),
        (2, b"g1      ", 20, 100, 2**62, 100, 2**62),
        (3, b"g0      ", 30, 200, 2**62, 200, 2**62),
    ]

    def test_count_sum_min_max(self):
        aggs = [("count", 0), ("sum", 2), ("min", 2), ("max", 2)]
        fold = compile_page_fold([], aggs)
        selected, partials = fold(self.ROWS)
        assert selected == 3
        merged = merge_partials(aggs, [{"partials": partials}])
        assert merged == [3, 60, 10, 30]

    def test_char_filter_strips_padding(self):
        fold = compile_page_fold([("cmp", 1, "=", "g0")], [("count", 0)])
        assert fold(self.ROWS)[0] == 2

    def test_numeric_filter_ops(self):
        for op, expected in (("<", 1), ("<=", 2), (">", 1), (">=", 2), ("!=", 2)):
            fold = compile_page_fold([("cmp", 2, op, 20)], [("count", 0)])
            assert fold(self.ROWS)[0] == expected, op

    def test_asof_filter_includes_degenerate_interval(self):
        # A version whose stop <= start is treated as [start, start+1),
        # exactly like make_asof_filter in the interpreter.
        rows = [(1, b"g", 1, 100, 50, 100, 50)]
        fold = compile_page_fold([("asof", 3, 4, 99, 101)], [("count", 0)])
        assert fold(rows)[0] == 1
        fold = compile_page_fold([("asof", 3, 4, 101, 102)], [("count", 0)])
        assert fold(rows)[0] == 0

    def test_merge_avg_partials(self):
        aggs = [("avg", 2)]
        fold = compile_page_fold([], aggs)
        _, a = fold(self.ROWS[:2])
        _, b = fold(self.ROWS[2:])
        merged = merge_partials(aggs, [{"partials": a}, {"partials": b}])
        # avg partial is (total, count); the interpreter finishes it.
        assert merged == [(60, 3)]
