"""Unit tests for the query-statistics store (repro.observe.stats)."""

from __future__ import annotations

import json

import pytest

from repro.observe.stats import (
    QueryStats,
    QueryStatsStore,
    SlowQueryLog,
    fingerprint,
    growth_rate_for,
    stats_prometheus_text,
)


class TestFingerprint:
    def test_literals_are_stripped(self):
        a = fingerprint('append to emp (name = "ahn", sal = 30000)')
        b = fingerprint('append to emp (name = "snodgrass", sal = 42)')
        assert a == b
        assert '"ahn"' not in a and "30000" not in a

    def test_parameters_and_literals_normalize_identically(self):
        bound = fingerprint("retrieve (e.sal) where e.name = $name")
        literal = fingerprint('retrieve (e.sal) where e.name = "ahn"')
        assert bound == literal

    def test_whitespace_and_case_insensitive(self):
        a = fingerprint("RETRIEVE   (e.sal)\n  where e.id = 7")
        b = fingerprint("retrieve (e.sal) where e.id = 9")
        assert a == b

    def test_different_shapes_stay_distinct(self):
        assert fingerprint("retrieve (e.sal)") != fingerprint(
            "retrieve (e.name)"
        )

    def test_unlexable_text_falls_back_to_normalized_text(self):
        fp = fingerprint("retrieve (e.sal) where e.name = \x01")
        assert fp  # still a stable, non-empty key
        assert fp == fingerprint("retrieve (e.sal)  WHERE e.name = \x01")


class TestGrowthRateFor:
    def test_static_has_no_growth(self):
        assert growth_rate_for("static", 100) is None

    def test_rollback_and_historical_equal_loading(self):
        assert growth_rate_for("rollback", 100) == pytest.approx(1.0)
        assert growth_rate_for("historical", 50) == pytest.approx(0.5)

    def test_temporal_doubles_the_loading_factor(self):
        assert growth_rate_for("temporal", 100) == pytest.approx(2.0)
        assert growth_rate_for("temporal", 50) == pytest.approx(1.0)

    def test_matches_bench_cost_model(self):
        from repro.bench.costmodel import expected_growth_rate
        from repro.catalog.schema import DatabaseType

        for db_type in DatabaseType:
            for loading in (50, 100):
                assert expected_growth_rate(db_type, loading) == (
                    growth_rate_for(db_type.value, loading)
                )


class TestQueryStatsStore:
    def test_record_aggregates_per_fingerprint(self):
        store = QueryStatsStore()
        fp = fingerprint("retrieve (e.sal)")
        store.record(fp, text="retrieve (e.sal)", kind="retrieve",
                     elapsed=0.002, rows=3, input_pages=2)
        store.record(fp, text="retrieve (e.sal)", kind="retrieve",
                     elapsed=0.004, rows=3, input_pages=2,
                     plan_cache_hit=True)
        entry = store.get(fp)
        assert entry.calls == 2
        assert entry.rows == 6
        assert entry.input_pages == 4
        assert entry.plan_cache_hits == 1
        assert entry.mean_ms == pytest.approx(3.0, rel=0.01)
        assert entry.max_s == pytest.approx(0.004)

    def test_prediction_anchors_on_first_metered_execution(self):
        store = QueryStatsStore()
        fp = "q"
        # Baseline: 10 pages at update count 0, growth rate 1.0.  The
        # anchoring execution predicts itself exactly by construction.
        predicted = store.record(fp, elapsed=0.001, input_pages=10,
                                 update_count=0, growth_rate=1.0)
        assert predicted == pytest.approx(10.0)
        # Second execution at update count 2: 10 * (1 + 1*2) = 30.
        predicted = store.record(fp, elapsed=0.001, input_pages=30,
                                 update_count=2, growth_rate=1.0)
        assert predicted == pytest.approx(30.0)
        entry = store.get(fp)
        assert entry.prediction_ratio == pytest.approx(1.0)

    def test_static_prediction_is_flat(self):
        store = QueryStatsStore()
        store.record("q", elapsed=0.001, input_pages=5,
                     update_count=0, growth_rate=None)
        predicted = store.record("q", elapsed=0.001, input_pages=5,
                                 update_count=9, growth_rate=None)
        assert predicted == pytest.approx(5.0)

    def test_errors_and_retries_accumulate(self):
        store = QueryStatsStore()
        store.record_error("q", text="boom")
        store.record_retry("q", 2)
        entry = store.get("q")
        assert entry.errors == 1
        assert entry.retries == 2

    def test_top_orders_by_total_latency(self):
        store = QueryStatsStore()
        store.record("cheap", elapsed=0.001)
        store.record("dear", elapsed=0.5)
        assert [e.fingerprint for e in store.top(2)] == ["dear", "cheap"]

    def test_snapshot_restore_round_trip(self):
        store = QueryStatsStore()
        store.record("q", text="retrieve (e.sal)", kind="retrieve",
                     elapsed=0.003, rows=1, input_pages=4,
                     pages_by_method={"hash": 4},
                     update_count=0, growth_rate=1.0)
        snapshot = store.snapshot()
        json.dumps(snapshot)  # wire/checkpoint safe
        clone = QueryStatsStore()
        clone.restore(snapshot)
        entry = clone.get("q")
        assert entry.calls == 1
        assert entry.pages_by_method == {"hash": 4}
        assert entry.baseline_pages == 4

    def test_capacity_evicts_least_recently_recorded(self):
        store = QueryStatsStore(capacity=2)
        store.record("a", elapsed=0.1)
        store.record("b", elapsed=0.1)
        store.record("c", elapsed=0.1)
        assert store.get("a") is None
        assert store.get("b") is not None and store.get("c") is not None

    def test_render_mentions_prediction_column(self):
        store = QueryStatsStore()
        store.record("q", elapsed=0.001, input_pages=3,
                     update_count=0, growth_rate=1.0)
        store.record("q", elapsed=0.001, input_pages=3,
                     update_count=0, growth_rate=1.0)
        assert "pred/act" in store.render()
        assert "1.00" in store.render()

    def test_prometheus_text_labels_by_digest(self):
        store = QueryStatsStore()
        store.record("retrieve ( e . sal )", elapsed=0.002, rows=1,
                     input_pages=2, pages_by_method={"isam": 2})
        text = stats_prometheus_text(store)
        assert "repro_query_calls_total" in text
        assert 'method="isam"' in text
        assert "query=" in text


class TestQueryStatsEntry:
    def test_from_dict_tolerates_missing_fields(self):
        entry = QueryStats.from_dict({"fingerprint": "q"})
        assert entry.calls == 0
        assert entry.prediction_ratio is None


class TestSlowQueryLog:
    def test_disabled_by_default(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert not log.should_log(10.0)

    def test_threshold_gates_logging(self):
        log = SlowQueryLog(threshold_ms=5.0)
        assert log.enabled
        assert not log.should_log(0.004)
        assert log.should_log(0.006)

    def test_capacity_bounds_entries(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=2)
        for i in range(4):
            log.record(text=f"q{i}", elapsed_ms=float(i))
        texts = [entry["text"] for entry in log.dump()]
        assert texts == ["q2", "q3"]

    def test_jsonl_is_one_object_per_line(self):
        log = SlowQueryLog(threshold_ms=0.0)
        log.record(text="q", elapsed_ms=1.0, input_pages=3)
        lines = log.jsonl().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["input_pages"] == 3

    def test_env_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "2.5")
        log = SlowQueryLog()
        assert log.threshold_ms == pytest.approx(2.5)
