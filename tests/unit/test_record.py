"""Unit and property tests for the fixed-width record codec."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RecordCodecError
from repro.storage.record import AttributeType, FieldSpec, RecordCodec


def codec(*specs):
    return RecordCodec([FieldSpec.parse(n, t) for n, t in specs])


class TestFieldSpec:
    def test_parse_i4(self):
        spec = FieldSpec.parse("id", "i4")
        assert spec.type is AttributeType.I4
        assert spec.width == 4

    def test_parse_char(self):
        spec = FieldSpec.parse("s", "c96")
        assert spec.type is AttributeType.CHAR
        assert spec.width == 96

    def test_parse_time(self):
        spec = FieldSpec.parse("t", "time")
        assert spec.type is AttributeType.TIME
        assert spec.width == 4

    def test_type_text_roundtrip(self):
        for text in ("i1", "i2", "i4", "f4", "f8", "c12", "time"):
            assert FieldSpec.parse("x", text).type_text == text

    def test_char_width_bounds(self):
        with pytest.raises(RecordCodecError):
            FieldSpec.parse("s", "c0")
        with pytest.raises(RecordCodecError):
            FieldSpec.parse("s", "c256")

    def test_unknown_type(self):
        with pytest.raises(RecordCodecError):
            FieldSpec.parse("x", "blob")

    def test_bad_char_width(self):
        with pytest.raises(RecordCodecError):
            FieldSpec.parse("x", "cabc")


class TestRecordSize:
    def test_paper_tuple_widths(self):
        user = [("id", "i4"), ("amount", "i4"), ("seq", "i4"), ("string", "c96")]
        assert codec(*user).record_size == 108
        assert codec(*user, ("ts", "time"), ("te", "time")).record_size == 116
        assert (
            codec(
                *user,
                ("ts", "time"),
                ("te", "time"),
                ("vf", "time"),
                ("vt", "time"),
            ).record_size
            == 124
        )

    def test_empty_rejected(self):
        with pytest.raises(RecordCodecError):
            RecordCodec([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(RecordCodecError):
            codec(("a", "i4"), ("a", "i2"))


class TestEncodeDecode:
    def test_roundtrip_mixed(self):
        c = codec(("id", "i4"), ("name", "c8"), ("rate", "f8"))
        row = (42, "ahn", 2.5)
        assert c.decode(c.encode(row)) == row

    def test_strings_blank_padded(self):
        c = codec(("name", "c8"))
        encoded = c.encode(("ab",))
        assert encoded == b"ab" + b" " * 6
        assert c.decode(encoded) == ("ab",)

    def test_string_too_long(self):
        c = codec(("name", "c4"))
        with pytest.raises(RecordCodecError):
            c.encode(("abcde",))

    def test_non_ascii_rejected(self):
        c = codec(("name", "c8"))
        with pytest.raises((RecordCodecError, UnicodeEncodeError)):
            c.encode(("naïve",))

    def test_int_overflow_detected(self):
        c = codec(("x", "i2"))
        with pytest.raises(RecordCodecError):
            c.encode((2**15,))
        with pytest.raises(RecordCodecError):
            c.encode((-(2**15) - 1,))

    def test_i1_range(self):
        c = codec(("x", "i1"))
        assert c.decode(c.encode((127,))) == (127,)
        with pytest.raises(RecordCodecError):
            c.encode((128,))

    def test_type_mismatch(self):
        c = codec(("x", "i4"))
        with pytest.raises(RecordCodecError):
            c.encode(("5",))

    def test_bool_rejected_for_int(self):
        c = codec(("x", "i4"))
        with pytest.raises(RecordCodecError):
            c.encode((True,))

    def test_wrong_arity(self):
        c = codec(("x", "i4"), ("y", "i4"))
        with pytest.raises(RecordCodecError):
            c.encode((1,))

    def test_decode_wrong_length(self):
        c = codec(("x", "i4"))
        with pytest.raises(RecordCodecError):
            c.decode(b"\x00" * 5)

    def test_float_coercion_of_int(self):
        c = codec(("x", "f8"))
        assert c.decode(c.encode((3,))) == (3.0,)


class TestDecodePage:
    def test_matches_per_record_decode(self):
        from repro.storage.page import Page

        c = codec(("id", "i4"), ("name", "c6"))
        page = Page(c.record_size)
        rows = [(i, f"r{i}") for i in range(5)]
        for row in rows:
            page.append(c.encode(row))
        assert c.decode_page(page) == rows


ascii_text = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=12
)


class TestProperties:
    @given(
        st.integers(-(2**31), 2**31 - 1),
        ascii_text,
        st.integers(-(2**15), 2**15 - 1),
    )
    def test_roundtrip(self, big, text, small):
        c = codec(("a", "i4"), ("s", "c12"), ("b", "i2"))
        row = (big, text, small)
        assert c.decode(c.encode(row)) == row

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_f8_roundtrip_exact(self, value):
        c = codec(("x", "f8"))
        assert c.decode(c.encode((value,)))[0] == value

    @given(ascii_text)
    def test_trailing_blanks_are_not_preserved(self, text):
        # Quel c-attributes are blank padded; trailing blanks are
        # indistinguishable from padding and stripped on decode.
        c = codec(("s", "c12"))
        decoded = c.decode(c.encode((text,)))[0]
        assert decoded == text.rstrip(" ")
