"""Unit tests for the benchmark regression gate (repro.bench.regress)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.regress import Finding, find_regressions, main


def make_dump():
    """A minimal two-config sweep dump in ``result.to_dict()`` shape."""
    return {
        "temporal/100%": {
            "max_update_count": 1,
            "sizes": {"0": [4, 4], "1": [5, 5]},
            "costs": {
                "Q01": {"0": [1, 0, 0, 1], "1": [2, 0, 0, 1]},
                "Q07": {"0": [4, 2, 0, 8], "1": [6, 2, 0, 8]},
            },
        },
        "static/100%": {
            "max_update_count": 0,
            "sizes": {"0": [4, 4]},
            "costs": {"Q01": {"0": [1, 0, 0, 1]}},
        },
    }


class TestFindRegressions:
    def test_identical_dumps_pass(self):
        report = find_regressions(make_dump(), make_dump())
        assert report.ok
        assert report.regressions == []
        assert report.improvements == []
        # 5 query cells + 3 size cells
        assert report.cells == 8

    def test_inflated_cell_fails_with_zero_threshold(self):
        current = make_dump()
        current["temporal/100%"]["costs"]["Q01"]["1"] = [3, 0, 0, 1]
        report = find_regressions(current, make_dump())
        assert not report.ok
        assert len(report.regressions) == 1
        finding = report.regressions[0]
        assert finding.metric == "input pages"
        assert (finding.baseline, finding.current) == (2, 3)
        assert "Q01 uc=1" in finding.describe()
        assert "+50.0%" in finding.describe()

    def test_threshold_tolerates_small_increases(self):
        current = make_dump()
        current["temporal/100%"]["costs"]["Q07"]["1"] = [7, 2, 0, 8]  # +16.7%
        assert not find_regressions(current, make_dump(), threshold=0.10).ok
        assert find_regressions(current, make_dump(), threshold=0.20).ok

    def test_row_count_change_fails_regardless_of_threshold(self):
        current = make_dump()
        current["temporal/100%"]["costs"]["Q07"]["1"] = [6, 2, 0, 9]
        report = find_regressions(current, make_dump(), threshold=10.0)
        assert not report.ok
        assert report.regressions[0].metric == "rows"

    def test_missing_cell_is_a_regression(self):
        current = make_dump()
        del current["temporal/100%"]["costs"]["Q07"]["1"]
        report = find_regressions(current, make_dump())
        assert not report.ok
        assert report.regressions[0].current is None
        assert "missing" in report.regressions[0].describe()

    def test_new_coverage_in_current_passes(self):
        current = make_dump()
        current["temporal/100%"]["costs"]["Q99"] = {"0": [9, 9, 0, 9]}
        assert find_regressions(current, make_dump()).ok

    def test_cheaper_cells_are_improvements(self):
        current = make_dump()
        current["temporal/100%"]["costs"]["Q07"]["1"] = [5, 1, 0, 8]
        report = find_regressions(current, make_dump())
        assert report.ok
        assert {f.metric for f in report.improvements} == {
            "input pages",
            "output pages",
        }
        assert "improved" in report.render()

    def test_grown_sizes_are_gated(self):
        current = make_dump()
        current["temporal/100%"]["sizes"]["1"] = [9, 5]
        report = find_regressions(current, make_dump())
        assert not report.ok
        assert report.regressions[0].metric == "total pages"
        assert report.regressions[0].current == 14

    def test_render_summarizes_counts(self):
        rendered = find_regressions(make_dump(), make_dump()).render()
        assert "0 regression(s)" in rendered
        assert "8 gated cell(s)" in rendered


class TestFindingDescribe:
    def test_zero_baseline_omits_percentage(self):
        finding = Finding("t", "Q01", 0, "output pages", 0, 2)
        assert "%" not in finding.describe()
        assert "0 -> 2" in finding.describe()


class TestCli:
    def write(self, tmp_path, name, dump):
        path = tmp_path / name
        path.write_text(json.dumps(dump), encoding="ascii")
        return str(path)

    def test_passing_gate_exits_zero(self, tmp_path, capsys):
        current = self.write(tmp_path, "current.json", make_dump())
        baseline = self.write(tmp_path, "baseline.json", make_dump())
        assert main([current, "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "gate PASSED" in out

    def test_failing_gate_exits_nonzero(self, tmp_path, capsys):
        inflated = copy.deepcopy(make_dump())
        inflated["temporal/100%"]["costs"]["Q01"]["0"] = [6, 0, 0, 1]
        current = self.write(tmp_path, "current.json", inflated)
        baseline = self.write(tmp_path, "baseline.json", make_dump())
        assert main([current, "--baseline", baseline]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "gate FAILED" in out

    def test_threshold_flag_is_honored(self, tmp_path, capsys):
        inflated = copy.deepcopy(make_dump())
        inflated["temporal/100%"]["costs"]["Q01"]["0"] = [1, 0, 0, 1]
        inflated["temporal/100%"]["costs"]["Q07"]["0"] = [5, 2, 0, 8]  # +25%
        current = self.write(tmp_path, "current.json", inflated)
        baseline = self.write(tmp_path, "baseline.json", make_dump())
        assert main([current, "--baseline", baseline, "--threshold", "0.5"]) == 0
        capsys.readouterr()

    def test_committed_baseline_gates_itself(self, capsys):
        import pathlib

        baseline = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "baselines"
            / "sweep_tiny.json"
        )
        if not baseline.exists():
            pytest.skip("no committed baseline in this checkout")
        assert main([str(baseline), "--baseline", str(baseline)]) == 0
        capsys.readouterr()
