"""Unit tests for relation schemas and the four database types."""

import pytest

from repro.catalog.schema import (
    DatabaseType,
    RelationKind,
    RelationSchema,
)
from repro.errors import SchemaError
from repro.storage.record import FieldSpec
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import Period


def fields(*specs):
    return [FieldSpec.parse(n, t) for n, t in specs]


USER = fields(("id", "i4"), ("amount", "i4"), ("seq", "i4"), ("string", "c96"))


class TestTypeFlags:
    def test_from_flags_matrix(self):
        assert DatabaseType.from_flags(False, False) is DatabaseType.STATIC
        assert DatabaseType.from_flags(True, False) is DatabaseType.ROLLBACK
        assert DatabaseType.from_flags(False, True) is DatabaseType.HISTORICAL
        assert DatabaseType.from_flags(True, True) is DatabaseType.TEMPORAL

    def test_time_support(self):
        assert DatabaseType.ROLLBACK.has_transaction_time
        assert not DatabaseType.ROLLBACK.has_valid_time
        assert DatabaseType.HISTORICAL.has_valid_time
        assert not DatabaseType.HISTORICAL.has_transaction_time
        assert DatabaseType.TEMPORAL.has_valid_time
        assert DatabaseType.TEMPORAL.has_transaction_time


class TestImplicitAttributes:
    def test_static_has_none(self):
        schema = RelationSchema("r", USER, type=DatabaseType.STATIC)
        assert schema.record_size == 108
        assert len(schema.fields) == 4

    def test_rollback_adds_transaction_pair(self):
        schema = RelationSchema("r", USER, type=DatabaseType.ROLLBACK)
        assert schema.record_size == 116
        assert schema.has_attribute("transaction_start")
        assert schema.has_attribute("transaction_stop")
        assert not schema.has_attribute("valid_from")

    def test_historical_interval_adds_valid_pair(self):
        schema = RelationSchema("r", USER, type=DatabaseType.HISTORICAL)
        assert schema.record_size == 116
        assert schema.has_attribute("valid_from")

    def test_historical_event_adds_valid_at(self):
        schema = RelationSchema(
            "r", USER, type=DatabaseType.HISTORICAL, kind=RelationKind.EVENT
        )
        assert schema.record_size == 112
        assert schema.has_attribute("valid_at")
        assert not schema.has_attribute("valid_from")

    def test_temporal_interval_adds_all_four(self):
        schema = RelationSchema("r", USER, type=DatabaseType.TEMPORAL)
        assert schema.record_size == 124

    def test_user_width_excludes_implicit(self):
        schema = RelationSchema("r", USER, type=DatabaseType.TEMPORAL)
        assert schema.user_width == 108
        assert schema.user_count == 4

    def test_reserved_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(
                "r",
                fields(("valid_from", "i4")),
                type=DatabaseType.STATIC,
            )

    def test_bad_relation_name(self):
        with pytest.raises(SchemaError):
            RelationSchema("9lives", USER)

    def test_needs_attributes(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", [])

    def test_oversized_tuple_rejected_at_create(self):
        huge = fields(
            ("a", "c255"), ("b", "c255"), ("c", "c255"), ("d", "c255"),
            ("e", "c255"),
        )
        with pytest.raises(SchemaError):
            RelationSchema("r", huge, type=DatabaseType.TEMPORAL)

    def test_tuple_exactly_filling_a_page_accepted(self):
        wide = fields(("a", "c255"), ("b", "c255"), ("c", "c255"),
                      ("d", "c253"))
        schema = RelationSchema("r", wide, type=DatabaseType.STATIC)
        assert schema.record_size == 1018


class TestRowHelpers:
    def test_new_version_defaults(self):
        schema = RelationSchema("r", USER, type=DatabaseType.TEMPORAL)
        row = schema.new_version((1, 2, 3, "s"), now=1000)
        assert row == (1, 2, 3, "s", 1000, FOREVER, 1000, FOREVER)

    def test_new_version_valid_overrides(self):
        schema = RelationSchema("r", USER, type=DatabaseType.HISTORICAL)
        row = schema.new_version(
            (1, 2, 3, "s"), now=1000, valid_from=500, valid_to=800
        )
        assert row[-2:] == (500, 800)

    def test_new_version_event(self):
        schema = RelationSchema(
            "r", USER, type=DatabaseType.TEMPORAL, kind=RelationKind.EVENT
        )
        row = schema.new_version((1, 2, 3, "s"), now=1000, valid_at=750)
        assert row[-1] == 750

    def test_new_version_arity_check(self):
        schema = RelationSchema("r", USER, type=DatabaseType.STATIC)
        with pytest.raises(SchemaError):
            schema.new_version((1, 2), now=0)

    def test_periods(self):
        schema = RelationSchema("r", USER, type=DatabaseType.TEMPORAL)
        row = schema.new_version((1, 2, 3, "s"), now=1000)
        assert schema.transaction_period(row) == Period(1000, FOREVER)
        assert schema.valid_period(row) == Period(1000, FOREVER)

    def test_degenerate_period_is_event(self):
        schema = RelationSchema("r", USER, type=DatabaseType.HISTORICAL)
        row = schema.new_version((1, 2, 3, "s"), now=1000, valid_to=1000)
        assert schema.valid_period(row).is_event

    def test_no_transaction_time_raises(self):
        schema = RelationSchema("r", USER, type=DatabaseType.HISTORICAL)
        row = schema.new_version((1, 2, 3, "s"), now=1000)
        with pytest.raises(SchemaError):
            schema.transaction_period(row)

    def test_currency(self):
        schema = RelationSchema("r", USER, type=DatabaseType.TEMPORAL)
        row = schema.new_version((1, 2, 3, "s"), now=1000)
        assert schema.is_current(row, now=2000)
        stamped = schema.with_attribute(row, "transaction_stop", 1500)
        assert not schema.is_current(stamped, now=2000)
        closed = schema.with_attribute(row, "valid_to", 1800)
        assert not schema.is_current(closed, now=2000)
        assert schema.is_current(closed, now=1500)

    def test_with_attribute(self):
        schema = RelationSchema("r", USER, type=DatabaseType.STATIC)
        row = (1, 2, 3, "s")
        assert schema.with_attribute(row, "seq", 99) == (1, 2, 99, "s")

    def test_position_lookup(self):
        schema = RelationSchema("r", USER, type=DatabaseType.STATIC)
        assert schema.position("amount") == 1
        with pytest.raises(SchemaError):
            schema.position("ghost")

    def test_describe(self):
        schema = RelationSchema("r", USER, type=DatabaseType.TEMPORAL)
        text = schema.describe()
        assert "temporal" in text and "interval" in text
