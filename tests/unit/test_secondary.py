"""Unit tests for secondary indexes (Section 6) and tid packing."""

import pytest

from repro.access.base import StructureKind
from repro.access.secondary import (
    IndexLevels,
    SecondaryIndex,
    pack_tid,
    unpack_tid,
)
from repro.errors import AccessMethodError
from repro.storage.buffer import BufferPool
from repro.storage.record import FieldSpec


def make_index(structure=StructureKind.HASH, levels=IndexLevels.ONE_LEVEL):
    pool = BufferPool()
    index = SecondaryIndex(
        pool,
        "amount_idx",
        "amount",
        attribute_index=1,
        key_field=FieldSpec.parse("amount", "i4"),
        structure=structure,
        levels=levels,
    )
    return index, pool


class TestTidPacking:
    def test_roundtrip(self):
        tid = pack_tid(12345, 77)
        assert unpack_tid(tid) == (False, 12345, 77)

    def test_history_bit(self):
        tid = pack_tid(3, 4, history=True)
        assert unpack_tid(tid) == (True, 3, 4)

    def test_fits_in_i4(self):
        tid = pack_tid((1 << 18) - 1, (1 << 12) - 1, history=True)
        assert tid < 2**31

    def test_slot_overflow_rejected(self):
        with pytest.raises(AccessMethodError):
            pack_tid(0, 1 << 12)

    def test_page_overflow_rejected(self):
        with pytest.raises(AccessMethodError):
            pack_tid(1 << 18, 0)

    def test_paper_entry_width(self):
        # "The index needs eight bytes for each entry, four for the
        # secondary key and four for a tuple id."
        index, _ = make_index()
        assert index._current._codec.record_size == 8


class TestOneLevel:
    def test_build_and_search(self):
        index, _ = make_index()
        index.build(
            current_entries=[(1, 500, pack_tid(0, 0)), (2, 600, pack_tid(0, 1))],
            history_entries=[(500, pack_tid(1, 0))],
        )
        assert sorted(index.search(500)) == sorted(
            [pack_tid(0, 0), pack_tid(1, 0)]
        )

    def test_current_only_has_no_effect_on_one_level(self):
        index, _ = make_index()
        index.build(
            current_entries=[(1, 500, pack_tid(0, 0))],
            history_entries=[(500, pack_tid(1, 0))],
        )
        assert len(list(index.search(500, current_only=True))) == 2

    def test_add_after_build(self):
        index, _ = make_index()
        index.build([], [])
        index.add_history(700, pack_tid(2, 3))
        assert list(index.search(700)) == [pack_tid(2, 3)]

    def test_heap_structure_search(self):
        index, _ = make_index(structure=StructureKind.HEAP)
        index.build([(1, 500, pack_tid(0, 0))], [(600, pack_tid(0, 1))])
        assert list(index.search(600)) == [pack_tid(0, 1)]

    def test_heap_search_scans_whole_index(self):
        index, pool = make_index(structure=StructureKind.HEAP)
        index.build(
            [(i, 1000 + i, pack_tid(0, i)) for i in range(300)], []
        )
        pool.flush_all()
        pool.stats.reset()
        list(index.search(1005))
        assert pool.stats.totals().user.reads == index.page_count

    def test_hash_search_reads_one_bucket(self):
        index, pool = make_index(structure=StructureKind.HASH)
        index.build(
            [(i, 1000 + i, pack_tid(0, i)) for i in range(300)], []
        )
        pool.flush_all()
        pool.stats.reset()
        list(index.search(1005))
        assert pool.stats.totals().user.reads == 1

    def test_isam_structure_rejected(self):
        with pytest.raises(AccessMethodError):
            make_index(structure=StructureKind.ISAM)


class TestTwoLevel:
    def test_search_merges_both_indexes(self):
        index, _ = make_index(levels=IndexLevels.TWO_LEVEL)
        index.build(
            current_entries=[(1, 500, pack_tid(0, 0))],
            history_entries=[(500, pack_tid(5, 0, history=True))],
        )
        assert len(list(index.search(500))) == 2

    def test_current_only_skips_history(self):
        index, _ = make_index(levels=IndexLevels.TWO_LEVEL)
        index.build(
            current_entries=[(1, 500, pack_tid(0, 0))],
            history_entries=[(500, pack_tid(5, 0, history=True))],
        )
        assert list(index.search(500, current_only=True)) == [pack_tid(0, 0)]

    def test_replace_current_with_stable_value_is_in_place(self):
        # The benchmark's case: the indexed value never changes, so the
        # current index stays at one entry per tuple.
        index, _ = make_index(levels=IndexLevels.TWO_LEVEL)
        index.build([(1, 500, pack_tid(0, 0))], [])
        pages_before = index.page_count
        for round_number in range(50):
            index.replace_current(1, 500, pack_tid(0, round_number % 8))
        assert index.page_count == pages_before
        assert len(list(index.search(500, current_only=True))) == 1

    def test_replace_current_with_changing_value_stays_searchable(self):
        index, _ = make_index(levels=IndexLevels.TWO_LEVEL)
        index.build([(1, 500, pack_tid(0, 0))], [])
        for round_number in range(1, 50):
            index.replace_current(1, 500 + round_number, pack_tid(0, 0))
        # The newest value always finds the tuple; stale entries may
        # remain (fetched rows are re-checked against the qualification).
        assert pack_tid(0, 0) in list(index.search(549, current_only=True))

    def test_heap_replace_current_updates_in_place(self):
        index, _ = make_index(
            structure=StructureKind.HEAP, levels=IndexLevels.TWO_LEVEL
        )
        index.build([(1, 500, pack_tid(0, 0))], [])
        pages_before = index.page_count
        for round_number in range(50):
            index.replace_current(1, 500 + round_number, pack_tid(0, 0))
        assert index.page_count == pages_before
        assert list(index.search(549, current_only=True)) == [pack_tid(0, 0)]
        assert list(index.search(500, current_only=True)) == []

    def test_replace_unknown_key_becomes_add(self):
        index, _ = make_index(levels=IndexLevels.TWO_LEVEL)
        index.build([], [])
        index.replace_current(9, 700, pack_tid(1, 1))
        assert list(index.search(700)) == [pack_tid(1, 1)]

    def test_history_grows_current_does_not(self):
        index, _ = make_index(levels=IndexLevels.TWO_LEVEL)
        index.build([(1, 500, pack_tid(0, 0))], [])
        current_pages = index._current.page_count
        for version in range(200):
            index.add_history(500, pack_tid(1 + version // 8, version % 8,
                                            history=True))
        assert index._current.page_count == current_pages
        assert index._history.page_count > 0
