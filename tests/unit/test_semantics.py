"""Unit tests for semantic analysis: binding and the paper's applicability
rules (when needs valid time; as-of needs transaction time; ...)."""

import pytest

from repro.errors import TQuelSemanticError, UnknownRelationError
from repro.tquel.parser import parse_statement
from repro.tquel.semantics import Analyzer


@pytest.fixture
def loaded(db):
    db.execute("create static_r (id = i4, amount = i4)")
    db.execute("create persistent rb (id = i4, amount = i4)")
    db.execute("create interval hist (id = i4, amount = i4)")
    db.execute("create persistent interval temp_r (id = i4, amount = i4)")
    for var, rel in (("s", "static_r"), ("r", "rb"), ("h", "hist"),
                     ("t", "temp_r")):
        db.execute(f"range of {var} is {rel}")
    return db


def analyze(db, text):
    stmt = parse_statement(text)
    analyzer = Analyzer(db)
    if stmt.__class__.__name__ == "RetrieveStmt":
        return analyzer.analyze_retrieve(stmt)
    return analyzer.analyze_update(stmt)


class TestBinding:
    def test_unknown_range_variable(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, "retrieve (zz.id)")

    def test_unknown_attribute(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, "retrieve (s.ghost)")

    def test_unqualified_attribute_in_retrieve(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, "retrieve (id) where s.id = 1")

    def test_unqualified_ok_in_replace(self, loaded):
        analysis = analyze(loaded, "replace s (amount = amount + 1)")
        assert analysis.targets[0][0] == "amount"

    def test_implicit_attributes_visible(self, loaded):
        analysis = analyze(loaded, "retrieve (r.transaction_start)")
        assert analysis.targets[0][0] == "transaction_start"

    def test_duplicate_output_names_deduped(self, loaded):
        analysis = analyze(loaded, "retrieve (s.id, r.id)")
        names = [name for name, _, __ in analysis.targets]
        assert len(set(names)) == 2

    def test_var_order_is_first_reference(self, loaded):
        analysis = analyze(
            loaded, "retrieve (h.id, t.id) where t.amount = h.amount"
        )
        assert analysis.var_order == ["h", "t"]


class TestTypeChecking:
    def test_string_number_comparison_rejected(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, 'retrieve (s.id) where s.id = "x"')

    def test_arithmetic_on_strings_rejected(self, loaded):
        loaded.execute("create named (name = c10)")
        loaded.execute("range of n is named")
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, "retrieve (n.name) where n.name + 1 = 2")

    def test_where_must_be_boolean(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, "retrieve (s.id) where s.id + 1")

    def test_assignment_type_mismatch(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, 'replace s (id = "five")')

    def test_assigning_implicit_attribute_rejected(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, "replace t (valid_from = 1)")

    def test_unnamed_replace_target_rejected(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, "replace s (s.id)")


class TestClauseApplicability:
    def test_when_on_static_rejected(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, 'retrieve (s.id) when s overlap "now"')

    def test_when_on_rollback_rejected(self, loaded):
        # "For a rollback database, we use an as of clause instead."
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, 'retrieve (r.id) when r overlap "now"')

    def test_when_on_historical_ok(self, loaded):
        analysis = analyze(loaded, 'retrieve (h.id) when h overlap "now"')
        assert len(analysis.when) == 1

    def test_as_of_on_static_rejected(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, 'retrieve (s.id) as of "now"')

    def test_as_of_on_historical_rejected(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, 'retrieve (h.id) as of "now"')

    def test_as_of_on_rollback_ok(self, loaded):
        analysis = analyze(loaded, 'retrieve (r.id) as of "now"')
        assert analysis.as_of is not None

    def test_as_of_must_be_constant(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, "retrieve (t.id) as of start of t")

    def test_valid_clause_on_rollback_rejected(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, 'replace r (amount = 1) valid from "1980" to "1981"')

    def test_valid_at_on_interval_relation_rejected(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, 'replace t (amount = 1) valid at "1980"')

    def test_valid_from_on_event_relation_rejected(self, loaded):
        loaded.execute("create event ev (id = i4)")
        loaded.execute("range of e is ev")
        with pytest.raises(TQuelSemanticError):
            analyze(
                loaded, 'replace e (id = 1) valid from "1980" to "1981"'
            )

    def test_precede_as_operand_rejected(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(
                loaded,
                "retrieve (t.id) when start of (t precede t) overlap t",
            )

    def test_bad_temporal_constant_rejected(self, loaded):
        with pytest.raises(Exception):
            analyze(loaded, 'retrieve (t.id) when t overlap "not a date"')


class TestConjunctSplitting:
    def test_where_conjuncts_split_by_and(self, loaded):
        analysis = analyze(
            loaded,
            "retrieve (h.id, t.id) "
            "where h.id = 1 and t.id = 2 and h.amount = t.amount",
        )
        var_sets = sorted(tuple(sorted(c.vars)) for c in analysis.where)
        assert var_sets == [("h",), ("h", "t"), ("t",)]

    def test_or_stays_single_conjunct(self, loaded):
        analysis = analyze(
            loaded, "retrieve (h.id) where h.id = 1 or h.amount = 2"
        )
        assert len(analysis.where) == 1

    def test_when_conjuncts_split(self, loaded):
        analysis = analyze(
            loaded,
            'retrieve (t.id, h.id) when t overlap h and t overlap "now"',
        )
        assert len(analysis.when) == 2

    def test_conjuncts_for_detachment(self, loaded):
        analysis = analyze(
            loaded,
            "retrieve (h.id, t.id) where h.id = 1 and h.amount = t.amount",
        )
        assert len(analysis.conjuncts_for("h")) == 1
        assert len(analysis.conjuncts_for("t")) == 0


class TestDdlChecks:
    def test_retrieve_into_existing_name(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, "retrieve into rb (s.id)")

    def test_append_to_unknown_relation(self, loaded):
        with pytest.raises(UnknownRelationError):
            analyze(loaded, "append to ghost (id = 1)")

    def test_append_unknown_attribute(self, loaded):
        with pytest.raises(TQuelSemanticError):
            analyze(loaded, "append to rb (ghost = 1)")
