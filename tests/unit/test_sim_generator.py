"""The sim workload generator: determinism, validity, round-trips."""

from __future__ import annotations

import pytest

from repro.sim.cli import _parse_seeds
from repro.sim.generator import (
    DB_TYPES,
    PROFILES,
    WorkloadGenerator,
    generate_workload,
)
from repro.tquel.parser import parse_statement
from repro.tquel.unparse import unparse


def test_same_seed_is_byte_identical():
    first = generate_workload(7, ops=80)
    second = generate_workload(7, ops=80)
    assert [unparse(s) for s in first.statements] == [
        unparse(s) for s in second.statements
    ]
    assert first.db_type == second.db_type
    assert first.clock_start == second.clock_start


def test_different_seeds_differ():
    first = generate_workload(1, db_type="temporal", ops=60)
    second = generate_workload(2, db_type="temporal", ops=60)
    assert [unparse(s) for s in first.statements] != [
        unparse(s) for s in second.statements
    ]


def test_db_type_rotates_with_seed():
    types = [generate_workload(seed, ops=5).db_type for seed in range(1, 9)]
    assert types == list(DB_TYPES) * 2


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_profiles_generate(profile):
    workload = generate_workload(3, profile=profile, ops=40)
    assert workload.profile == profile
    assert workload.statements


@pytest.mark.parametrize("db_type", DB_TYPES)
def test_every_statement_reparses_to_itself(db_type):
    """unparse -> parse -> unparse is a fixed point for generated code.

    This is the round-trip net for the whole grammar surface the fuzzer
    exercises: temporal constants, valid/when/as-of clauses, aggregates,
    string escapes, operator precedence, DDL options.
    """
    for seed in (1, 2, 3, 4, 5):
        workload = generate_workload(seed, db_type=db_type, ops=120)
        for stmt in workload.statements:
            text = unparse(stmt)
            reparsed = parse_statement(text)
            assert unparse(reparsed) == text, text


def test_generator_is_independent_of_call_order():
    """Two generators with the same arguments cannot influence each other."""
    lone = generate_workload(5, ops=30)
    WorkloadGenerator(99, "temporal", ops=30, profile="update").generate()
    again = generate_workload(5, ops=30)
    assert [unparse(s) for s in lone.statements] == [
        unparse(s) for s in again.statements
    ]


def test_parse_seeds():
    assert _parse_seeds("7") == [7]
    assert _parse_seeds("2..5") == [2, 3, 4, 5]
    assert _parse_seeds("1,9,4") == [1, 9, 4]
    with pytest.raises(Exception):
        _parse_seeds("9..2")
