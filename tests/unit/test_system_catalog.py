"""Unit tests for the system catalog relations."""

import pytest

from repro.catalog.schema import DatabaseType, RelationSchema
from repro.catalog.system import SystemCatalog
from repro.errors import CatalogError
from repro.storage.buffer import BufferPool
from repro.storage.record import FieldSpec


def schema(name="emp", db_type=DatabaseType.TEMPORAL):
    return RelationSchema(
        name,
        [FieldSpec.parse("id", "i4"), FieldSpec.parse("s", "c8")],
        type=db_type,
    )


@pytest.fixture
def catalog():
    return SystemCatalog(BufferPool())


class TestRecordCreate:
    def test_relation_tuple_written(self, catalog):
        catalog.record_create(schema())
        rows = [row for _, row in catalog.relations.scan()]
        assert ("emp", "temporal", "interval", "heap", "", 100) in rows

    def test_attribute_tuples_include_implicit(self, catalog):
        catalog.record_create(schema())
        names = [
            row[1]
            for _, row in catalog.attributes.scan()
            if row[0] == "emp"
        ]
        assert "transaction_start" in names and "id" in names
        implicit_flags = {
            row[1]: row[4]
            for _, row in catalog.attributes.scan()
            if row[0] == "emp"
        }
        assert implicit_flags["id"] == 0
        assert implicit_flags["valid_to"] == 1

    def test_duplicate_rejected(self, catalog):
        catalog.record_create(schema())
        with pytest.raises(CatalogError):
            catalog.record_create(schema())

    def test_names_listed(self, catalog):
        catalog.record_create(schema("a"))
        catalog.record_create(schema("b"))
        assert catalog.cataloged_names() == ["a", "b"]


class TestModifyDestroy:
    def test_modify_updates_in_place(self, catalog):
        catalog.record_create(schema())
        catalog.record_modify("emp", "hash", "id", 50)
        rows = [row for _, row in catalog.relations.scan()]
        assert ("emp", "temporal", "interval", "hash", "id", 50) in rows

    def test_modify_unknown_relation(self, catalog):
        with pytest.raises(CatalogError):
            catalog.record_modify("ghost", "hash", "id", 100)

    def test_destroy_blanks_tuple(self, catalog):
        catalog.record_create(schema())
        catalog.record_destroy("emp")
        assert catalog.cataloged_names() == []
        with pytest.raises(CatalogError):
            catalog.record_destroy("emp")

    def test_io_is_metered_as_system(self, catalog):
        pool_stats = catalog.relations.file._stats  # shared meter
        assert pool_stats.is_system("relations")
        assert pool_stats.is_system("attributes")
