"""Unit tests for trace-context propagation primitives.

Covers span trace/span-id stamping, ``Span.from_dict`` rebuilding,
remote-context adoption in the tracer, the deterministic sampler behind
``REPRO_TRACE_SAMPLE``, and ``IODelta.from_scope_export``.
"""

from __future__ import annotations

import pytest

from repro.observe.span import Span, new_span_id, new_trace_id
from repro.observe.trace import Tracer
from repro.storage.iostats import IODelta, IOStats


def stats_with(*names):
    stats = IOStats()
    for name in names:
        stats.register(name)
    return stats


class TestSpanIds:
    def test_trace_and_span_ids_are_unique(self):
        assert new_trace_id() != new_trace_id()
        assert new_span_id() != new_span_id()

    def test_stage_children_inherit_the_trace(self):
        span = Span("statement", stats_with("r"), {})
        span.trace_id = new_trace_id()
        span.span_id = new_span_id()
        span.start()
        with span.stage("execute") as child:
            pass
        span.finish()
        assert child.trace_id == span.trace_id
        assert child.parent_id == span.span_id
        assert child.span_id not in (None, span.span_id)

    def test_untraced_statements_carry_no_ids(self):
        span = Span("statement", stats_with("r"), {})
        span.start()
        with span.stage("execute") as child:
            pass
        span.finish()
        assert span.trace_id is None and child.trace_id is None
        assert "trace_id" not in span.as_dict()

    def test_adopt_reparents_a_foreign_span(self):
        root = Span("statement", stats_with("r"), {})
        root.trace_id = new_trace_id()
        root.span_id = new_span_id()
        root.start()
        worker = Span("worker", None, {"lane": "worker"})
        worker.trace_id = root.trace_id
        worker.span_id = new_span_id()
        adopted = root.adopt(worker)
        root.finish()
        assert adopted in root.children
        assert adopted.parent_id == root.span_id

    def test_from_dict_round_trips_ids_io_and_children(self):
        stats = stats_with("r")
        span = Span("statement", stats, {"text": "retrieve (x.id)"})
        span.trace_id = new_trace_id()
        span.span_id = new_span_id()
        span.start()
        with span.stage("execute"):
            stats.record_read("r")
        span.finish()
        clone = Span.from_dict(span.as_dict())
        assert clone.trace_id == span.trace_id
        assert clone.span_id == span.span_id
        assert clone.duration == pytest.approx(span.duration)
        assert [c.name for c in clone.children] == ["execute"]
        assert clone.io.input_pages == span.io.input_pages
        # The rebuilt tree renders like the original.
        assert clone.render().splitlines()[0].startswith("statement")


class TestTracerContextAdoption:
    def test_context_forces_tracing_on_a_disabled_tracer(self):
        tracer = Tracer(None)  # disabled
        context = {"trace_id": "cafe0123", "span_id": "1.2"}
        with tracer.statement("retrieve (x.id)", context=context) as span:
            assert span.enabled
            assert span.trace_id == "cafe0123"
            assert span.parent_id == "1.2"
        adopted = tracer.take_adopted("cafe0123")
        assert adopted is span
        # take_adopted pops: a second take finds nothing.
        assert tracer.take_adopted("cafe0123") is None

    def test_local_statements_get_fresh_trace_ids(self):
        tracer = Tracer(None)
        tracer.enable()
        with tracer.statement("a") as first:
            pass
        with tracer.statement("b") as second:
            pass
        assert first.trace_id and second.trace_id
        assert first.trace_id != second.trace_id
        # Local statements are not parked for remote pickup.
        assert tracer.take_adopted(first.trace_id) is None

    def test_active_span_is_visible_during_execution(self):
        tracer = Tracer(None)
        tracer.enable()
        assert tracer.active_span is None
        with tracer.statement("a") as span:
            assert tracer.active_span is span
        assert tracer.active_span is None

    def test_adopted_buffer_is_bounded(self):
        tracer = Tracer(None)
        for i in range(100):
            with tracer.statement("q", context={"trace_id": f"t{i}",
                                                "span_id": "1.1"}):
                pass
        assert tracer.take_adopted("t0") is None  # evicted
        assert tracer.take_adopted("t99") is not None


class TestSampling:
    def test_sample_zero_disables_tracing(self):
        tracer = Tracer(None, enabled=True, sample=0.0)
        with tracer.statement("q") as span:
            assert not span.enabled

    def test_sample_one_traces_everything(self):
        tracer = Tracer(None, enabled=True, sample=1.0)
        for _ in range(5):
            with tracer.statement("q") as span:
                assert span.enabled

    def test_sampling_is_deterministic_given_the_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SEED", "7")

        def decisions():
            tracer = Tracer(None, enabled=True, sample=0.5)
            out = []
            for _ in range(20):
                with tracer.statement("q") as span:
                    out.append(span.enabled)
            return out

        first, second = decisions(), decisions()
        assert first == second
        assert True in first and False in first

    def test_env_knob_is_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "7.5")
        assert Tracer(None).sample == 1.0
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "-1")
        assert Tracer(None).sample == 0.0
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "bogus")
        assert Tracer(None).sample == 1.0

    def test_force_bypasses_sampling(self):
        tracer = Tracer(None, enabled=True, sample=0.0)
        with tracer.force():
            with tracer.statement("explain analyze target") as span:
                assert span.enabled

    def test_remote_context_bypasses_sampling(self):
        tracer = Tracer(None, enabled=True, sample=0.0)
        context = {"trace_id": "abcd", "span_id": "1.1"}
        with tracer.statement("q", context=context) as span:
            assert span.enabled


class TestIODeltaFromScopeExport:
    def test_rebuilds_user_and_system_totals(self):
        delta = IODelta.from_scope_export(
            {
                "reads": {"r#0": 3, "relations": 1},
                "writes": {"r#0": 1},
                "system": ["relations"],
            }
        )
        assert delta.input_pages == 3
        assert delta.output_pages == 1
        assert delta.system.reads == 1
        by_name = delta.as_dict()["by_relation"]
        assert by_name["r#0"] == {"reads": 3, "writes": 1}

    def test_empty_export(self):
        delta = IODelta.from_scope_export(
            {"reads": {}, "writes": {}, "system": []}
        )
        assert delta.input_pages == 0 and delta.output_pages == 0
