"""Unit tests for the two-level store (Section 6)."""

import pytest

from repro.access.base import StructureKind
from repro.access.twolevel import HistoryLayout, TwoLevelStore
from repro.errors import AccessMethodError
from repro.storage.buffer import BufferPool
from repro.storage.record import FieldSpec, RecordCodec

FIELDS = [("id", "i4"), ("payload", "c112")]  # 8 records per page


def make_store(rows, layout=HistoryLayout.SIMPLE,
               primary=StructureKind.HASH):
    codec = RecordCodec([FieldSpec.parse(n, t) for n, t in FIELDS])
    pool = BufferPool()
    store = TwoLevelStore(
        pool, "rel", codec, 0, primary_kind=primary, layout=layout
    )
    store.build(rows)
    pool.flush_all()
    pool.stats.reset()
    return store, pool


def rows(n):
    return [(i, "x") for i in range(1, n + 1)]


class TestStructure:
    def test_primary_holds_current(self):
        store, _ = make_store(rows(64))
        assert store.primary.row_count == 64
        assert store.history_pages == 0

    def test_isam_primary(self):
        store, _ = make_store(rows(64), primary=StructureKind.ISAM)
        assert store.primary.kind is StructureKind.ISAM

    def test_heap_primary_rejected(self):
        codec = RecordCodec([FieldSpec.parse(n, t) for n, t in FIELDS])
        with pytest.raises(AccessMethodError):
            TwoLevelStore(
                BufferPool(), "rel", codec, 0,
                primary_kind=StructureKind.HEAP,
            )

    def test_requires_key(self):
        codec = RecordCodec([FieldSpec.parse(n, t) for n, t in FIELDS])
        with pytest.raises(AccessMethodError):
            TwoLevelStore(BufferPool(), "rel", codec, None)


class TestOverwriteAndHistory:
    def test_overwrite_keeps_primary_size(self):
        store, _ = make_store(rows(64))
        primary_pages = store.primary_pages
        rid = next(r for r, _ in store.lookup_current(10))
        for round_number in range(20):
            store.append_history(10, (10, f"old{round_number}"))
            store.overwrite_current(rid, (10, f"new{round_number}"))
        assert store.primary_pages == primary_pages

    def test_overwrite_requires_primary_rid(self):
        store, _ = make_store(rows(8))
        store.append_history(1, (1, "old"))
        with pytest.raises(AccessMethodError):
            store.overwrite_current(("h", 0, 0), (1, "new"))

    def test_lookup_returns_current_then_history(self):
        store, _ = make_store(rows(8))
        store.append_history(1, (1, "old1"))
        store.append_history(1, (1, "old2"))
        found = [row for _, row in store.lookup(1)]
        assert found[0] == (1, "x")
        assert (1, "old1") in found and (1, "old2") in found

    def test_lookup_current_skips_history(self):
        store, _ = make_store(rows(8))
        store.append_history(1, (1, "old"))
        assert [row for _, row in store.lookup_current(1)] == [(1, "x")]

    def test_scan_current_cost_stays_flat(self):
        store, pool = make_store(rows(64))
        for key in range(1, 65):
            store.append_history(key, (key, "old"))
        pool.flush_all()
        pool.stats.reset()
        list(store.scan_current())
        assert pool.stats.totals().user.reads == store.primary_pages

    def test_full_scan_reads_both_stores(self):
        store, _ = make_store(rows(8))
        store.append_history(1, (1, "old"))
        assert len(list(store.scan())) == 9


class TestClustered:
    def test_versions_pack_per_tuple(self):
        store, pool = make_store(rows(64), layout=HistoryLayout.CLUSTERED)
        # 28 history versions of one tuple -> 4 dedicated pages (8 per
        # page), the paper's example.
        for v in range(28):
            store.append_history(10, (10, f"v{v}"))
        pool.flush_all()
        pool.stats.reset()
        found = list(store.lookup(10))
        assert len(found) == 29
        assert pool.stats.totals().user.reads == 1 + 4

    def test_simple_layout_scatters_interleaved_versions(self):
        store, pool = make_store(rows(64), layout=HistoryLayout.SIMPLE)
        # Interleave versions of many tuples: tuple 10's versions land on
        # different heap pages.
        for v in range(4):
            for key in range(1, 65):
                store.append_history(key, (key, f"v{v}"))
        pool.flush_all()
        pool.stats.reset()
        list(store.lookup(10))
        reads = pool.stats.totals().user.reads
        assert reads >= 1 + 4  # primary + one page per scattered version

    def test_clustered_read_rid(self):
        store, _ = make_store(rows(8), layout=HistoryLayout.CLUSTERED)
        rid = store.append_history(1, (1, "old"))
        assert store.read_rid(rid) == (1, "old")


class TestCounts:
    def test_row_and_page_counts_combine_stores(self):
        store, _ = make_store(rows(8))
        store.append_history(1, (1, "old"))
        assert store.row_count == 9
        assert store.page_count == store.primary_pages + store.history_pages

    def test_insert_current_appends_to_primary(self):
        store, _ = make_store(rows(8))
        rid = store.insert_current((100, "new"))
        assert rid[0] == "p"
        assert [row for _, row in store.lookup_current(100)] == [(100, "new")]

    def test_keyed_on_delegates_to_primary(self):
        store, _ = make_store(rows(8))
        assert store.keyed_on(0)
        assert not store.keyed_on(1)
