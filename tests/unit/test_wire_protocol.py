"""The wire format: framing, limits, and result marshalling."""

from __future__ import annotations

import struct

import pytest

from repro.engine.result import Result
from repro.server import protocol
from repro.storage.iostats import IOCounters, IODelta


def test_frame_roundtrip():
    message = {"op": "execute", "text": "retrieve (e.id)", "params": None}
    frame = protocol.encode_frame(message)
    length = struct.unpack(">I", frame[:4])[0]
    assert length == len(frame) - 4
    assert protocol.decode_payload(frame[4:]) == message


def test_frame_rejects_oversized_payload():
    big = {"rows": "x" * (protocol.MAX_FRAME + 1)}
    with pytest.raises(protocol.ProtocolError):
        protocol.encode_frame(big)


def test_decode_rejects_non_object_payload():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_payload(b"[1, 2, 3]")


def test_decode_rejects_undecodable_bytes():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_payload(b"\xff\xfe not json")


def test_result_roundtrip_with_io():
    result = Result(
        kind="retrieve",
        columns=["id", "amount"],
        rows=[(1, 50), (2, 60)],
        count=2,
        io=IODelta(
            user=IOCounters(3, 0),
            system=IOCounters(1, 0),
            by_relation={"emp": IOCounters(3, 0)},
        ),
    )
    over_wire = protocol.decode_payload(
        protocol.encode_frame(protocol.result_to_dict(result))[4:]
    )
    rebuilt = protocol.result_from_dict(over_wire)
    assert rebuilt.kind == "retrieve"
    assert rebuilt.columns == ["id", "amount"]
    assert rebuilt.rows == [(1, 50), (2, 60)]
    assert rebuilt.count == 2
    assert rebuilt.io == result.io
    assert rebuilt.input_pages == 3


def test_result_roundtrip_without_io():
    result = Result(kind="range", message="range of e is emp")
    rebuilt = protocol.result_from_dict(protocol.result_to_dict(result))
    assert rebuilt.io is None
    assert rebuilt.input_pages == 0
    assert rebuilt.message == "range of e is emp"


def test_result_to_dict_with_explicit_rows_page():
    result = Result(kind="retrieve", columns=["id"], rows=[(1,), (2,), (3,)])
    page = protocol.result_to_dict(result, rows=result.rows[:2])
    assert page["rows"] == [[1], [2]]


def test_blocking_transport_roundtrip():
    import socket
    import threading

    server_sock = socket.socket()
    server_sock.bind(("127.0.0.1", 0))
    server_sock.listen(1)
    port = server_sock.getsockname()[1]
    received = {}

    def serve():
        conn, _ = server_sock.accept()
        received["message"] = protocol.recv_frame(conn)
        protocol.send_frame(conn, {"ok": True})
        assert protocol.recv_frame(conn) is None  # clean EOF
        conn.close()

    thread = threading.Thread(target=serve)
    thread.start()
    client = socket.create_connection(("127.0.0.1", port), timeout=5)
    protocol.send_frame(client, {"op": "hello"})
    assert protocol.recv_frame(client) == {"ok": True}
    client.close()
    thread.join(timeout=5)
    server_sock.close()
    assert received["message"] == {"op": "hello"}


def test_blocking_recv_mid_frame_cut_raises():
    import socket
    import threading

    server_sock = socket.socket()
    server_sock.bind(("127.0.0.1", 0))
    server_sock.listen(1)
    port = server_sock.getsockname()[1]

    def serve():
        conn, _ = server_sock.accept()
        # A length prefix promising 100 bytes, then hang up after 3.
        conn.sendall(struct.pack(">I", 100) + b"abc")
        conn.close()

    thread = threading.Thread(target=serve)
    thread.start()
    client = socket.create_connection(("127.0.0.1", port), timeout=5)
    with pytest.raises(protocol.ProtocolError):
        protocol.recv_frame(client)
    client.close()
    thread.join(timeout=5)
    server_sock.close()
