"""Unit tests for the benchmark workload generator's guarantees."""

import pytest

from repro.bench.queries import benchmark_queries
from repro.bench.workload import (
    PROBE_ID,
    WorkloadConfig,
    all_configs,
    full_bucket,
)
from repro.catalog.schema import DatabaseType


class TestFullBucket:
    def test_paper_probe_key_is_in_full_buckets(self):
        # Key 500 of the 1024-tuple workload sits in a full bucket at
        # both loading factors -- the property behind the exact 1+2n law.
        assert full_bucket(500, 1024, 100)
        assert full_bucket(500, 1024, 50)

    def test_some_keys_are_not(self):
        # 1024 = 7*129 + 121: residues above 121 are one tuple short.
        assert not full_bucket(122, 1024, 100)

    def test_small_scale_has_full_buckets_at_half_loading(self):
        assert any(full_bucket(k, 32, 50) for k in range(1, 33))


class TestProbeId:
    def test_paper_scale_uses_500(self):
        config = WorkloadConfig(db_type=DatabaseType.TEMPORAL, tuples=1024)
        assert config.probe_id == PROBE_ID

    @pytest.mark.parametrize("tuples", [64, 128, 256, 512])
    def test_reduced_scale_probe_properties(self, tuples):
        config = WorkloadConfig(db_type=DatabaseType.TEMPORAL, tuples=tuples)
        probe = config.probe_id
        assert 1 <= probe <= tuples
        assert probe % 8 != 1  # off the ISAM page boundaries
        assert full_bucket(probe, tuples, 100)
        assert full_bucket(probe, tuples, 50)


class TestConfigs:
    def test_labels_are_stable(self):
        config = WorkloadConfig(db_type=DatabaseType.ROLLBACK, loading=50)
        assert config.label == "rollback/50%"

    def test_all_configs_cover_matrix(self):
        pairs = {
            (c.db_type, c.loading) for c in all_configs(tuples=64)
        }
        assert len(pairs) == 8

    def test_queries_embed_probe_id(self):
        config = WorkloadConfig(db_type=DatabaseType.TEMPORAL, tuples=64)
        texts = benchmark_queries(config)
        assert f"h.id = {config.probe_id}" in texts["Q01"]
        assert f"h.id = {config.probe_id}" in texts["Q12"]
